//! Offline stand-in for the `libc` crate, exposing only the raw
//! `epoll(7)`/`eventfd(2)` surface `wrsn-serve`'s readiness event loop
//! needs. Declarations mirror the Linux ABI; nothing here is invented —
//! every constant and signature matches `<sys/epoll.h>` /
//! `<sys/eventfd.h>` on the platforms the workspace targets.
//!
//! The crate itself only *declares* foreign functions; calling them is
//! `unsafe` and is confined to the one `#[allow(unsafe_code)]` wrapper
//! module inside `wrsn-serve`.

#![no_std]
#![allow(non_camel_case_types)]

/// C `int`.
pub type c_int = i32;
/// C `void` (only ever used behind a pointer).
pub type c_void = core::ffi::c_void;
/// POSIX `ssize_t` on the 64-bit Linux targets this workspace builds.
pub type ssize_t = isize;
/// POSIX `size_t`.
pub type size_t = usize;

/// Readable readiness (`EPOLLIN`).
pub const EPOLLIN: u32 = 0x001;
/// Writable readiness (`EPOLLOUT`).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (`EPOLLERR`); always reported, no need to register.
pub const EPOLLERR: u32 = 0x008;
/// Hang-up (`EPOLLHUP`); always reported, no need to register.
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its writing half (`EPOLLRDHUP`).
pub const EPOLLRDHUP: u32 = 0x2000;

/// Register a new fd with an epoll instance.
pub const EPOLL_CTL_ADD: c_int = 1;
/// Deregister an fd.
pub const EPOLL_CTL_DEL: c_int = 2;
/// Change the event mask of a registered fd.
pub const EPOLL_CTL_MOD: c_int = 3;
/// Close-on-exec flag for [`epoll_create1`].
pub const EPOLL_CLOEXEC: c_int = 0o2000000;

/// Close-on-exec flag for [`eventfd`].
pub const EFD_CLOEXEC: c_int = 0o2000000;
/// Nonblocking flag for [`eventfd`].
pub const EFD_NONBLOCK: c_int = 0o4000;

/// One `epoll_event` record. On x86-64 Linux the kernel ABI packs this
/// struct; the attribute matches glibc's declaration.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    /// Bitmask of `EPOLL*` readiness flags.
    pub events: u32,
    /// Caller-owned token returned verbatim with each event.
    pub u64: u64,
}

extern "C" {
    /// `epoll_create1(2)`: a new epoll instance, or -1 on error.
    pub fn epoll_create1(flags: c_int) -> c_int;
    /// `epoll_ctl(2)`: add/modify/remove an fd's registration.
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    /// `epoll_wait(2)`: blocks up to `timeout` ms for readiness events.
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    /// `eventfd(2)`: a counter fd used as a cross-thread wakeup.
    pub fn eventfd(initval: u32, flags: c_int) -> c_int;
    /// `read(2)`.
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    /// `write(2)`.
    pub fn write(fd: c_int, buf: *const c_void, count: size_t) -> ssize_t;
    /// `close(2)`.
    pub fn close(fd: c_int) -> c_int;
    /// `_exit(2)`: immediate process termination without atexit
    /// handlers or unwinding — async-signal-safe, which `exit(3)` is
    /// not. Used by the serve signal handler's second-signal escalation.
    pub fn _exit(status: c_int) -> !;
}

//! Offline stand-in for the `criterion` crate.
//!
//! A minimal timing harness with criterion's surface API: groups,
//! `bench_function`, `iter`/`iter_batched`, and the `criterion_group!`
//! / `criterion_main!` macros. No statistics, warm-up, or HTML reports
//! — each benchmark runs `sample_size` iterations and prints the mean
//! wall-clock per iteration. Enough to keep `--bench` targets building
//! and producing comparable numbers offline.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted, not acted on).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// The benchmark manager: hands out groups.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: self.sample_size as u64,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / u32::try_from(bencher.iterations).unwrap_or(u32::MAX)
        };
        println!(
            "{}/{}: {:?} per iteration ({} iterations)",
            self.name,
            id.into(),
            per_iter,
            bencher.iterations
        );
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this bencher's iteration budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh un-timed `setup` input per
    /// iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

/// Bundles benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::{BatchSize, Criterion};

    #[test]
    fn groups_run_their_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0usize;
        group.sample_size(3);
        group.bench_function("iter", |b| b.iter(|| 1 + 1));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || 21,
                |x| {
                    runs += 1;
                    x * 2
                },
                BatchSize::SmallInput,
            )
        });
        group.finish();
        assert_eq!(runs, 3);
    }
}

//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the `proptest!` macro
//! (with an optional `#![proptest_config(...)]` header), range / tuple
//! / `Just` / `any` / `collection::vec` strategies, `prop_map` and
//! `prop_flat_map` combinators, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from upstream: no shrinking (a failing case reports its
//! values via the assertion message only), and case generation is
//! deterministic per test (the RNG is seeded from the test's module
//! path), so failures reproduce exactly on re-run.

#![forbid(unsafe_code)]

use std::marker::PhantomData;

/// Deterministic RNG used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// An RNG seeded from a test's name, so every test gets its own
    /// reproducible stream.
    #[must_use]
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform usize in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound as u64) as usize
    }
}

/// Test-runner configuration (only `cases` is modeled).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many random cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Builds a second strategy from each generated value and draws
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A strategy that always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                (self.start as u64).wrapping_add(rng.next_u64() % width) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if width == 0 {
                    return rng.next_u64() as $t;
                }
                (start as u64).wrapping_add(rng.next_u64() % width) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                start + (rng.unit_f64() as $t) * (end - start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
    (A: 0, B: 1, C: 2, D: 3, E: 4);
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
}

/// Types with a canonical whole-domain strategy (see [`any`]).
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the whole domain of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// A length range for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        start: usize,
        /// Exclusive.
        end: usize,
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                start: r.start,
                end: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                start: *r.start(),
                end: r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                start: n,
                end: n + 1,
            }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty size range");
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy producing `Vec`s of `element` values with a length
    /// drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// The common imports (mirrors `proptest::prelude`).
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
    pub use crate::{Any, Arbitrary, Just, ProptestConfig, Strategy, TestRng};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: expands one test item at a
/// time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pairs() -> impl Strategy<Value = Vec<(usize, bool)>> {
        (1usize..8).prop_flat_map(|n| crate::collection::vec((0..n, any::<bool>()), 0..20))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(50))]

        #[test]
        fn ranges_respect_bounds(
            x in 3usize..10,
            f in 0.5f64..2.0,
            k in 1u32..=4,
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.5..2.0).contains(&f));
            prop_assert!((1..=4).contains(&k));
        }

        #[test]
        fn flat_map_and_vec_compose(pairs in arb_pairs()) {
            prop_assert!(pairs.len() < 20);
            for (i, _flag) in &pairs {
                prop_assert!(*i < 8, "index {} out of bound", i);
            }
        }

        #[test]
        fn just_and_map(v in Just(21usize).prop_map(|x| x * 2)) {
            prop_assert_eq!(v, 42);
        }
    }

    #[test]
    fn deterministic_per_test_name() {
        let mut a = TestRng::for_test("x::y");
        let mut b = TestRng::for_test("x::y");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

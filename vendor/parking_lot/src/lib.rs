//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync::Mutex`, exposing the poison-free `lock()`
//! signature the workspace relies on. A poisoned std mutex (a thread
//! panicked while holding the guard) is treated as still usable, which
//! matches parking_lot semantics.

#![forbid(unsafe_code)]

use std::sync::TryLockError;

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex wrapping `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Blocks until the lock is acquired; ignores poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poison) => poison.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poison)) => Some(poison.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn survives_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}

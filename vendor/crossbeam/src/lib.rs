//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides only `crossbeam::thread::scope`, implemented on top of
//! `std::thread::scope`. The crossbeam API differs from std in two
//! ways the workspace depends on: the closure passed to `spawn`
//! receives a `&Scope` argument, and `scope` returns a `Result` that
//! is `Err` when any spawned thread panicked instead of propagating
//! the panic.

#![forbid(unsafe_code)]

/// Scoped-thread utilities (mirrors `crossbeam::thread`).
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Result of a scope or a join: `Err` carries the panic payload.
    pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

    /// A handle to a scope in which threads can be spawned.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }
    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope so
        /// it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || {
                    let scope = Scope { inner };
                    f(&scope)
                }),
            }
        }
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope: all threads spawned within it are joined
    /// before `scope` returns. Returns `Err` if the closure or any
    /// unjoined spawned thread panicked.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn spawned_threads_run_and_join() {
        let total = std::sync::atomic::AtomicUsize::new(0);
        let out = super::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    total.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                });
            }
            7
        })
        .unwrap();
        assert_eq!(out, 7);
        assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 4);
    }

    #[test]
    fn panics_become_err() {
        let res = super::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(res.is_err());
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        super::thread::scope(|s| {
            s.spawn(|s2| {
                s2.spawn(|_| flag.store(true, std::sync::atomic::Ordering::SeqCst));
            });
        })
        .unwrap();
        assert!(flag.load(std::sync::atomic::Ordering::SeqCst));
    }
}

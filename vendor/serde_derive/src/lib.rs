//! Offline stand-in for `serde_derive`.
//!
//! Expands `#[derive(Serialize)]` / `#[derive(Deserialize)]` against
//! the Value-based `serde` stub, without depending on `syn`/`quote`
//! (unavailable offline): the item is parsed by walking the raw
//! `proc_macro::TokenStream` and the impl is generated as source text.
//!
//! Supported shapes, which cover this workspace exactly:
//! - structs with named fields
//! - enums with unit and struct variants (externally tagged)
//! - `#[serde(default)]`, `#[serde(default = "path")]`,
//!   `#[serde(skip_serializing_if = "path")]`,
//!   `#[serde(rename_all = "snake_case")]`
//!
//! Anything else produces a `compile_error!` naming the construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// How a missing field is filled during deserialization.
enum DefaultKind {
    /// No default: the field is required.
    None,
    /// `#[serde(default)]`: `Default::default()`.
    Std,
    /// `#[serde(default = "path")]`: call `path()`.
    Path(String),
}

struct Field {
    name: String,
    default: DefaultKind,
    skip_serializing_if: Option<String>,
}

struct Variant {
    name: String,
    /// `None` for a unit variant, `Some(fields)` for a struct variant.
    fields: Option<Vec<Field>>,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    rename_all: Option<String>,
    shape: Shape,
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({:?});", message)
        .parse()
        .expect("error token stream parses")
}

/// Serde attributes gathered from one `#[serde(...)]`-bearing position.
#[derive(Default)]
struct SerdeAttrs {
    default: Option<DefaultKind>,
    skip_serializing_if: Option<String>,
    rename_all: Option<String>,
}

/// Consumes leading `#[...]` attributes at `tokens[*pos..]`, extracting
/// the `#[serde(...)]` ones and skipping everything else (doc comments,
/// `#[must_use]`, ...).
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> Result<SerdeAttrs, String> {
    let mut attrs = SerdeAttrs::default();
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                let Some(TokenTree::Group(group)) = tokens.get(*pos + 1) else {
                    return Err("expected [...] after #".to_string());
                };
                if group.delimiter() != Delimiter::Bracket {
                    return Err("expected [...] after #".to_string());
                }
                let inner: Vec<TokenTree> = group.stream().into_iter().collect();
                let is_serde = matches!(inner.first(),
                    Some(TokenTree::Ident(id)) if id.to_string() == "serde");
                if is_serde {
                    let Some(TokenTree::Group(args)) = inner.get(1) else {
                        return Err("expected #[serde(...)]".to_string());
                    };
                    parse_serde_args(&args.stream().into_iter().collect::<Vec<_>>(), &mut attrs)?;
                }
                *pos += 2;
            }
            _ => break,
        }
    }
    Ok(attrs)
}

/// Parses `default`, `default = "path"`, `skip_serializing_if = "path"`,
/// `rename_all = "snake_case"` out of the tokens inside `#[serde(...)]`.
fn parse_serde_args(tokens: &[TokenTree], attrs: &mut SerdeAttrs) -> Result<(), String> {
    let mut pos = 0;
    while pos < tokens.len() {
        let TokenTree::Ident(key) = &tokens[pos] else {
            return Err(format!(
                "unsupported serde attribute syntax at `{}`",
                tokens[pos]
            ));
        };
        let key = key.to_string();
        pos += 1;
        let value = if matches!(&tokens.get(pos),
            Some(TokenTree::Punct(p)) if p.as_char() == '=')
        {
            let Some(TokenTree::Literal(lit)) = tokens.get(pos + 1) else {
                return Err(format!("expected string after `{key} =`"));
            };
            pos += 2;
            let text = lit.to_string();
            Some(
                text.strip_prefix('"')
                    .and_then(|t| t.strip_suffix('"'))
                    .ok_or_else(|| format!("expected string literal after `{key} =`"))?
                    .to_string(),
            )
        } else {
            None
        };
        match (key.as_str(), value) {
            ("default", None) => attrs.default = Some(DefaultKind::Std),
            ("default", Some(path)) => attrs.default = Some(DefaultKind::Path(path)),
            ("skip_serializing_if", Some(path)) => attrs.skip_serializing_if = Some(path),
            ("rename_all", Some(style)) => {
                if style != "snake_case" {
                    return Err(format!("unsupported rename_all style `{style}`"));
                }
                attrs.rename_all = Some(style);
            }
            (other, _) => return Err(format!("unsupported serde attribute `{other}`")),
        }
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
    }
    Ok(())
}

/// Skips `pub` / `pub(...)` at `tokens[*pos..]`.
fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        if matches!(&tokens.get(*pos),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Skips a field type: everything up to a comma at angle-bracket depth
/// zero. Parens/brackets/braces arrive as atomic groups, so `<`/`>` are
/// the only nesting that needs manual tracking.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0i32;
    while *pos < tokens.len() {
        if let TokenTree::Punct(p) = &tokens[*pos] {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
        }
        *pos += 1;
    }
}

/// Parses the contents of a `{ ... }` of named fields.
fn parse_named_fields(tokens: &[TokenTree]) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let attrs = take_attrs(tokens, &mut pos)?;
        if pos >= tokens.len() {
            break;
        }
        skip_visibility(tokens, &mut pos);
        let TokenTree::Ident(name) = &tokens[pos] else {
            return Err(format!("expected field name, found `{}`", tokens[pos]));
        };
        let name = name.to_string();
        pos += 1;
        if !matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!(
                "expected `:` after field `{name}` (tuple structs are unsupported)"
            ));
        }
        pos += 1;
        skip_type(tokens, &mut pos);
        pos += 1; // the separating comma (or one past the end)
        fields.push(Field {
            name,
            default: attrs.default.unwrap_or(DefaultKind::None),
            skip_serializing_if: attrs.skip_serializing_if,
        });
    }
    Ok(fields)
}

/// Parses the contents of an enum's `{ ... }`.
fn parse_variants(tokens: &[TokenTree]) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        take_attrs(tokens, &mut pos)?;
        if pos >= tokens.len() {
            break;
        }
        let TokenTree::Ident(name) = &tokens[pos] else {
            return Err(format!("expected variant name, found `{}`", tokens[pos]));
        };
        let name = name.to_string();
        pos += 1;
        let fields = match &tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                Some(parse_named_fields(
                    &g.stream().into_iter().collect::<Vec<_>>(),
                )?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                return Err(format!("tuple variant `{name}` is unsupported"));
            }
            _ => None,
        };
        if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    let container = take_attrs(&tokens, &mut pos)?;
    skip_visibility(&tokens, &mut pos);
    let keyword = match &tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found `{other:?}`")),
    };
    pos += 1;
    let name = match &tokens.get(pos) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found `{other:?}`")),
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("generic type `{name}` is unsupported"));
    }
    let body = match &tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            g.stream().into_iter().collect::<Vec<_>>()
        }
        _ => return Err(format!("`{name}` must have a braced body (named fields)")),
    };
    let shape = match keyword.as_str() {
        "struct" => Shape::Struct(parse_named_fields(&body)?),
        "enum" => Shape::Enum(parse_variants(&body)?),
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };
    Ok(Item {
        name,
        rename_all: container.rename_all,
        shape,
    })
}

/// `CamelCase` → `snake_case` (serde's rename_all = "snake_case").
fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn variant_tag(item: &Item, variant: &str) -> String {
    if item.rename_all.is_some() {
        snake_case(variant)
    } else {
        variant.to_string()
    }
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut out = String::new();
            out.push_str(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                let push = format!(
                    "__fields.push((::std::string::String::from({:?}), \
                     ::serde::Serialize::to_value(&self.{})));",
                    f.name, f.name
                );
                match &f.skip_serializing_if {
                    Some(path) => out.push_str(&format!(
                        "if !{path}(&self.{field}) {{ {push} }}\n",
                        field = f.name
                    )),
                    None => {
                        out.push_str(&push);
                        out.push('\n');
                    }
                }
            }
            out.push_str("::serde::Value::Object(__fields)\n");
            out
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let tag = variant_tag(item, &v.name);
                match &v.fields {
                    None => arms.push_str(&format!(
                        "{name}::{variant} => \
                         ::serde::Value::String(::std::string::String::from({tag:?})),\n",
                        variant = v.name
                    )),
                    Some(fields) => {
                        let bindings: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut pushes = String::new();
                        for f in fields {
                            let push = format!(
                                "__inner.push((::std::string::String::from({:?}), \
                                 ::serde::Serialize::to_value({})));",
                                f.name, f.name
                            );
                            match &f.skip_serializing_if {
                                Some(path) => pushes.push_str(&format!(
                                    "if !{path}({field}) {{ {push} }}\n",
                                    field = f.name
                                )),
                                None => {
                                    pushes.push_str(&push);
                                    pushes.push('\n');
                                }
                            }
                        }
                        arms.push_str(&format!(
                            "{name}::{variant} {{ {bindings} }} => {{\n\
                             let mut __inner: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n\
                             {pushes}\
                             ::serde::Value::Object(::std::vec::Vec::from([\
                             (::std::string::String::from({tag:?}), \
                             ::serde::Value::Object(__inner))]))\n}}\n",
                            variant = v.name,
                            bindings = bindings.join(", "),
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}\n")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}}}\n}}\n"
    )
}

/// One `field: match ::serde::find_field(...)` initializer.
fn gen_field_init(ty_name: &str, f: &Field, fields_expr: &str) -> String {
    let missing = match &f.default {
        DefaultKind::None => format!(
            "return ::std::result::Result::Err(\
             ::serde::DeError::missing_field({:?}, {:?}))",
            f.name, ty_name
        ),
        DefaultKind::Std => "::core::default::Default::default()".to_string(),
        DefaultKind::Path(path) => format!("{path}()"),
    };
    format!(
        "{field}: match ::serde::find_field({fields_expr}, {field_str:?}) {{\n\
         ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
         ::std::option::Option::None => {missing},\n}},\n",
        field = f.name,
        field_str = f.name,
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| gen_field_init(name, f, "__fields"))
                .collect();
            format!(
                "let __fields = __value.as_object().ok_or_else(|| \
                 ::serde::DeError::invalid_type(\"object\", __value))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n"
            )
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let tag = variant_tag(item, &v.name);
                match &v.fields {
                    None => unit_arms.push_str(&format!(
                        "{tag:?} => ::std::result::Result::Ok({name}::{variant}),\n",
                        variant = v.name
                    )),
                    Some(fields) => {
                        let inits: String = fields
                            .iter()
                            .map(|f| gen_field_init(name, f, "__inner_fields"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "{tag:?} => {{\n\
                             let __inner_fields = __inner.as_object().ok_or_else(|| \
                             ::serde::DeError::invalid_type(\"object\", __inner))?;\n\
                             ::std::result::Result::Ok({name}::{variant} {{\n{inits}}})\n}}\n",
                            variant = v.name
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n\
                 {unit_arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(__other, {name:?})),\n}},\n\
                 ::serde::Value::Object(__tagged) if __tagged.len() == 1 => {{\n\
                 let (__tag, __inner) = &__tagged[0];\n\
                 match __tag.as_str() {{\n\
                 {tagged_arms}\
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(__other, {name:?})),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::custom(\
                 \"invalid enum representation for {name}\")),\n}}\n"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}}}\n}}\n"
    )
}

/// Derives `serde::Serialize` (Value-based stub data model).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => compile_error(&format!("derive(Serialize): {e}")),
    }
}

/// Derives `serde::Deserialize` (Value-based stub data model).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("serde_derive codegen error: {e}"))),
        Err(e) => compile_error(&format!("derive(Deserialize): {e}")),
    }
}

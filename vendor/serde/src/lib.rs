//! Offline stand-in for the `serde` crate.
//!
//! Real serde abstracts over serializer backends; this workspace only
//! ever targets JSON, so the stand-in collapses the data model to a
//! single in-memory [`Value`] tree: [`Serialize`] renders into a
//! `Value` and [`Deserialize`] reads back out of one. The companion
//! `serde_json` stub handles the text layer, and `serde_derive`
//! provides `#[derive(Serialize, Deserialize)]` against these traits,
//! honoring the `#[serde(...)]` attributes this workspace uses
//! (`default`, `default = "path"`, `skip_serializing_if = "path"`,
//! `rename_all = "snake_case"`).
//!
//! Object fields preserve insertion order (a `Vec` of pairs, not a
//! map): the workspace's byte-identical report comparisons depend on
//! struct declaration order surviving a serialize/parse round trip.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped tree value: the single data model of this stand-in.
#[derive(Debug, Clone)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A number (integer or float, distinguished).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// A JSON number, preserving the integer/float distinction.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// The number as `f64` (lossy for huge integers, like serde_json).
    #[must_use]
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(n) => n as f64,
            Number::NegInt(n) => n as f64,
            Number::Float(f) => f,
        }
    }

    /// The number as `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(n) => Some(n),
            _ => None,
        }
    }

    /// The number as `i64`, if it is an integer in range.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(n) => i64::try_from(n).ok(),
            Number::NegInt(n) => Some(n),
            Number::Float(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::PosInt(a), Number::PosInt(b)) => a == b,
            (Number::NegInt(a), Number::NegInt(b)) => a == b,
            (Number::Float(a), Number::Float(b)) => a == b,
            // Mixed integer/float comparisons go through f64, which is
            // what the workspace's JSON equality tests expect.
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Number(a), Value::Number(b)) => a == b,
            (Value::String(a), Value::String(b)) => a == b,
            (Value::Array(a), Value::Array(b)) => a == b,
            (Value::Object(a), Value::Object(b)) => a == b,
            _ => false,
        }
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// Member lookup: `Some` for a present object key, else `None`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object fields (in insertion order), if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(items) => items.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                #[allow(unused_comparisons)]
                match self {
                    Value::Number(n) => {
                        if *other < 0 {
                            n.as_i64() == Some(*other as i64)
                        } else {
                            n.as_u64() == Some(*other as u64)
                        }
                    }
                    _ => false,
                }
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}
impl_value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}
impl PartialEq<Value> for f64 {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}
impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}
impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}
impl PartialEq<Value> for bool {
    fn eq(&self, other: &Value) -> bool {
        other == self
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// An error with a free-form message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// A required field was absent (and had no default).
    #[must_use]
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError::custom(format!("missing field `{field}` in {ty}"))
    }

    /// An enum tag did not name a known variant.
    #[must_use]
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError::custom(format!("unknown variant `{variant}` for {ty}"))
    }

    /// The value had the wrong JSON type.
    #[must_use]
    pub fn invalid_type(expected: &str, got: &Value) -> Self {
        let got = match got {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        };
        DeError::custom(format!("invalid type: expected {expected}, found {got}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Types renderable into a [`Value`].
pub trait Serialize {
    /// Renders `self` into the data model.
    fn to_value(&self) -> Value;
}

/// Types readable back out of a [`Value`].
pub trait Deserialize: Sized {
    /// Reads `Self` out of the data model.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when `value` does not have the expected
    /// shape. Unknown object keys are ignored, like default serde.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Helper used by generated code: ordered-object field lookup.
#[must_use]
pub fn find_field<'a>(fields: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
    fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError::invalid_type("boolean", value))
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| DeError::invalid_type("unsigned integer", value))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v < 0 {
                    Value::Number(Number::NegInt(v))
                } else {
                    Value::Number(Number::PosInt(v as u64))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| DeError::invalid_type("integer", value))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_serde_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}
impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::invalid_type("number", value))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(f64::from(*self)))
    }
}
impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(value)? as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::invalid_type("string", value))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::invalid_type("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::invalid_type("object", value))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) of $len:literal;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::invalid_type("array", value))?;
                if items.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected array of length {}, found {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}
impl_serde_tuple! {
    (A: 0) of 1;
    (A: 0, B: 1) of 2;
    (A: 0, B: 1, C: 2) of 3;
    (A: 0, B: 1, C: 2, D: 3) of 4;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::{Deserialize, Serialize, Value};

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let v: Vec<(f64, f64)> = vec![(1.0, 2.0), (3.0, 4.0)];
        assert_eq!(Vec::<(f64, f64)>::from_value(&v.to_value()).unwrap(), v);
        let o: Option<u32> = None;
        assert!(Option::<u32>::from_value(&o.to_value()).unwrap().is_none());
    }

    #[test]
    fn value_indexing_and_equality() {
        let v = Value::Object(vec![
            ("a".to_string(), 3u64.to_value()),
            ("b".to_string(), Value::Array(vec![1.5f64.to_value()])),
            ("s".to_string(), "hi".to_value()),
        ]);
        assert_eq!(v["a"], 3);
        assert_eq!(v["a"], 3.0);
        assert_eq!(v["b"][0], 1.5);
        assert_eq!(v["s"], "hi");
        assert!(v.get("missing").is_none());
        assert!(v["missing"].is_null());
        assert_eq!(v["b"].as_array().unwrap().len(), 1);
    }

    #[test]
    fn int_float_cross_equality() {
        assert_eq!(3u64.to_value(), 3.0f64.to_value());
        assert_ne!(3u64.to_value(), 3.5f64.to_value());
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to the crates.io registry, so the
//! workspace vendors a minimal, deterministic implementation of the
//! exact API surface it uses: [`rngs::SmallRng`] (xoshiro256++ seeded
//! via SplitMix64, matching the upstream algorithm choice for
//! `SmallRng` on 64-bit targets), the [`Rng`] and [`SeedableRng`]
//! traits, uniform range sampling, and [`seq::SliceRandom::shuffle`].
//!
//! Determinism is the only contract the workspace relies on (seeds are
//! part of experiment fingerprints); the streams are not expected to
//! match upstream `rand` bit-for-bit.

#![forbid(unsafe_code)]

/// Sampling a value of type `Self` uniformly from a range expression.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// The low-level RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that [`Rng::random`] can produce from the standard
/// distribution.
pub trait Standard: Sized {
    /// Draws one value from the standard distribution of `Self`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as $wide).wrapping_sub(self.start as $wide);
                let v = rng.next_u64() as $wide % width;
                (self.start as $wide).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                if width == 0 {
                    // Full-domain inclusive range.
                    return rng.next_u64() as $t;
                }
                let v = rng.next_u64() as $wide % width;
                (start as $wide).wrapping_add(v) as $t
            }
        }
    )*};
}
impl_sample_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => u64, i16 => u64, i32 => u64, i64 => u64, isize => u64
);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                let v = self.start + u * (self.end - self.start);
                // Floating rounding can land exactly on `end`; nudge back in.
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample(rng);
                start + u * (end - start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The user-facing RNG interface.
pub trait Rng: RngCore {
    /// A value from the standard distribution of `T` (uniform for
    /// integers, `[0, 1)` for floats, fair coin for `bool`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A value uniformly distributed over `range`.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Deterministically derives an RNG state from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named RNG implementations (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG: xoshiro256++ seeded through
    /// SplitMix64 (the same construction upstream `SmallRng` uses on
    /// 64-bit platforms).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn ranges_cover_and_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            let v: usize = rng.random_range(0..3);
            seen[v] = true;
            let f = rng.random_range(2.0f64..4.0);
            assert!((2.0..4.0).contains(&f));
            let g = rng.random_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
            let i = rng.random_range(0..=2usize);
            assert!(i <= 2);
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn tiny_positive_lower_bound_is_respected() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let u = rng.random_range(f64::MIN_POSITIVE..1.0);
            assert!(u > 0.0 && u < 1.0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "shuffle moved something");
    }
}

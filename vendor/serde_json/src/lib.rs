//! Offline stand-in for `serde_json`.
//!
//! The text layer over the Value-based `serde` stub: a complete JSON
//! parser (string escapes with surrogate pairs, integer/float
//! distinction, nesting) plus compact and pretty printers. Object key
//! order is preserved end to end — the workspace's byte-identical
//! report comparisons (checkpoint resume, shard merge) rely on it.
//!
//! Number formatting is self-consistent rather than bit-identical to
//! upstream serde_json: integers print as-is; finite floats with no
//! fractional part print with a trailing `.0`; other finite floats use
//! Rust's shortest round-trip `Display`; non-finite floats print as
//! `null` (upstream's default behavior).

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::{Number, Value};

/// A JSON error: malformed text, a shape mismatch, or (for
/// serialization) nothing in practice.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Parses a value of type `T` from JSON text.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON, trailing input, or a document
/// whose shape does not match `T`.
pub fn from_str<T: serde::Deserialize>(text: &str) -> Result<T> {
    let value = parse_value_complete(text)?;
    Ok(T::from_value(&value)?)
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors the upstream
/// signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serializes `value` as pretty JSON (2-space indent).
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors the upstream
/// signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&value.to_value(), &mut out, 0);
    Ok(out)
}

// ---------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(n: &Number, out: &mut String) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(f) => {
            if !f.is_finite() {
                out.push_str("null");
            } else if f == f.trunc() && f.abs() < 1e15 {
                out.push_str(&format!("{f:.1}"));
            } else {
                out.push_str(&format!("{f}"));
            }
        }
    }
}

fn write_compact(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_compact(v, out);
            }
            out.push('}');
        }
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_pretty(value: &Value, out: &mut String, depth: usize) {
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, depth + 1);
                write_pretty(item, out, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, depth + 1);
                write_escaped(k, out);
                out.push_str(": ");
                write_pretty(v, out, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_complete(text: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u16> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let code = u16::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => {
                            out.push('"');
                            self.pos += 1;
                        }
                        Some(b'\\') => {
                            out.push('\\');
                            self.pos += 1;
                        }
                        Some(b'/') => {
                            out.push('/');
                            self.pos += 1;
                        }
                        Some(b'b') => {
                            out.push('\u{08}');
                            self.pos += 1;
                        }
                        Some(b'f') => {
                            out.push('\u{0C}');
                            self.pos += 1;
                        }
                        Some(b'n') => {
                            out.push('\n');
                            self.pos += 1;
                        }
                        Some(b'r') => {
                            out.push('\r');
                            self.pos += 1;
                        }
                        Some(b't') => {
                            out.push('\t');
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // High surrogate: a \uXXXX low surrogate
                                // must follow.
                                if self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let lo = self.parse_hex4()?;
                                    if !(0xDC00..0xE000).contains(&lo) {
                                        return Err(Error::new("invalid low surrogate"));
                                    }
                                    0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00)
                                } else {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&hi) {
                                return Err(Error::new("unpaired surrogate"));
                            } else {
                                u32::from(hi)
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::new("invalid escape sequence")),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(Error::new("control character in string"));
                }
                Some(_) => {
                    // Copy one UTF-8 encoded char (input is a &str, so
                    // the bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Some(rest) = text.strip_prefix('-') {
                if let Ok(v) = rest.parse::<u64>() {
                    if let Ok(neg) = i64::try_from(v).map(|v| -v) {
                        return Ok(Value::Number(Number::NegInt(neg)));
                    }
                }
            } else if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number::PosInt(v)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::Float(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::{from_str, to_string, to_string_pretty, Value};

    #[test]
    fn parse_and_print_round_trip() {
        let text = r#"{"a": 1, "b": [1.5, -2, true, null, "x\n\"y\""], "c": {"d": 1e3}}"#;
        let v: Value = from_str(text).unwrap();
        assert_eq!(v["a"], 1);
        assert_eq!(v["b"][0], 1.5);
        assert_eq!(v["b"][1], -2);
        assert_eq!(v["b"][2], true);
        assert!(v["b"][3].is_null());
        assert_eq!(v["b"][4], "x\n\"y\"");
        assert_eq!(v["c"]["d"], 1000.0);
        let reprinted: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(reprinted, v);
        let repretty: Value = from_str(&to_string_pretty(&v).unwrap()).unwrap();
        assert_eq!(repretty, v);
    }

    #[test]
    fn pretty_layout_is_stable() {
        let v: Value = from_str(r#"{"a": [1, 2], "b": {}, "c": []}"#).unwrap();
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {},\n  \"c\": []\n}"
        );
    }

    #[test]
    fn floats_keep_int_distinction() {
        let v: Value = from_str("[1, 1.0]").unwrap();
        assert_eq!(to_string(&v).unwrap(), "[1,1.0]");
    }

    #[test]
    fn unicode_escapes_and_raw_utf8() {
        // A BMP escape, a surrogate-pair escape, and raw UTF-8.
        let v: Value = from_str("\"\\u00e9\\ud83d\\ude00 é\"").unwrap();
        assert_eq!(v, "\u{e9}\u{1f600} \u{e9}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 trailing").is_err());
        assert!(from_str::<u32>("\"str\"").is_err());
    }
}

//! Heterogeneous traffic and sensing loads — the paper's model extended
//! the way its Section III footnote anticipates ("the results can be
//! extended to other sources of energy consumption such as sensing and
//! computation").
//!
//! A perimeter-security deployment: most posts send a small heartbeat,
//! three gate posts stream camera summaries at 20x the rate, and two
//! acoustic posts burn a constant sensing budget. Watch the optimizer
//! chase the load.
//!
//! ```text
//! cargo run --release --example heterogeneous_traffic
//! ```

use wrsn::core::{GeometricInstanceBuilder, InstanceSpec};
use wrsn::energy::Energy;
use wrsn::engine::SolverRegistry;
use wrsn::geom::{Field, Layout};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let field = Field::square(300.0);
    let posts = field.layout_posts(Layout::Grid { cols: 6, rows: 6 });
    let n = posts.len();

    // Gates stream at 20x; two acoustic posts sense expensively.
    let gates = [5usize, 17, 29];
    let acoustic = [14usize, 21];
    let mut rates = vec![1.0; n];
    for &g in &gates {
        rates[g] = 20.0;
    }
    let mut sensing = vec![Energy::ZERO; n];
    for &a in &acoustic {
        sensing[a] = Energy::from_ujoules(1.0); // per round
    }

    let uniform = GeometricInstanceBuilder::new(posts.clone(), 108).build()?;
    let profiled = GeometricInstanceBuilder::new(posts, 108)
        .report_rates(rates)
        .sensing_energies(sensing)
        .build()?;

    let registry = SolverRegistry::with_defaults();
    let base = registry.create("idb")?.solve(&uniform)?;
    let loaded = registry.create("idb")?.solve(&profiled)?;
    println!("uniform traffic:      cost {}", base.total_cost());
    println!("heterogeneous load:   cost {}", loaded.total_cost());

    println!("\nnode shifts at the loaded posts (uniform -> heterogeneous):");
    for &p in gates.iter().chain(&acoustic) {
        let kind = if gates.contains(&p) {
            "gate"
        } else {
            "acoustic"
        };
        println!(
            "  post {p:>2} ({kind:<8}): {:>2} -> {:>2} nodes",
            base.deployment().count(p),
            loaded.deployment().count(p)
        );
    }
    let gained: u32 = gates
        .iter()
        .chain(&acoustic)
        .map(|&p| {
            loaded
                .deployment()
                .count(p)
                .saturating_sub(base.deployment().count(p))
        })
        .sum();
    println!("loaded posts gained {gained} nodes in total");
    assert!(gained > 0, "the optimizer must chase the load");

    // Persist the profiled instance so the experiment is reproducible:
    // `wrsn solve --load perimeter.json --algo idb --draw`
    let spec = InstanceSpec::from_instance(&profiled).expect("geometric");
    let path = std::env::temp_dir().join("perimeter.json");
    std::fs::write(&path, spec.to_json())?;
    println!("\ninstance spec saved to {}", path.display());
    Ok(())
}

//! Quickstart: build a random instance, run every solver, compare —
//! then sweep seeds through the experiment pipeline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wrsn::core::InstanceSampler;
use wrsn::engine::{Experiment, SolverRegistry};
use wrsn::geom::Field;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's small-scale setting: 200 m x 200 m, 10 posts, 24 nodes,
    // base station at the lower-left corner.
    let sampler = InstanceSampler::new(Field::square(200.0), 10, 24);
    let instance = sampler.sample(7);
    println!("instance: {instance}");

    // Every consumer — CLI, benches, examples — builds solvers through
    // the same registry, so "idb" here is exactly the CLI's `--algo idb`.
    let registry = SolverRegistry::with_defaults();
    println!("\n{:<12} {:>12}  deployment", "solver", "cost");
    for name in ["rfh", "irfh", "idb", "bnb"] {
        let solver = registry.create(name)?;
        let solution = solver.solve(&instance)?;
        println!(
            "{:<12} {:>12}  {}",
            solver.name(),
            format!("{}", solution.total_cost()),
            solution.deployment()
        );
    }

    // Peek inside the best heuristic's routing arrangement.
    let best = registry.create("idb")?.solve(&instance)?;
    println!("\nrouting tree (post -> parent): {}", best.tree());
    let workloads = best.tree().descendant_counts();
    let hub = (0..instance.num_posts())
        .max_by_key(|&p| workloads[p])
        .expect("at least one post");
    println!(
        "busiest relay: post {hub} forwards for {} posts and holds {} nodes",
        workloads[hub],
        best.deployment().count(hub)
    );

    // One instance is an anecdote; the experiment pipeline turns it into
    // a statistic. Sweep 16 seeds in parallel (deterministically — the
    // same report comes back whatever the worker count).
    let report = Experiment::sampled(sampler)
        .solver("idb")
        .seeds(0..16)
        .run(&registry)?;
    println!(
        "\nidb over {} random instances: cost {:.1} ± {:.1} uJ",
        report.runs.len(),
        report.cost_uj.mean,
        report.cost_uj.std_dev
    );
    Ok(())
}

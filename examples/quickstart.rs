//! Quickstart: build a random instance, run every solver, compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use wrsn::core::{BranchAndBound, Idb, InstanceSampler, Rfh, Solver};
use wrsn::geom::Field;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's small-scale setting: 200 m x 200 m, 10 posts, 24 nodes,
    // base station at the lower-left corner.
    let sampler = InstanceSampler::new(Field::square(200.0), 10, 24);
    let instance = sampler.sample(7);
    println!("instance: {instance}");

    let solvers: Vec<Box<dyn Solver>> = vec![
        Box::new(Rfh::basic()),
        Box::new(Rfh::iterative(7)),
        Box::new(Idb::new(1)),
        Box::new(BranchAndBound::new()),
    ];
    println!("\n{:<12} {:>12}  deployment", "solver", "cost");
    for solver in &solvers {
        let solution = solver.solve(&instance)?;
        println!(
            "{:<12} {:>12}  {}",
            solver.name(),
            format!("{}", solution.total_cost()),
            solution.deployment()
        );
    }

    // Peek inside the best heuristic's routing arrangement.
    let best = Idb::new(1).solve(&instance)?;
    println!("\nrouting tree (post -> parent): {}", best.tree());
    let workloads = best.tree().descendant_counts();
    let hub = (0..instance.num_posts())
        .max_by_key(|&p| workloads[p])
        .expect("at least one post");
    println!(
        "busiest relay: post {hub} forwards for {} posts and holds {} nodes",
        workloads[hub],
        best.deployment().count(hub)
    );
    Ok(())
}

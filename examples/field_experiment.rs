//! Replay of the paper's Section II field experiment: how does RF
//! charging efficiency scale with receiver count, spacing, and distance?
//! Ends by deriving the gain curve the deployment optimizer consumes.
//!
//! ```text
//! cargo run --release --example field_experiment
//! ```

use wrsn::charging::{ChargeModel, FieldExperiment};

fn main() {
    let experiment = FieldExperiment::default();
    println!("charger: {}", experiment.params());

    // Table II grid, 40 trials per cell, exactly like the paper.
    let (sensors, distances, spacings) = FieldExperiment::table_ii_grid();
    for &spacing in &spacings {
        println!("\nsensor spacing {spacing} cm — avg received power per node (mW):");
        print!("{:>10}", "distance");
        for &m in &sensors {
            print!("{:>10}", format!("m={m}"));
        }
        println!();
        for &d in &distances {
            print!("{:>10}", format!("{d:.0} cm"));
            for &m in &sensors {
                let obs = experiment.observe(m, d, spacing, 40, 2026);
                print!("{:>10.4}", obs.per_node_power_mw);
            }
            println!();
        }
    }

    // The two observations the paper builds its design on:
    let single = experiment.observe(1, 20.0, 5.0, 40, 2026);
    println!(
        "\n1) single-node charging is wasteful: {:.2}% efficiency at 20 cm",
        single.network_efficiency * 100.0
    );
    let six = experiment.observe(6, 20.0, 10.0, 40, 2026);
    println!(
        "2) charging six nodes at once is {:.1}x as efficient ({:.2}%) — network efficiency\n   grows near-linearly, so posts with more nodes are cheaper to recharge",
        six.network_efficiency / single.network_efficiency,
        six.network_efficiency * 100.0
    );

    let gain = experiment.measured_gain(20.0, 10.0, 8);
    println!(
        "\nderived optimizer input (eta = {:.4}):",
        gain.base_efficiency()
    );
    for m in 1..=8u32 {
        let k = gain.efficiency(m) / gain.efficiency(1);
        println!(
            "  k({m}) = {k:.3}{}",
            if m as f64 - k < 0.9 {
                ""
            } else {
                "   (sub-linear)"
            }
        );
    }
}

//! Factory monitoring — hazardous-container sensing where human battery
//! swaps are unsafe (paper Section I). Compares charging-gain models:
//! how much does the paper's linear `k(m) = m` assumption matter when
//! the real gain curve (from the RF field-experiment simulator) is
//! sub-linear?
//!
//! ```text
//! cargo run --release --example factory_floor
//! ```

use wrsn::charging::{ChargeModel, FieldExperiment};
use wrsn::core::{ChargeSpec, GainKind, GeometricInstanceBuilder};
use wrsn::engine::SolverRegistry;
use wrsn::geom::{Field, Layout};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 150 m x 90 m hall with a 10 x 6 grid of monitored stations.
    let field = Field::new(150.0, 90.0);
    let posts = field.layout_posts(Layout::Grid { cols: 10, rows: 6 });
    let n = posts.len();
    let budget = 180u32;

    // Gain models: the paper's idealized linear curve vs the curve the
    // simulated Powercast-style measurement campaign produces.
    let measured = FieldExperiment::default().measured_gain(20.0, 10.0, 10);
    let measured_gains: Vec<f64> = (1..=10u32)
        .map(|m| measured.efficiency(m) / measured.efficiency(1))
        .collect();
    let models = [
        ("linear k(m)=m (paper)", ChargeSpec::linear(0.01)),
        (
            "measured k(m) (RF sim)",
            ChargeSpec::new(0.01, GainKind::Measured(measured_gains)),
        ),
    ];

    println!("factory floor: {n} stations, {budget} nodes\n");
    let registry = SolverRegistry::with_defaults();
    let mut deployments = Vec::new();
    for (name, spec) in models {
        let instance = GeometricInstanceBuilder::new(posts.clone(), budget)
            .charge(spec)
            .build()?;
        let solution = registry.create("idb")?.solve(&instance)?;
        println!(
            "{name:<24} total recharging cost: {}",
            solution.total_cost()
        );
        deployments.push((name, solution.deployment().clone()));
    }

    // How different are the *decisions*?
    let (_, linear) = &deployments[0];
    let (_, real) = &deployments[1];
    let moved: u32 = linear
        .counts()
        .iter()
        .zip(real.counts())
        .map(|(&a, &b)| a.abs_diff(b))
        .sum::<u32>()
        / 2;
    println!(
        "\nnodes placed differently under the measured gain curve: {moved} of {budget} ({:.1}%)",
        f64::from(moved) / f64::from(budget) * 100.0
    );
    println!(
        "largest post under linear model:   {} nodes",
        linear.counts().iter().max().unwrap()
    );
    println!(
        "largest post under measured model: {} nodes",
        real.counts().iter().max().unwrap()
    );
    println!(
        "\ntakeaway: sub-linear real-world gains spread nodes {} than the paper's linear idealization",
        if real.counts().iter().max() < linear.counts().iter().max() {
            "wider"
        } else {
            "no wider"
        }
    );
    Ok(())
}

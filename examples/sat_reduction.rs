//! The NP-completeness proof as a program: solve 3-SAT with a sensor
//! network deployment optimizer.
//!
//! Builds the paper's Section IV gadget for a formula, solves the
//! resulting deployment/routing instance exactly, and reads the
//! satisfying assignment back out of where the optimizer put the spare
//! sensor nodes.
//!
//! ```text
//! cargo run --release --example sat_reduction
//! ```

use wrsn::core::reduction::reduce;
use wrsn::engine::SolverRegistry;
use wrsn::sat::{CnfFormula, DpllSolver, Lit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // φ = (x1 ∨ ¬x2 ∨ x3) ∧ (¬x1 ∨ x2 ∨ ¬x3) ∧ (x1 ∨ x2 ∨ x3)
    let mut formula = CnfFormula::new(3);
    formula.add_clause([Lit::pos(1), Lit::neg(2), Lit::pos(3)])?;
    formula.add_clause([Lit::neg(1), Lit::pos(2), Lit::neg(3)])?;
    formula.add_clause([Lit::pos(1), Lit::pos(2), Lit::pos(3)])?;
    println!("formula: {formula}");
    println!("DIMACS:\n{}", formula.to_dimacs());

    let reduction = reduce(&formula)?;
    let instance = reduction.instance();
    println!(
        "gadget: {} posts, {} nodes (cap 2 per post), decision bound W = {}",
        instance.num_posts(),
        instance.num_nodes(),
        reduction.cost_bound()
    );

    let solution = SolverRegistry::with_defaults()
        .create("exhaustive")?
        .solve(instance)?;
    println!("optimal recharging cost: {}", solution.total_cost());
    let satisfiable = solution.total_cost() <= reduction.cost_bound() * (1.0 + 1e-9);
    println!(
        "cost {} W  =>  formula is {}",
        if satisfiable { "<=" } else { ">" },
        if satisfiable {
            "SATISFIABLE"
        } else {
            "UNSATISFIABLE"
        }
    );

    if satisfiable {
        let assignment = reduction.decode(&solution);
        let pretty: Vec<String> = assignment
            .iter()
            .enumerate()
            .map(|(i, &v)| format!("x{}={}", i + 1, v))
            .collect();
        println!("decoded assignment: {}", pretty.join(", "));
        assert!(formula.evaluate(&assignment), "decoder bug");
        println!("assignment verified against the formula");
    }

    // Cross-check with the purpose-built SAT solver.
    let dpll = DpllSolver::new().is_satisfiable(&formula);
    assert_eq!(satisfiable, dpll, "reduction disagrees with DPLL");
    println!("DPLL agrees: satisfiable = {dpll}");
    Ok(())
}

//! Structural-health monitoring of a bridge deck — the paper's
//! motivating scenario where nodes are embedded in the structure and
//! cannot be reclaimed, so wireless recharging is the only option.
//!
//! Posts are laid out along a 400 m deck (a line with two sensor rails),
//! the base station sits at one abutment, and a charger robot patrols.
//! We co-design deployment and routing, then *run* the network with the
//! discrete-event simulator for a day of reporting and check that the
//! charger keeps every post alive.
//!
//! ```text
//! cargo run --release --example bridge_monitoring
//! ```

use wrsn::core::GeometricInstanceBuilder;
use wrsn::energy::Energy;
use wrsn::engine::SolverRegistry;
use wrsn::geom::Point;
use wrsn::sim::{ChargerPolicy, FaultPlan, SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two rails of monitoring posts along the deck, 25 m pitch, plus a
    // mid-span cluster where strain is highest.
    let mut posts = Vec::new();
    for i in 1..=16 {
        let x = i as f64 * 25.0;
        posts.push(Point::new(x, 2.0)); // upstream rail
        posts.push(Point::new(x, 8.0)); // downstream rail
    }
    for &dx in &[-5.0, 0.0, 5.0] {
        posts.push(Point::new(200.0 + dx, 5.0)); // mid-span cluster
    }
    let n = posts.len();
    let budget = 3 * n as u32; // redundancy for recharging efficiency

    let instance = GeometricInstanceBuilder::new(posts, budget)
        .base_station(Point::new(0.0, 5.0)) // abutment cabinet
        .eta(0.01) // realistic 1% single-node charging efficiency
        .build()?;
    println!("bridge: {n} posts, {budget} nodes, base station at the abutment");

    let registry = SolverRegistry::with_defaults();
    let rfh = registry.create("irfh")?.solve(&instance)?;
    let idb = registry.create("idb")?.solve(&instance)?;
    println!("RFH  cost: {}", rfh.total_cost());
    println!("IDB  cost: {}", idb.total_cost());
    let best = if idb.total_cost() <= rfh.total_cost() {
        idb
    } else {
        rfh
    };

    // Where did the spare nodes go? Expect the posts closest to the
    // abutment (they forward the whole deck's traffic).
    let workloads = best.tree().descendant_counts();
    let mut ranked: Vec<usize> = (0..n).collect();
    ranked.sort_by_key(|&p| std::cmp::Reverse(best.deployment().count(p)));
    println!("\nheaviest posts (nodes / forwarded-for):");
    for &p in ranked.iter().take(5) {
        println!(
            "  post {p:>2}: {} nodes, relays for {} posts",
            best.deployment().count(p),
            workloads[p]
        );
    }

    // A day of 10-second readings, charger patrols every 5 minutes.
    let config = SimConfig {
        round_interval_s: 10.0,
        bits_per_report: 2048,
        battery_capacity: Energy::from_joules(0.05),
        charger: ChargerPolicy::Threshold {
            interval_s: 300.0,
            trigger_soc: 0.4,
        },
        record_soc_every: None,
        charger_power_w: f64::INFINITY,
        faults: None,
        tour_order: None,
    };
    let rounds = 24 * 60 * 60 / 10;
    let report = Simulator::new(&instance, &best, config.clone()).run(rounds);
    println!("\n{report}");
    println!(
        "charger energy per round: {} (analytic: {})",
        report.charger_energy_per_round(),
        best.total_cost() * config.bits_per_report as f64
    );
    assert!(
        report.first_death.is_none(),
        "a post died — charger policy too lax"
    );
    println!("all {n} posts stayed alive for 24 h of reporting");

    // Bridges are harsh: rerun the same day with an unreliable charger
    // (a third of due refills skipped) and a mid-span post knocked
    // offline for an hour by maintenance. Same fault seed, same run —
    // the degradation numbers are reproducible.
    let faulty = SimConfig {
        faults: Some(
            FaultPlan::seeded(11)
                .charger_skips(1.0 / 3.0)
                .outage(n - 2, 1000, 1360),
        ),
        ..config
    };
    let degraded = Simulator::new(&instance, &best, faulty).run(rounds);
    println!(
        "\nwith charger faults + a one-hour outage: delivery ratio {:.4}, \
         first fault at round {:?}, max energy deficit {:.3}",
        degraded.delivery_ratio(),
        degraded.first_fault_round,
        degraded.max_energy_deficit
    );
    assert!(
        degraded.delivery_ratio() < 1.0,
        "the outage must cost reports"
    );
    Ok(())
}

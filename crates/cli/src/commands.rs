//! The CLI subcommands, each returning its report as a string so the
//! whole surface is unit-testable without spawning processes.

use crate::args::{Args, ArgsError};
use crate::render;
use serde::{Deserialize as _, Serialize};
use std::error::Error;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use wrsn_charging::FieldExperiment;
use wrsn_core::reduction::reduce;
use wrsn_core::{BranchAndBound, Instance, InstanceSpec, ScenarioSpec, Solution, Solver};
use wrsn_energy::Energy;
use wrsn_engine::{
    cache_tag, merge_checkpoints, DurabilityPolicy, EngineError, Experiment, InstanceParams,
    InstanceSource, ResultStore, RetryPolicy, RunReport, SeedEvent, SolverRegistry, StoreOptions,
    SweepCheckpoint, SweepRunner, Table,
};
use wrsn_sat::{CnfFormula, DpllSolver};
use wrsn_sched::plan_tour_schedule;
use wrsn_serve::api::ApiContext;
use wrsn_serve::{client, ChaosPolicy, Server, ServerConfig};
use wrsn_sim::{ChargerPolicy, FaultPlan, PatrolTour, SimConfig, Simulator};

/// Top-level usage text.
pub const USAGE: &str = "\
wrsn — wireless-rechargeable sensor network deployment & routing (ICDCS 2010)

USAGE:
    wrsn <command> [options]

COMMANDS:
    solve      co-design deployment and routing for a random instance
    sweep      run a solver over many seeds in parallel and report statistics
    merge      fold sharded sweep logs back into one report
    simulate   solve, then run the network in the discrete-event simulator
    fieldexp   replay the Section II RF charging field experiment
    reduce     reduce a 3-CNF DIMACS formula to a deployment instance (Section IV)
    serve      run the HTTP serving layer over the solver registry
    loadgen    drive a running server and report throughput/latency
    cache      maintain the content-addressed result store (gc)
    cluster    inspect a serve-cluster fleet (status)
    help       show this message (or `wrsn <command> --help`)

Run `wrsn <command> --help` for per-command options.";

const SOLVE_HELP: &str = "\
wrsn solve — co-design deployment and routing

OPTIONS:
    --posts N       number of posts                      [default: 100]
    --nodes M       number of sensor nodes               [default: 400]
    --field S       square field side in meters          [default: 500]
    --seed K        RNG seed                             [default: 1]
    --levels k      number of 25 m power levels          [default: 3]
    --eta E         single-node charging efficiency      [default: 1.0]
    --cap C         max nodes per post                   [optional]
    --algo A        rfh | irfh | idb | bnb | exhaustive | uniform | lifetime
                    | sched-tour | sched-place | sched-bilevel
                                                         [default: irfh]
    --scenario J    charging-scenario JSON (ScenarioSpec) parameterizing
                    the sched-* solvers                  [optional]
    --draw          render the field map and routing tree as ASCII
    --save PATH     write the generated instance spec as JSON
    --load PATH     solve a saved instance spec instead of sampling
    --svg PATH      write the deployment + routing as an SVG figure
    --json          machine-readable output";

const SWEEP_HELP: &str = "\
wrsn sweep — run a solver over many random instances in parallel

Takes the instance options of `wrsn solve` (--posts, --nodes, --field,
--levels, --eta, --cap, --load, --scenario), plus:
    --algo A        solver name from the registry        [default: irfh]
    --seeds S       number of seeds to sweep             [default: 10]
    --seed-start K  first seed                           [default: 0]
    --threads T     worker threads (1 = sequential)      [default: all CPUs]
    --history       record per-iteration cost traces
    --json          machine-readable RunReport output

Fault tolerance:
    --checkpoint P  stream an incremental checkpoint to file P after
                    every completed seed (implies --progress)
    --resume        skip seeds P already records (needs --checkpoint)
    --max-retries N retry a failing seed up to N extra times [default: 0]
    --keep-going    record failed seeds in the report instead of aborting
    --halt-after K  stop after K newly processed seeds (deterministic
                    interruption for testing --resume)
    --no-timings    zero the wall-clock fields so repeated runs are
                    byte-identical (used by the resume equivalence check)
    --progress      print a per-seed progress line to stderr

Result store (content-addressed cache):
    --cache [DIR]   route the sweep through the result store at DIR
                    [default dir: bench_results/cache]; seeds already
                    stored skip the solve, fresh results are appended,
                    and the report gains a cache {hits,misses,appended}
                    block
    --shard K/N     run only shard K of N (1-based, round-robin over the
                    seed range); write its log with --checkpoint and fold
                    the shard logs back together with `wrsn merge`
    --compare A,B   sweep several solvers over the identical instance and
                    seed grid and print a paired comparison table
                    (incompatible with --checkpoint/--resume/--shard/
                    --halt-after)";

const MERGE_HELP: &str = "\
wrsn merge — fold sharded sweep logs back into one report

Shard logs are the checkpoint files written by `wrsn sweep --shard K/N
--checkpoint FILE`; merging the full shard set reproduces the report an
unsharded sweep would print (byte-identical under --no-timings).

OPTIONS:
    --logs A,B,...  comma-separated shard log paths            [required]
    --out PATH      also write the merged log as a checkpoint
    --json          machine-readable RunReport output";

const SIMULATE_HELP: &str = "\
wrsn simulate — solve, then run the network over time

All `wrsn solve` options, plus:
    --rounds R      reporting rounds to simulate         [default: 1000]
    --bits B        bits per report                      [default: 4000]
    --battery J     per-node battery capacity in joules  [default: 0.1]
    --policy P      threshold | tour | none              [default: threshold]
    --speed V       charger speed (m/s, tour policy)     [default: 5.0]
    --chargers K    charger fleet size (tour policy)     [default: 1]
    --power W       charger radiated power in watts (finite => refills take time)
    --timeline R    sample state of charge every R rounds and plot it
    --sched-tour    drive the tour policy along the sched-tour solver's
                    planned visit order (uses --scenario when given)
    --json          machine-readable output

The tour policy audits patrol feasibility at setup: posts whose battery
window is shorter than their charger's cycle are reported (and listed in
the JSON output as tour_infeasible_posts).

Failure injection (any of these enables the fault plan):
    --fault-seed K     seed for the probabilistic faults    [default: 0]
    --kill R:P,...     a node at post P dies at round R
    --outage P:A:B,... post P is offline for rounds A..B
    --charger-skip Q   probability a due refill is skipped
    --charger-delay Q  probability a patrol leg is delayed
    --delay-s S        extra seconds per delayed leg        [default: 5]
    --link-loss Q      per-hop probability a transmission is lost
                       (lost reports count against delivery ratio)
    --battery-fade F   per-charge-cycle capacity fade fraction
    --fade-floor F     fade floor as a fraction of nameplate [default: 0.2]
    --charger-down FROM:UNTIL[,...]
                       total charger breakdown over rounds FROM..UNTIL";

const SERVE_HELP: &str = "\
wrsn serve — a std-only HTTP/1.1 JSON service over the solver registry

Endpoints: POST /v1/solve, /v1/simulate, /v1/sweep; GET /v1/solvers,
/healthz, /statusz. Runs until SIGINT/SIGTERM, then drains in-flight
requests and flushes the result store. A second SIGINT/SIGTERM while
the drain is in flight forces an immediate exit (status 128+signal);
segments, checkpoints, and job journals are crash-consistent, so the
next start recovers every committed result and resumes interrupted
jobs.

OPTIONS:
    --addr A:P      bind address                    [default: 127.0.0.1:7421]
    --workers N     request worker threads          [default: 4]
    --queue-depth Q admission queue capacity; overflow is answered
                    with 503 + Retry-After          [default: 64]
    --cache [DIR]   share the result store at DIR across requests
                    [default dir: bench_results/cache]
    --durability D  fsync discipline for the store and job checkpoints
                    (requires --cache): 'flush' leaves durability to the
                    OS page cache; 'fsync' syncs on segment seal, store
                    flush, and checkpoint batch, so a crash never loses
                    an acknowledged result       [default: flush]
    --request-timeout-ms MS  per-request deadline; slow handlers are
                    answered with 504 + Retry-After  [default: off]
    --keep-alive    serve multiple requests per connection (HTTP/1.1
                    keep-alive with an idle timeout)
    --keep-alive-max-requests N  requests served per connection before
                    the server closes it             [default: 32]
    --max-conns N   most concurrent connections; accepts beyond it are
                    answered 503 + Retry-After       [default: 4096]
    --max-jobs N    most concurrent async jobs (POST /v1/jobs); excess
                    submissions get 503 + Retry-After [default: 8]

Multi-tenant mode (off by default; without --tenants the server runs
single-user, no auth, no limits):
    --tenants FILE  JSONL tenant config, one object per line:
                    {\"name\": .., \"key\": .., \"weight\": .., \"rps\": ..,
                     \"burst\": .., \"queue_depth\": .., \"isolated\": ..,
                     \"max_jobs\": ..}; a keyless entry configures the
                    anonymous tenant. Requests authenticate with
                    Authorization: Bearer KEY; over-rate requests get
                    429 + Retry-After, and admission is weighted-fair
                    (deficit round robin by weight)
    --default-rps F    rate limit for tenants without one [default: 0=off]
    --default-burst N  token-bucket burst for tenants without one
                       [default: 16]

Chaos injection (testing the client's resilience; /v1 paths only):
    --chaos P            probability of an injected 500    [default: 0]
    --chaos-truncate P   probability the response body is cut short
    --chaos-latency P    probability of an added delay
    --chaos-latency-ms MS  delay per latency hit           [default: 25]
    --chaos-seed K       seed for the chaos RNG            [default: 0]

Cluster mode (requires --cache; without --cluster-peers the server is
byte-for-byte the single-node service):
    --cluster-peers LIST  comma-separated id=addr entries naming every
                    node of the fleet (a bare addr doubles as its id);
                    all nodes must agree on the list
    --node-id ID    this node's entry in the peer list        [required
                    with --cluster-peers]
    --gossip-interval-ms MS  delay between anti-entropy ticks
                                                      [default: 1000]
    --cluster-seed K    shared seed for the consistent-hash ring; all
                    nodes must agree                      [default: 0]
    --cluster-vnodes V  virtual nodes per peer on the ring
                                                      [default: 128]";

const LOADGEN_HELP: &str = "\
wrsn loadgen — drive a running `wrsn serve` and measure it

OPTIONS:
    --addr A:P      server address                  [default: 127.0.0.1:7421]
    --concurrency C client threads                  [default: 4]
    --requests N    total requests to send          [default: 200]
    --path P        endpoint to hit                 [default: /v1/solve]
    --method M      HTTP method                     [default: POST]
    --body JSON     request body                    [default: {}]
    --retries N     retry budget per request, with exponential backoff
                    and a circuit breaker (0 disables)  [default: 0]
    --connections C open-loop mode: open C persistent keep-alive
                    connections up front and drive them concurrently
                    (requires `serve --keep-alive`; ignores --retries)
    --pipeline P    requests written per batch on each keep-alive
                    connection (with --connections)     [default: 1]
    --job           submit one async job (POST /v1/jobs) with --body as
                    the sweep spec, stream its events, and report the
                    round trip instead of load-testing
    --addrs A,B,... round-robin the workload across several cluster
                    nodes (each gets requests/N) and report one row per
                    node next to the aggregate; overrides --addr
                    (incompatible with --connections/--job/
                    --tenants-file)
    --tenant KEY    authenticate every request with
                    Authorization: Bearer KEY
    --tenants-file FILE  adversarial mode: drive every keyed tenant in
                    the JSONL config concurrently (each gets the full
                    --concurrency/--requests workload under its own
                    key) and report one row per tenant
    --bench-json F  also write the machine-readable report to file F
    --json          machine-readable output";

const CACHE_HELP: &str = "\
wrsn cache — maintain the content-addressed result store

SUBCOMMANDS:
    gc              drop entries unreachable from the current engine
                    version/fingerprint scheme, optionally enforce a
                    size budget (oldest entries evicted first), and
                    compact the store into a single segment
    verify          read-only health check: parse every live segment,
                    flag interior corruption and torn tails, count
                    quarantined files. Exits nonzero when any live
                    segment is corrupt (torn tails are repairable and
                    stay clean)

OPTIONS (gc):
    --cache [DIR]   store directory   [default dir: bench_results/cache]
    --max-bytes N   on-disk size budget after the unreachable pass
    --json          machine-readable GcReport output

OPTIONS (verify):
    --cache [DIR]   store directory   [default dir: bench_results/cache]
    --json          machine-readable VerifyReport output";

const CLUSTER_HELP: &str = "\
wrsn cluster — inspect a serve-cluster fleet

SUBCOMMANDS:
    status          fetch /statusz from every node and show the fleet:
                    per-node key share, forwarded hits/misses, gossip
                    progress, cache entries, and the keys digest (equal
                    digests mean converged caches)

OPTIONS (status):
    --addrs A,B,... comma-separated node addresses           [required]
    --json          machine-readable output";

const FIELDEXP_HELP: &str = "\
wrsn fieldexp — replay the Section II field experiment

OPTIONS:
    --seed K        RNG seed for measurement noise       [default: 42]
    --trials T      trials per grid cell                 [default: 40]
    --json          machine-readable output";

const REDUCE_HELP: &str = "\
wrsn reduce — 3-CNF SAT to deployment/routing (the NP-completeness gadget)

OPTIONS:
    --dimacs PATH   DIMACS CNF file (`-` for stdin)      [required]
    --solve         solve the gadget exactly and decode the assignment
    --json          machine-readable output";

/// A fatal CLI error with a user-facing message.
#[derive(Debug)]
pub enum CliError {
    /// A free-form user-facing message.
    Msg(String),
    /// An operation that needs coordinates was handed an
    /// explicit-adjacency instance.
    NonGeometric {
        /// What the user asked for (e.g. `"--save"`, `"--svg"`).
        what: &'static str,
    },
    /// A numeric flag fell outside its valid range — caught at parse
    /// time so the flag name appears in the message.
    OutOfRange {
        /// The offending flag (e.g. `"--link-loss"`).
        flag: &'static str,
        /// What the user passed.
        value: f64,
        /// Inclusive lower bound.
        lo: f64,
        /// Inclusive upper bound.
        hi: f64,
    },
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::Msg(msg) => f.write_str(msg),
            CliError::NonGeometric { what } => write!(
                f,
                "{what} needs a geometric instance, but this one has explicit adjacency only"
            ),
            CliError::OutOfRange {
                flag,
                value,
                lo,
                hi,
            } => write!(f, "{flag} {value} out of range [{lo}, {hi}]"),
        }
    }
}

/// Checks a probability/fraction flag at parse time so the error names
/// the flag rather than deferring to `FaultPlan::validate`.
fn unit_interval(flag: &'static str, value: f64) -> Result<f64, CliError> {
    if (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(CliError::OutOfRange {
            flag,
            value,
            lo: 0.0,
            hi: 1.0,
        })
    }
}

impl Error for CliError {}

impl From<ArgsError> for CliError {
    fn from(e: ArgsError) -> Self {
        CliError::Msg(e.to_string())
    }
}

impl From<EngineError> for CliError {
    fn from(e: EngineError) -> Self {
        match e {
            // Keep the flag name in the message so the fix is obvious.
            EngineError::UnknownSolver { name, known } => CliError::Msg(format!(
                "unknown --algo {name:?} (expected {})",
                known.join("|")
            )),
            other => CliError::Msg(other.to_string()),
        }
    }
}

/// Dispatches a full argument vector (without the program name).
///
/// # Errors
///
/// Returns a [`CliError`] carrying the message to print to stderr.
pub fn run(argv: &[String]) -> Result<String, CliError> {
    let Some((command, rest)) = argv.split_first() else {
        return Ok(USAGE.to_string());
    };
    let wants_help = rest.iter().any(|a| a == "--help" || a == "-h");
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        "solve" if wants_help => Ok(SOLVE_HELP.to_string()),
        "sweep" if wants_help => Ok(SWEEP_HELP.to_string()),
        "merge" if wants_help => Ok(MERGE_HELP.to_string()),
        "simulate" if wants_help => Ok(SIMULATE_HELP.to_string()),
        "fieldexp" if wants_help => Ok(FIELDEXP_HELP.to_string()),
        "reduce" if wants_help => Ok(REDUCE_HELP.to_string()),
        "serve" if wants_help => Ok(SERVE_HELP.to_string()),
        "loadgen" if wants_help => Ok(LOADGEN_HELP.to_string()),
        "cache" if wants_help => Ok(CACHE_HELP.to_string()),
        "cluster" if wants_help => Ok(CLUSTER_HELP.to_string()),
        "solve" => solve(Args::parse(rest.to_vec())?),
        "sweep" => sweep(Args::parse(rest.to_vec())?),
        "merge" => merge(Args::parse(rest.to_vec())?),
        "simulate" => simulate(Args::parse(rest.to_vec())?),
        "fieldexp" => fieldexp(Args::parse(rest.to_vec())?),
        "reduce" => reduce_cmd(Args::parse(rest.to_vec())?),
        "serve" => serve_cmd(Args::parse(rest.to_vec())?),
        "loadgen" => loadgen_cmd(Args::parse(rest.to_vec())?),
        "cache" => cache_cmd(rest),
        "cluster" => cluster_cmd(rest),
        other => Err(CliError::Msg(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    }
}

/// The instance-shaping options shared by `solve`, `simulate`, and
/// `sweep`.
struct InstanceOptions {
    posts: usize,
    nodes: u32,
    field: f64,
    levels: usize,
    eta: f64,
    cap: Option<u32>,
    load: Option<String>,
    scenario: Option<ScenarioSpec>,
}

impl InstanceOptions {
    fn parse(args: &mut Args) -> Result<Self, CliError> {
        let opts = InstanceOptions {
            posts: args.get_or("posts", "a post count", 100)?,
            nodes: args.get_or("nodes", "a node count", 400)?,
            field: args.get_or("field", "meters", 500.0)?,
            levels: args.get_or("levels", "a level count", 3)?,
            eta: args.get_or("eta", "an efficiency in (0,1]", 1.0)?,
            cap: args.opt("cap", "a per-post cap")?,
            load: args.opt("load", "a file path")?,
            scenario: parse_scenario(args)?,
        };
        if opts.posts == 0 || opts.nodes == 0 || opts.field <= 0.0 || opts.levels == 0 {
            return Err(CliError::Msg(
                "posts, nodes, field and levels must be positive".into(),
            ));
        }
        if !(opts.eta > 0.0 && opts.eta <= 1.0) {
            return Err(CliError::Msg(format!(
                "--eta must lie in (0, 1], got {}",
                opts.eta
            )));
        }
        Ok(opts)
    }

    /// Resolves the options into an engine instance source: a pinned
    /// spec when `--load` was given, a sampler otherwise.
    fn source(&self) -> Result<InstanceSource, CliError> {
        if let Some(path) = &self.load {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Msg(format!("reading {path}: {e}")))?;
            let spec = InstanceSpec::from_json(&text).map_err(|e| CliError::Msg(e.to_string()))?;
            // Validate now so the error still carries the file name.
            spec.build()
                .map_err(|e| CliError::Msg(format!("spec in {path}: {e}")))?;
            Ok(InstanceSource::Spec(spec))
        } else {
            // The sampler recipe lives in the engine's InstanceParams so
            // the HTTP API and the CLI resolve identical parameters to
            // identical instances (and identical cache fingerprints).
            let params = InstanceParams {
                posts: self.posts,
                nodes: self.nodes,
                field: self.field,
                levels: self.levels,
                eta: self.eta,
                cap: self.cap,
                spec: None,
                scenario: self.scenario.clone(),
            };
            params.source().map_err(CliError::from)
        }
    }

    /// The solver registry for these options: the defaults, with the
    /// scheduling solvers rebound to `--scenario` when one was given.
    fn registry(&self) -> SolverRegistry {
        let base = SolverRegistry::with_defaults();
        match &self.scenario {
            Some(spec) => base.scenario_overlay(spec),
            None => base,
        }
    }
}

/// Parses and validates the `--scenario` flag (a [`ScenarioSpec`] JSON
/// object) shared by `solve`, `sweep`, and `simulate`.
fn parse_scenario(args: &mut Args) -> Result<Option<ScenarioSpec>, CliError> {
    let Some(text) = args.opt::<String>("scenario", "a scenario JSON object")? else {
        return Ok(None);
    };
    let value: serde::Value = serde_json::from_str(&text)
        .map_err(|e| CliError::Msg(format!("--scenario is not valid JSON: {e}")))?;
    let spec =
        ScenarioSpec::from_value(&value).map_err(|e| CliError::Msg(format!("--scenario: {e}")))?;
    spec.validate()
        .map_err(|m| CliError::Msg(format!("--scenario: {m}")))?;
    Ok(Some(spec))
}

struct SolveSetup {
    instance: Instance,
    solution: Solution,
    seed: u64,
    json: bool,
    scenario: Option<ScenarioSpec>,
}

fn setup_solve(args: &mut Args) -> Result<SolveSetup, CliError> {
    let opts = InstanceOptions::parse(args)?;
    let seed: u64 = args.get_or("seed", "an integer seed", 1)?;
    let algo: String = args.get_or("algo", "an algorithm name", "irfh".to_string())?;
    let save: Option<String> = args.opt("save", "a file path")?;
    let json = args.flag("json");
    let instance = opts.source()?.instance(seed)?;
    if let Some(path) = save {
        let spec = InstanceSpec::from_instance(&instance)
            .ok_or(CliError::NonGeometric { what: "--save" })?;
        std::fs::write(&path, spec.to_json())
            .map_err(|e| CliError::Msg(format!("writing {path}: {e}")))?;
    }
    let solver = opts.registry().create(&algo)?;
    let solution = solver
        .solve(&instance)
        .map_err(|e| CliError::Msg(format!("{algo} failed: {e}")))?;
    Ok(SolveSetup {
        instance,
        solution,
        seed,
        json,
        scenario: opts.scenario,
    })
}

#[derive(Serialize)]
struct SolveReport {
    algorithm: String,
    posts: usize,
    nodes: u32,
    seed: u64,
    total_cost_uj: f64,
    deployment: Vec<u32>,
    parents: Vec<usize>,
}

fn solve(mut args: Args) -> Result<String, CliError> {
    let draw = args.flag("draw");
    let svg: Option<String> = args.opt("svg", "a file path")?;
    let setup = setup_solve(&mut args)?;
    args.finish()?;
    if let Some(path) = &svg {
        let geo = setup
            .instance
            .geometry()
            .ok_or(CliError::NonGeometric { what: "--svg" })?;
        let doc = render::render_svg(geo, &setup.solution, 720);
        std::fs::write(path, doc).map_err(|e| CliError::Msg(format!("writing {path}: {e}")))?;
    }
    let report = SolveReport {
        algorithm: setup.solution.algorithm().to_string(),
        posts: setup.instance.num_posts(),
        nodes: setup.instance.num_nodes(),
        seed: setup.seed,
        total_cost_uj: setup.solution.total_cost().as_ujoules(),
        deployment: setup.solution.deployment().counts().to_vec(),
        parents: setup.solution.tree().parents().to_vec(),
    };
    if setup.json {
        return Ok(serde_json::to_string_pretty(&report).expect("serializable"));
    }
    let mut out = String::new();
    let _ = writeln!(out, "instance: {}", setup.instance);
    let _ = writeln!(
        out,
        "{}: total recharging cost {}",
        report.algorithm,
        setup.solution.total_cost()
    );
    let _ = writeln!(out, "deployment: {}", setup.solution.deployment());
    let _ = writeln!(out, "routing:    {}", setup.solution.tree());
    if draw {
        if let Some(geo) = setup.instance.geometry() {
            let _ = writeln!(
                out,
                "
{}",
                render::render_field(geo, &setup.solution, 64, 24)
            );
            let _ = writeln!(out, "{}", render::render_tree(&setup.solution));
        }
    }
    Ok(out)
}

/// The default result-store directory for a bare `--cache` flag.
const DEFAULT_CACHE_DIR: &str = "bench_results/cache";

/// Parses `--shard K/N` into a 1-based (index, count) pair. Range
/// validation happens in the engine ([`EngineError::BadShard`]).
fn parse_shard(text: &str) -> Result<(u32, u32), CliError> {
    let bad = || CliError::Msg(format!("--shard expects K/N (e.g. 2/4), got {text:?}"));
    let (index, count) = text.split_once('/').ok_or_else(bad)?;
    match (index.trim().parse(), count.trim().parse()) {
        (Ok(i), Ok(c)) => Ok((i, c)),
        _ => Err(bad()),
    }
}

/// Opens the result store behind `--cache [DIR]`.
fn open_cache(dir: Option<String>) -> Result<Arc<ResultStore>, CliError> {
    open_cache_with(dir, DurabilityPolicy::default())
}

/// [`open_cache`] under an explicit fsync discipline (`serve
/// --durability`).
fn open_cache_with(
    dir: Option<String>,
    durability: DurabilityPolicy,
) -> Result<Arc<ResultStore>, CliError> {
    let dir = dir.unwrap_or_else(|| DEFAULT_CACHE_DIR.to_string());
    ResultStore::open_with(
        Path::new(&dir),
        StoreOptions {
            durability,
            ..StoreOptions::default()
        },
    )
    .map(Arc::new)
    .map_err(|e| CliError::Msg(e.to_string()))
}

fn sweep(mut args: Args) -> Result<String, CliError> {
    let opts = InstanceOptions::parse(&mut args)?;
    let algo_opt: Option<String> = args.opt("algo", "an algorithm name")?;
    let seeds: u64 = args.get_or("seeds", "a seed count", 10)?;
    let seed_start: u64 = args.get_or("seed-start", "an integer seed", 0)?;
    let threads: Option<usize> = args.opt("threads", "a worker count")?;
    let history = args.flag("history");
    let json = args.flag("json");
    let checkpoint: Option<String> = args.opt("checkpoint", "a file path")?;
    let resume = args.flag("resume");
    let max_retries: u32 = args.get_or("max-retries", "a retry count", 0)?;
    let keep_going = args.flag("keep-going");
    let halt_after: Option<usize> = args.opt("halt-after", "a seed count")?;
    let no_timings = args.flag("no-timings");
    let progress = args.flag("progress");
    let cache_arg = args.flag_or_value("cache");
    let shard: Option<String> = args.opt("shard", "K/N")?;
    let compare: Option<String> = args.opt("compare", "a comma-separated solver list")?;
    args.finish()?;
    if seeds == 0 {
        return Err(CliError::Msg("--seeds must be at least 1".into()));
    }
    if resume && checkpoint.is_none() {
        return Err(CliError::Msg(
            "--resume needs --checkpoint to know where the previous run left off".into(),
        ));
    }
    let runner = match threads {
        Some(0) => return Err(CliError::Msg("--threads must be at least 1".into())),
        Some(n) => SweepRunner::new().threads(n),
        None => SweepRunner::new(),
    };
    let shard = shard.as_deref().map(parse_shard).transpose()?;
    let store = cache_arg.map(open_cache).transpose()?;
    if let Some(list) = compare {
        if algo_opt.is_some() {
            return Err(CliError::Msg(
                "--compare names its own solvers; drop --algo".into(),
            ));
        }
        if checkpoint.is_some() || resume || shard.is_some() || halt_after.is_some() {
            return Err(CliError::Msg(
                "--compare runs multiple solvers and cannot be combined with \
                 --checkpoint/--resume/--shard/--halt-after"
                    .into(),
            ));
        }
        return sweep_compare(SweepCompare {
            opts: &opts,
            list: &list,
            seeds,
            seed_start,
            runner,
            history,
            max_retries,
            keep_going,
            no_timings,
            store,
            json,
        });
    }
    let algo = algo_opt.unwrap_or_else(|| "irfh".to_string());
    let registry = opts.registry();
    let mut experiment = Experiment::new(opts.source()?)
        .solver(&algo)
        .seeds(seed_start..seed_start + seeds)
        .runner(runner)
        .capture_history(history)
        .retry(RetryPolicy::attempts(max_retries + 1))
        .keep_going(keep_going)
        .resume(resume)
        .record_timings(!no_timings);
    if let Some(spec) = &opts.scenario {
        experiment = experiment.scenario(spec.clone());
    }
    if let Some(path) = &checkpoint {
        experiment = experiment.checkpoint(path);
    }
    if let Some(k) = halt_after {
        experiment = experiment.halt_after(k);
    }
    if let Some((index, count)) = shard {
        experiment = experiment.shard(index, count);
    }
    if let Some(store) = &store {
        experiment = experiment.cache(store.clone());
    }
    if progress || checkpoint.is_some() {
        experiment = experiment.on_seed(|event| match event {
            SeedEvent::Completed { run, done, total } => {
                eprintln!(
                    "[{done}/{total}] seed {} ok: {:.3} uJ",
                    run.seed, run.cost_uj
                );
            }
            SeedEvent::Failed {
                failure,
                done,
                total,
            } => {
                eprintln!(
                    "[{done}/{total}] seed {} FAILED after {} attempt(s): {}",
                    failure.seed, failure.attempts, failure.error
                );
            }
        });
    }
    let report = experiment.run(&registry)?;
    if json {
        return Ok(report.to_json());
    }
    let mut table = Table::new(
        &format!("sweep {algo} ({seeds} seeds)"),
        &["seed", "cost (uJ)", "solve (ms)"],
    );
    for run in &report.runs {
        table.row(&[
            run.seed.to_string(),
            format!("{:.3}", run.cost_uj),
            format!("{:.2}", run.solve_ms),
        ]);
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "cost: mean {:.3} uJ, std {:.3}, min {:.3}, max {:.3}",
        report.cost_uj.mean, report.cost_uj.std_dev, report.cost_uj.min, report.cost_uj.max
    );
    let _ = writeln!(
        out,
        "wall-clock: setup {:.1} ms, solve {:.1} ms ({:.2} ms/seed)",
        report.setup_ms_total,
        report.solve_ms_total,
        report.mean_solve_ms()
    );
    if let Some(cache) = &report.cache {
        let _ = writeln!(
            out,
            "cache: {} hit(s), {} miss(es), {} appended",
            cache.hits, cache.misses, cache.appended
        );
    }
    if !report.is_complete() {
        let _ = writeln!(out, "failed seeds ({} of {seeds}):", report.failures.len());
        for f in &report.failures {
            let _ = writeln!(
                out,
                "  seed {} after {} attempt(s): {}",
                f.seed, f.attempts, f.error
            );
        }
    }
    if history {
        let trace: Vec<String> = report
            .mean_history_uj()
            .iter()
            .map(|c| format!("{c:.3}"))
            .collect();
        let _ = writeln!(out, "mean cost by iteration: {}", trace.join(" -> "));
    }
    Ok(out)
}

/// Everything `sweep --compare` needs, bundled to keep the call site
/// readable.
struct SweepCompare<'a> {
    opts: &'a InstanceOptions,
    list: &'a str,
    seeds: u64,
    seed_start: u64,
    runner: SweepRunner,
    history: bool,
    max_retries: u32,
    keep_going: bool,
    no_timings: bool,
    store: Option<Arc<ResultStore>>,
    json: bool,
}

/// Runs several solvers over the identical instance/seed grid and
/// renders a paired comparison table (the shape of the paper's Fig. 7
/// and Fig. 8 cross-algorithm comparisons). Every cell reuses the
/// result store when `--cache` is active, so regenerating a comparison
/// after adding one solver only computes the new column.
fn sweep_compare(cfg: SweepCompare<'_>) -> Result<String, CliError> {
    let algos: Vec<String> = cfg
        .list
        .split(',')
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .collect();
    if algos.len() < 2 {
        return Err(CliError::Msg(
            "--compare needs at least two solver names (e.g. --compare rfh,irfh,idb)".into(),
        ));
    }
    let registry = cfg.opts.registry();
    let mut reports = Vec::new();
    for algo in &algos {
        let mut experiment = Experiment::new(cfg.opts.source()?)
            .solver(algo)
            .seeds(cfg.seed_start..cfg.seed_start + cfg.seeds)
            .runner(cfg.runner)
            .capture_history(cfg.history)
            .retry(RetryPolicy::attempts(cfg.max_retries + 1))
            .keep_going(cfg.keep_going)
            .record_timings(!cfg.no_timings);
        if let Some(spec) = &cfg.opts.scenario {
            experiment = experiment.scenario(spec.clone());
        }
        if let Some(store) = &cfg.store {
            experiment = experiment.cache(store.clone());
        }
        reports.push(experiment.run(&registry)?);
    }
    if cfg.json {
        return Ok(serde_json::to_string_pretty(&reports).expect("reports are serializable"));
    }
    let baseline = reports[0].cost_uj.mean;
    let mut table = Table::new(
        &format!("compare ({} seeds, seed {}..)", cfg.seeds, cfg.seed_start),
        &[
            "algo",
            "mean (uJ)",
            "std",
            "min",
            "max",
            &format!("vs {}", algos[0]),
        ],
    );
    for report in &reports {
        let delta = if baseline > 0.0 {
            format!("{:+.2}%", (report.cost_uj.mean / baseline - 1.0) * 100.0)
        } else {
            "-".to_string()
        };
        table.row(&[
            report.solver.clone(),
            format!("{:.3}", report.cost_uj.mean),
            format!("{:.3}", report.cost_uj.std_dev),
            format!("{:.3}", report.cost_uj.min),
            format!("{:.3}", report.cost_uj.max),
            delta,
        ]);
    }
    let mut out = table.render();
    for report in &reports {
        if let Some(cache) = &report.cache {
            let _ = writeln!(
                out,
                "cache {}: {} hit(s), {} miss(es), {} appended",
                report.solver, cache.hits, cache.misses, cache.appended
            );
        }
        if !report.is_complete() {
            let _ = writeln!(
                out,
                "WARNING: {} failed on {} seed(s); its statistics cover the rest",
                report.solver,
                report.failures.len()
            );
        }
    }
    Ok(out)
}

/// `wrsn merge`: folds shard logs back into one report.
fn merge(mut args: Args) -> Result<String, CliError> {
    let logs: String = args.require("logs", "a comma-separated list of shard log paths")?;
    let json = args.flag("json");
    let out_path: Option<String> = args.opt("out", "a file path")?;
    args.finish()?;
    let mut parts: Vec<(PathBuf, SweepCheckpoint)> = Vec::new();
    for path in logs.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        let path = PathBuf::from(path);
        let ckpt = SweepCheckpoint::load(&path)?;
        parts.push((path, ckpt));
    }
    let merged = merge_checkpoints(&parts)?;
    if let Some(path) = &out_path {
        merged.save(Path::new(path))?;
    }
    let seed_start = merged.seed_start;
    let total = merged.seed_end - merged.seed_start;
    let covered = (merged.runs.len() + merged.failures.len()) as u64;
    let report = RunReport::from_outcomes(
        merged.label.clone(),
        merged.solver.clone(),
        merged.runs,
        merged.failures,
    );
    if json {
        // The same serialization path as `sweep --json`, so merging a
        // full shard set is byte-identical to an unsharded sweep.
        return Ok(report.to_json());
    }
    let mut table = Table::new(
        &format!(
            "merge {} ({} of {} seeds from {} log(s))",
            report.solver,
            covered,
            total,
            parts.len()
        ),
        &["seed", "cost (uJ)", "solve (ms)"],
    );
    for run in &report.runs {
        table.row(&[
            run.seed.to_string(),
            format!("{:.3}", run.cost_uj),
            format!("{:.2}", run.solve_ms),
        ]);
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "cost: mean {:.3} uJ, std {:.3}, min {:.3}, max {:.3}",
        report.cost_uj.mean, report.cost_uj.std_dev, report.cost_uj.min, report.cost_uj.max
    );
    if covered < total {
        let _ = writeln!(
            out,
            "WARNING: {} seed(s) of {seed_start}..{} missing — merge every shard log \
             to reproduce the full sweep",
            total - covered,
            seed_start + total
        );
    }
    if !report.is_complete() {
        let _ = writeln!(
            out,
            "failed seeds ({} of {covered}):",
            report.failures.len()
        );
        for f in &report.failures {
            let _ = writeln!(
                out,
                "  seed {} after {} attempt(s): {}",
                f.seed, f.attempts, f.error
            );
        }
    }
    Ok(out)
}

#[derive(Serialize)]
struct SimulateReport {
    algorithm: String,
    rounds: u64,
    reports_delivered: u64,
    reports_lost: u64,
    delivery_ratio: f64,
    charger_energy_j: f64,
    consumed_energy_j: f64,
    first_death: Option<(f64, usize)>,
    analytic_cost_per_round_uj: f64,
    simulated_cost_per_round_uj: f64,
    soc_timeline: Vec<(f64, f64, f64)>,
    first_fault_round: Option<u64>,
    rounds_after_first_fault: u64,
    charger_skips: u64,
    charger_delays: u64,
    link_losses: u64,
    max_energy_deficit: f64,
    capacity_floor_hits: u64,
    charger_downtime_rounds: u64,
    breakdown_deaths: u64,
    tour_infeasible_posts: Vec<usize>,
}

/// Parses `--kill R:P[,R:P...]` entries into (round, post) pairs.
fn parse_kill_list(text: &str) -> Result<Vec<(u64, usize)>, CliError> {
    text.split(',')
        .map(|entry| {
            let parts: Vec<&str> = entry.split(':').collect();
            let [round, post] = parts.as_slice() else {
                return Err(CliError::Msg(format!(
                    "--kill expects ROUND:POST entries, got {entry:?}"
                )));
            };
            match (round.trim().parse(), post.trim().parse()) {
                (Ok(r), Ok(p)) => Ok((r, p)),
                _ => Err(CliError::Msg(format!(
                    "--kill expects ROUND:POST numbers, got {entry:?}"
                ))),
            }
        })
        .collect()
}

/// Parses `--charger-down FROM:UNTIL[,...]` entries into (from, until)
/// round windows.
fn parse_charger_down(text: &str) -> Result<Vec<(u64, u64)>, CliError> {
    text.split(',')
        .map(|entry| {
            let parts: Vec<&str> = entry.split(':').collect();
            let [from, until] = parts.as_slice() else {
                return Err(CliError::Msg(format!(
                    "--charger-down expects FROM:UNTIL entries, got {entry:?}"
                )));
            };
            match (from.trim().parse(), until.trim().parse()) {
                (Ok(a), Ok(b)) => Ok((a, b)),
                _ => Err(CliError::Msg(format!(
                    "--charger-down expects FROM:UNTIL numbers, got {entry:?}"
                ))),
            }
        })
        .collect()
}

/// Parses `--outage P:FROM:UNTIL[,...]` entries into (post, from, until)
/// triples.
fn parse_outage_list(text: &str) -> Result<Vec<(usize, u64, u64)>, CliError> {
    text.split(',')
        .map(|entry| {
            let parts: Vec<&str> = entry.split(':').collect();
            let [post, from, until] = parts.as_slice() else {
                return Err(CliError::Msg(format!(
                    "--outage expects POST:FROM:UNTIL entries, got {entry:?}"
                )));
            };
            match (
                post.trim().parse(),
                from.trim().parse(),
                until.trim().parse(),
            ) {
                (Ok(p), Ok(a), Ok(b)) => Ok((p, a, b)),
                _ => Err(CliError::Msg(format!(
                    "--outage expects POST:FROM:UNTIL numbers, got {entry:?}"
                ))),
            }
        })
        .collect()
}

fn simulate(mut args: Args) -> Result<String, CliError> {
    let rounds: u64 = args.get_or("rounds", "a round count", 1000)?;
    let bits: u64 = args.get_or("bits", "bits per report", 4000)?;
    let battery: f64 = args.get_or("battery", "joules", 0.1)?;
    let policy: String = args.get_or("policy", "threshold|tour|none", "threshold".to_string())?;
    let speed: f64 = args.get_or("speed", "meters per second", 5.0)?;
    let chargers: u32 = args.get_or("chargers", "a charger count", 1)?;
    let timeline: Option<u64> = args.opt("timeline", "a sample interval in rounds")?;
    let power: f64 = match args.opt::<f64>("power", "charger watts")? {
        Some(w) if w > 0.0 => w,
        Some(w) => return Err(CliError::Msg(format!("--power must be positive, got {w}"))),
        None => f64::INFINITY,
    };
    let fault_seed: Option<u64> = args.opt("fault-seed", "an integer seed")?;
    let kill: Option<String> = args.opt("kill", "ROUND:POST entries")?;
    let outage: Option<String> = args.opt("outage", "POST:FROM:UNTIL entries")?;
    let charger_skip: Option<f64> = args.opt("charger-skip", "a probability")?;
    let charger_delay: Option<f64> = args.opt("charger-delay", "a probability")?;
    let delay_s: f64 = args.get_or("delay-s", "seconds", 5.0)?;
    let link_loss: Option<f64> = args.opt("link-loss", "a probability")?;
    let battery_fade: Option<f64> = args.opt("battery-fade", "a fraction")?;
    let fade_floor: Option<f64> = args.opt("fade-floor", "a fraction")?;
    let charger_down: Option<String> = args.opt("charger-down", "FROM:UNTIL entries")?;
    let sched_tour = args.flag("sched-tour");
    let setup = setup_solve(&mut args)?;
    args.finish()?;
    // Range-check the probabilistic knobs up front so the error names
    // the flag, not an anonymous "fault plan" field.
    let charger_skip = charger_skip
        .map(|p| unit_interval("--charger-skip", p))
        .transpose()?;
    let charger_delay = charger_delay
        .map(|p| unit_interval("--charger-delay", p))
        .transpose()?;
    let link_loss = link_loss
        .map(|p| unit_interval("--link-loss", p))
        .transpose()?;
    let battery_fade = battery_fade
        .map(|f| unit_interval("--battery-fade", f))
        .transpose()?;
    let fade_floor = fade_floor
        .map(|f| unit_interval("--fade-floor", f))
        .transpose()?;
    let faults = if fault_seed.is_some()
        || kill.is_some()
        || outage.is_some()
        || charger_skip.is_some()
        || charger_delay.is_some()
        || link_loss.is_some()
        || battery_fade.is_some()
        || charger_down.is_some()
    {
        let mut plan = FaultPlan::seeded(fault_seed.unwrap_or(0));
        if let Some(text) = &kill {
            for (round, post) in parse_kill_list(text)? {
                plan = plan.kill_node(round, post);
            }
        }
        if let Some(text) = &outage {
            for (post, from, until) in parse_outage_list(text)? {
                plan = plan.outage(post, from, until);
            }
        }
        if let Some(p) = charger_skip {
            plan = plan.charger_skips(p);
        }
        if let Some(p) = charger_delay {
            plan = plan.charger_delays(p, delay_s);
        }
        if let Some(p) = link_loss {
            plan = plan.link_loss(p);
        }
        if let Some(f) = battery_fade {
            plan = plan.battery_fade(f);
        }
        if let Some(f) = fade_floor {
            plan = plan.battery_fade_floor(f);
        }
        if let Some(text) = &charger_down {
            for (from, until) in parse_charger_down(text)? {
                plan = plan.charger_breakdown(from, until);
            }
        }
        plan.validate(setup.instance.num_posts())
            .map_err(|why| CliError::Msg(format!("fault plan: {why}")))?;
        Some(plan)
    } else {
        None
    };
    if battery <= 0.0 {
        return Err(CliError::Msg("--battery must be positive".into()));
    }
    let charger = match policy.as_str() {
        "threshold" => ChargerPolicy::Threshold {
            interval_s: 10.0,
            trigger_soc: 0.5,
        },
        "tour" => ChargerPolicy::PatrolTour {
            speed_mps: speed,
            trigger_soc: 0.5,
            chargers,
        },
        "none" => ChargerPolicy::None,
        other => {
            return Err(CliError::Msg(format!(
                "unknown --policy {other:?} (expected threshold|tour|none)"
            )))
        }
    };
    if chargers == 0 {
        return Err(CliError::Msg("--chargers must be at least 1".into()));
    }
    // With --sched-tour the patrol follows the scheduling solver's
    // planned visit order instead of the simulator's own 2-opt tour.
    let mut planned_schedule = None;
    let tour_order = if sched_tour {
        if !matches!(charger, ChargerPolicy::PatrolTour { .. }) {
            return Err(CliError::Msg(
                "--sched-tour needs --policy tour (it drives the patrol chargers)".into(),
            ));
        }
        let mut spec = setup.scenario.clone().unwrap_or_default();
        spec.charger_speed_mps = speed;
        spec.chargers = chargers;
        spec.battery_j = battery;
        spec.bits_per_report = bits;
        let schedule = plan_tour_schedule(&setup.instance, &setup.solution, &spec).ok_or(
            CliError::NonGeometric {
                what: "--sched-tour",
            },
        )?;
        // The simulator wants a full permutation; posts the scheduler
        // deemed unsavable still get (hopeless) visits, at the end.
        let mut order = schedule.visit_order.clone();
        order.extend(schedule.infeasible.iter().copied());
        planned_schedule = Some(schedule);
        Some(order)
    } else {
        None
    };
    let config = SimConfig {
        round_interval_s: 1.0,
        bits_per_report: bits,
        battery_capacity: Energy::from_joules(battery),
        charger,
        record_soc_every: timeline,
        charger_power_w: power,
        faults,
        tour_order,
    };
    let sim = Simulator::new(&setup.instance, &setup.solution, config.clone());
    let report = sim.run(rounds);
    let analytic = setup.solution.total_cost() * bits as f64;
    let result = SimulateReport {
        algorithm: setup.solution.algorithm().to_string(),
        rounds: report.rounds_completed,
        reports_delivered: report.reports_delivered,
        reports_lost: report.reports_lost,
        delivery_ratio: report.delivery_ratio(),
        charger_energy_j: report.charger_energy.as_joules(),
        consumed_energy_j: report.consumed_energy.as_joules(),
        first_death: report.first_death,
        analytic_cost_per_round_uj: analytic.as_ujoules(),
        simulated_cost_per_round_uj: report.charger_energy_per_round().as_ujoules(),
        soc_timeline: report.soc_timeline.clone(),
        first_fault_round: report.first_fault_round,
        rounds_after_first_fault: report.rounds_after_first_fault,
        charger_skips: report.charger_skips,
        charger_delays: report.charger_delays,
        link_losses: report.link_losses,
        max_energy_deficit: report.max_energy_deficit,
        capacity_floor_hits: report.capacity_floor_hits,
        charger_downtime_rounds: report.charger_downtime_rounds,
        breakdown_deaths: report.breakdown_deaths,
        tour_infeasible_posts: report.tour_infeasible_posts.clone(),
    };
    if setup.json {
        return Ok(serde_json::to_string_pretty(&result).expect("serializable"));
    }
    let mut out = String::new();
    let _ = writeln!(out, "{report}");
    let _ = writeln!(
        out,
        "charger energy per round: {} (analytic prediction: {})",
        report.charger_energy_per_round(),
        analytic
    );
    if let Some((t, p)) = report.first_death {
        let _ = writeln!(
            out,
            "first death: post {p} at t={t:.1}s — charger policy too weak"
        );
    } else {
        let _ = writeln!(out, "network alive for the whole run");
    }
    if config.faults.is_some() {
        let _ = writeln!(
            out,
            "faults: delivery ratio {:.3}, first fault at round {}, {} round(s) survived after, \
             charger skips {} / delays {}, link losses {}, max energy deficit {:.3}",
            report.delivery_ratio(),
            report
                .first_fault_round
                .map_or_else(|| "-".to_string(), |r| r.to_string()),
            report.rounds_after_first_fault,
            report.charger_skips,
            report.charger_delays,
            report.link_losses,
            report.max_energy_deficit,
        );
        if report.capacity_floor_hits > 0
            || report.charger_downtime_rounds > 0
            || report.breakdown_deaths > 0
        {
            let _ = writeln!(
                out,
                "degradation: {} cell(s) faded to the capacity floor, charger down \
                 {} round(s), {} death(s) attributable to the breakdown",
                report.capacity_floor_hits, report.charger_downtime_rounds, report.breakdown_deaths,
            );
        }
    }
    if let (ChargerPolicy::PatrolTour { .. }, Some(geo)) =
        (config.charger, setup.instance.geometry())
    {
        let tour = PatrolTour::plan(geo.base_station, geo.posts.clone());
        let _ = writeln!(
            out,
            "patrol tour: {:.0} m, cycle {:.1}s at {speed} m/s across {chargers} charger(s)",
            tour.length(),
            tour.cycle_s(speed)
        );
    }
    if let Some(schedule) = &planned_schedule {
        let _ = writeln!(
            out,
            "sched-tour: {} route(s), {} post(s) scheduled, feasible: {}",
            schedule.routes.len(),
            schedule.visit_order.len(),
            schedule.is_feasible()
        );
    }
    if !report.tour_infeasible_posts.is_empty() {
        let posts: Vec<String> = report
            .tour_infeasible_posts
            .iter()
            .map(ToString::to_string)
            .collect();
        let _ = writeln!(
            out,
            "WARNING: patrol tour cannot sustain {} post(s): {} — their battery \
             windows are shorter than the charger cycle",
            posts.len(),
            posts.join(", ")
        );
    }
    if !report.soc_timeline.is_empty() {
        let mins: Vec<f64> = report.soc_timeline.iter().map(|&(_, min, _)| min).collect();
        let means: Vec<f64> = report.soc_timeline.iter().map(|&(_, _, m)| m).collect();
        let _ = writeln!(out, "state of charge over time (0..100%):");
        let _ = writeln!(out, "  mean {}", render::sparkline(&means));
        let _ = writeln!(out, "  min  {}", render::sparkline(&mins));
    }
    Ok(out)
}

#[derive(Serialize)]
struct FieldExpRow {
    spacing_cm: f64,
    distance_cm: f64,
    sensors: u32,
    per_node_power_mw: f64,
    network_efficiency: f64,
}

fn fieldexp(mut args: Args) -> Result<String, CliError> {
    let seed: u64 = args.get_or("seed", "an integer seed", 42)?;
    let trials: u32 = args.get_or("trials", "a trial count", 40)?;
    let json = args.flag("json");
    args.finish()?;
    if trials == 0 {
        return Err(CliError::Msg("--trials must be at least 1".into()));
    }
    let exp = FieldExperiment::default();
    let (sensors, distances, spacings) = FieldExperiment::table_ii_grid();
    let mut rows = Vec::new();
    for &sp in &spacings {
        for &d in &distances {
            for &m in &sensors {
                let o = exp.observe(m, d, sp, trials, seed);
                rows.push(FieldExpRow {
                    spacing_cm: sp,
                    distance_cm: d,
                    sensors: m,
                    per_node_power_mw: o.per_node_power_mw,
                    network_efficiency: o.network_efficiency,
                });
            }
        }
    }
    if json {
        return Ok(serde_json::to_string_pretty(&rows).expect("serializable"));
    }
    let mut out = String::new();
    for &sp in &spacings {
        let _ = writeln!(out, "spacing {sp} cm — per-node received power (mW):");
        let _ = write!(out, "{:>10}", "distance");
        for &m in &sensors {
            let _ = write!(out, "{:>9}", format!("m={m}"));
        }
        let _ = writeln!(out);
        for &d in &distances {
            let _ = write!(out, "{:>10}", format!("{d:.0} cm"));
            for &m in &sensors {
                let row = rows
                    .iter()
                    .find(|r| r.spacing_cm == sp && r.distance_cm == d && r.sensors == m)
                    .expect("full grid");
                let _ = write!(out, "{:>9.4}", row.per_node_power_mw);
            }
            let _ = writeln!(out);
        }
    }
    Ok(out)
}

#[derive(Serialize)]
struct ReduceReport {
    vars: usize,
    clauses: usize,
    posts: usize,
    nodes: u32,
    bound_w_nj: f64,
    dpll_satisfiable: bool,
    optimal_nj: Option<f64>,
    optimizer_satisfiable: Option<bool>,
    assignment: Option<Vec<bool>>,
}

fn reduce_cmd(mut args: Args) -> Result<String, CliError> {
    let path: String = args.require("dimacs", "a file path or -")?;
    let do_solve = args.flag("solve");
    let json = args.flag("json");
    args.finish()?;
    let text = if path == "-" {
        use std::io::Read as _;
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| CliError::Msg(format!("reading stdin: {e}")))?;
        buf
    } else {
        std::fs::read_to_string(&path).map_err(|e| CliError::Msg(format!("reading {path}: {e}")))?
    };
    let formula =
        CnfFormula::parse_dimacs(&text).map_err(|e| CliError::Msg(format!("DIMACS: {e}")))?;
    let red = reduce(&formula).map_err(|e| CliError::Msg(format!("reduction: {e}")))?;
    let dpll = DpllSolver::new().is_satisfiable(&formula);
    let mut report = ReduceReport {
        vars: formula.num_vars(),
        clauses: formula.num_clauses(),
        posts: red.instance().num_posts(),
        nodes: red.instance().num_nodes(),
        bound_w_nj: red.cost_bound().as_njoules(),
        dpll_satisfiable: dpll,
        optimal_nj: None,
        optimizer_satisfiable: None,
        assignment: None,
    };
    if do_solve {
        let sol = BranchAndBound::new()
            .solve(red.instance())
            .map_err(|e| CliError::Msg(format!("solving gadget: {e}")))?;
        let meets = sol.total_cost().as_njoules() <= report.bound_w_nj * (1.0 + 1e-9);
        report.optimal_nj = Some(sol.total_cost().as_njoules());
        report.optimizer_satisfiable = Some(meets);
        if meets {
            report.assignment = Some(red.decode(&sol));
        }
    }
    if json {
        return Ok(serde_json::to_string_pretty(&report).expect("serializable"));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "formula: {} vars, {} clauses -> gadget with {} posts, {} nodes, W = {:.1} nJ",
        report.vars, report.clauses, report.posts, report.nodes, report.bound_w_nj
    );
    let _ = writeln!(
        out,
        "DPLL says: {}",
        if dpll { "SATISFIABLE" } else { "UNSATISFIABLE" }
    );
    if let (Some(opt), Some(meets)) = (report.optimal_nj, report.optimizer_satisfiable) {
        let _ = writeln!(
            out,
            "optimizer: optimal cost {:.1} nJ {} W -> {}",
            opt,
            if meets { "<=" } else { ">" },
            if meets {
                "SATISFIABLE"
            } else {
                "UNSATISFIABLE"
            }
        );
        if let Some(a) = &report.assignment {
            let pretty: Vec<String> = a
                .iter()
                .enumerate()
                .map(|(i, &v)| format!("x{}={}", i + 1, v))
                .collect();
            let _ = writeln!(out, "assignment: {}", pretty.join(", "));
        }
        if meets != dpll {
            let _ = writeln!(
                out,
                "WARNING: optimizer and DPLL disagree — please report a bug"
            );
        }
    }
    Ok(out)
}

fn serve_cmd(mut args: Args) -> Result<String, CliError> {
    let addr: String = args.get_or("addr", "an address:port", "127.0.0.1:7421".to_string())?;
    let workers: usize = args.get_or("workers", "a worker count", 4)?;
    let queue_depth: usize = args.get_or("queue-depth", "a queue capacity", 64)?;
    let cache_arg = args.flag_or_value("cache");
    let durability_arg: Option<String> = args.opt("durability", "flush or fsync")?;
    let timeout_ms: Option<u64> = args.opt("request-timeout-ms", "milliseconds")?;
    let keep_alive = args.flag("keep-alive");
    let keep_alive_max_requests: usize =
        args.get_or("keep-alive-max-requests", "a request cap", 32)?;
    let max_conns: usize = args.get_or("max-conns", "a connection cap", 4096)?;
    let max_jobs: usize = args.get_or("max-jobs", "a job cap", 8)?;
    let tenants_file: Option<String> = args.opt("tenants", "a tenants file")?;
    let default_rps: f64 = args.get_or("default-rps", "requests per second", 0.0)?;
    let default_burst: u64 = args.get_or("default-burst", "a burst size", 16)?;
    let chaos_fault: Option<f64> = args.opt("chaos", "a probability")?;
    let chaos_truncate: Option<f64> = args.opt("chaos-truncate", "a probability")?;
    let chaos_latency: Option<f64> = args.opt("chaos-latency", "a probability")?;
    let chaos_latency_ms: u64 = args.get_or("chaos-latency-ms", "milliseconds", 25)?;
    let chaos_seed: u64 = args.get_or("chaos-seed", "an integer seed", 0)?;
    let cluster_peers: Option<String> = args.opt("cluster-peers", "a peer list")?;
    let node_id: Option<String> = args.opt("node-id", "a node id")?;
    let gossip_interval_ms: u64 = args.get_or("gossip-interval-ms", "milliseconds", 1000)?;
    let cluster_seed: u64 = args.get_or("cluster-seed", "an integer seed", 0)?;
    let cluster_vnodes: usize = args.get_or(
        "cluster-vnodes",
        "a virtual-node count",
        wrsn_cluster::DEFAULT_VNODES,
    )?;
    args.finish()?;
    if workers == 0 {
        return Err(CliError::Msg("--workers must be at least 1".into()));
    }
    if queue_depth == 0 {
        return Err(CliError::Msg("--queue-depth must be at least 1".into()));
    }
    if max_conns == 0 || max_jobs == 0 {
        return Err(CliError::Msg(
            "--max-conns and --max-jobs must be at least 1".into(),
        ));
    }
    if keep_alive_max_requests == 0 {
        return Err(CliError::Msg(
            "--keep-alive-max-requests must be at least 1".into(),
        ));
    }
    if timeout_ms == Some(0) {
        return Err(CliError::Msg(
            "--request-timeout-ms must be at least 1".into(),
        ));
    }
    let chaos_fault = chaos_fault
        .map(|p| unit_interval("--chaos", p))
        .transpose()?;
    let chaos_truncate = chaos_truncate
        .map(|p| unit_interval("--chaos-truncate", p))
        .transpose()?;
    let chaos_latency = chaos_latency
        .map(|p| unit_interval("--chaos-latency", p))
        .transpose()?;
    let chaos = if chaos_fault.is_some() || chaos_truncate.is_some() || chaos_latency.is_some() {
        let mut policy = ChaosPolicy::seeded(chaos_seed);
        if let Some(p) = chaos_fault {
            policy = policy.faults(p);
        }
        if let Some(p) = chaos_truncate {
            policy = policy.truncation(p);
        }
        if let Some(p) = chaos_latency {
            policy = policy.latency(p, Duration::from_millis(chaos_latency_ms));
        }
        Some(policy)
    } else {
        None
    };
    if default_rps < 0.0 {
        return Err(CliError::Msg("--default-rps must be non-negative".into()));
    }
    if default_burst == 0 {
        return Err(CliError::Msg("--default-burst must be at least 1".into()));
    }
    let tenants = match &tenants_file {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CliError::Msg(format!("reading {path}: {e}")))?;
            let specs = wrsn_serve::tenant::parse_tenants(&text)
                .map_err(|why| CliError::Msg(format!("{path}: {why}")))?;
            Some(specs)
        }
        None => None,
    };
    let tenants_note = match &tenants {
        Some(specs) => format!(", {} tenant(s)", specs.len()),
        None => String::new(),
    };
    let cluster = match &cluster_peers {
        Some(spec) => {
            if cache_arg.is_none() {
                return Err(CliError::Msg(
                    "--cluster-peers requires --cache (the fabric shares the result store)".into(),
                ));
            }
            let peers = wrsn_cluster::parse_peers(spec)
                .map_err(|why| CliError::Msg(format!("--cluster-peers: {why}")))?;
            let node_id = node_id
                .ok_or_else(|| CliError::Msg("--cluster-peers requires --node-id".into()))?;
            if gossip_interval_ms == 0 {
                return Err(CliError::Msg(
                    "--gossip-interval-ms must be at least 1".into(),
                ));
            }
            if cluster_vnodes == 0 {
                return Err(CliError::Msg("--cluster-vnodes must be at least 1".into()));
            }
            let config = wrsn_cluster::ClusterConfig {
                node_id,
                peers,
                seed: cluster_seed,
                vnodes: cluster_vnodes,
                gossip_interval: Duration::from_millis(gossip_interval_ms),
            };
            // Validate membership now so a typoed --node-id fails at
            // startup, not on the first forwarded request.
            config
                .ring()
                .map_err(|why| CliError::Msg(format!("cluster config: {why}")))?;
            Some(config)
        }
        None => {
            if node_id.is_some() {
                return Err(CliError::Msg("--node-id requires --cluster-peers".into()));
            }
            None
        }
    };
    let cluster_note = match &cluster {
        Some(c) => format!(
            ", cluster node {} of {} ({} vnodes, gossip {}ms)",
            c.node_id,
            c.peers.len(),
            c.vnodes,
            gossip_interval_ms
        ),
        None => String::new(),
    };
    let durability = match &durability_arg {
        Some(text) => {
            if cache_arg.is_none() {
                return Err(CliError::Msg(
                    "--durability requires --cache (there is no disk without a store)".into(),
                ));
            }
            DurabilityPolicy::parse(text).ok_or_else(|| {
                CliError::Msg(format!("--durability expects flush or fsync, got {text:?}"))
            })?
        }
        None => DurabilityPolicy::default(),
    };
    let store = cache_arg
        .map(|dir| open_cache_with(dir, durability))
        .transpose()?;
    let cache_note = match &store {
        Some(store) => format!(
            ", cache {} ({} entries, {})",
            store.dir().display(),
            store.len(),
            store.durability().as_str()
        ),
        None => String::new(),
    };
    let chaos_note = match &chaos {
        Some(p) => format!(
            ", CHAOS fault {:.2}/truncate {:.2}/latency {:.2} seed {}",
            p.fault_prob, p.truncate_prob, p.latency_prob, p.seed
        ),
        None => String::new(),
    };
    let mut api = ApiContext::new();
    api.store = store;
    let config = ServerConfig {
        addr,
        workers,
        queue_depth,
        request_timeout: timeout_ms.map(Duration::from_millis),
        keep_alive,
        keep_alive_max_requests,
        max_conns,
        max_jobs,
        chaos,
        tenants,
        default_rps,
        default_burst,
        cluster,
        ..ServerConfig::default()
    };
    let handle = Server::start(&config, api).map_err(|e| CliError::Msg(e.to_string()))?;
    let bound = handle.addr();
    // Announce readiness on stderr immediately — stdout is the final
    // report, printed only after shutdown.
    eprintln!(
        "wrsn-serve listening on {bound} ({workers} worker(s), queue {queue_depth}, \
         conns {max_conns}, jobs {max_jobs}{tenants_note}{cache_note}{chaos_note}{cluster_note})"
    );
    handle
        .run_until_signal()
        .map_err(|e| CliError::Msg(e.to_string()))?;
    Ok(format!("wrsn-serve on {bound}: shut down cleanly"))
}

#[derive(Serialize)]
struct LoadgenRow {
    requests: u64,
    connections: usize,
    ok: u64,
    non_ok: u64,
    errors: u64,
    retries: u64,
    retryable_status: u64,
    rate_limited: u64,
    retries_by_status: serde::Value,
    transport_resets: u64,
    breaker_opens: u64,
    elapsed_s: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// The per-status retry totals as a `{"429": 31, "503": 4}` object.
fn status_counts(list: &[(u16, u64)]) -> serde::Value {
    use serde::Serialize as _;
    serde::Value::Object(
        list.iter()
            .map(|&(status, count)| (status.to_string(), count.to_value()))
            .collect(),
    )
}

fn loadgen_row(requests: u64, report: &client::LoadgenReport) -> LoadgenRow {
    let ms = |q: f64| report.quantile(q).as_secs_f64() * 1e3;
    LoadgenRow {
        requests,
        connections: report.connections,
        ok: report.ok,
        non_ok: report.non_ok,
        errors: report.errors,
        retries: report.retries,
        retryable_status: report.retryable_status,
        rate_limited: report.rate_limited,
        retries_by_status: status_counts(&report.retries_by_status),
        transport_resets: report.transport_resets,
        breaker_opens: report.breaker_opens,
        elapsed_s: report.elapsed.as_secs_f64(),
        throughput_rps: report.throughput_rps(),
        p50_ms: ms(0.50),
        p95_ms: ms(0.95),
        p99_ms: ms(0.99),
    }
}

fn loadgen_cmd(mut args: Args) -> Result<String, CliError> {
    let addr: String = args.get_or("addr", "an address:port", "127.0.0.1:7421".to_string())?;
    let concurrency: usize = args.get_or("concurrency", "a thread count", 4)?;
    let requests: u64 = args.get_or("requests", "a request count", 200)?;
    let path: String = args.get_or("path", "an endpoint path", "/v1/solve".to_string())?;
    let method: String = args.get_or("method", "an HTTP method", "POST".to_string())?;
    let body: String = args.get_or("body", "a JSON body", "{}".to_string())?;
    let retries: u32 = args.get_or("retries", "a retry budget", 0)?;
    let connections: Option<usize> = args.opt("connections", "a connection count")?;
    let pipeline: usize = args.get_or("pipeline", "a batch depth", 1)?;
    let job = args.flag("job");
    let tenant_key: Option<String> = args.opt("tenant", "an API key")?;
    let tenants_file: Option<String> = args.opt("tenants-file", "a tenants file")?;
    let addrs: Option<String> = args.opt("addrs", "a comma-separated address list")?;
    let bench_json: Option<String> = args.opt("bench-json", "an output path")?;
    let json = args.flag("json");
    args.finish()?;
    if job {
        return loadgen_job(&addr, &body, json);
    }
    if concurrency == 0 || requests == 0 {
        return Err(CliError::Msg(
            "--concurrency and --requests must be at least 1".into(),
        ));
    }
    if connections == Some(0) || pipeline == 0 {
        return Err(CliError::Msg(
            "--connections and --pipeline must be at least 1".into(),
        ));
    }
    let body_opt = if method == "GET" {
        None
    } else {
        Some(body.as_str())
    };
    if let Some(list) = &addrs {
        if connections.is_some() || job || tenants_file.is_some() {
            return Err(CliError::Msg(
                "--addrs is incompatible with --connections/--job/--tenants-file".into(),
            ));
        }
        let spec = MultiNodeSpec {
            method: &method,
            path: &path,
            body: body_opt,
            key: tenant_key.as_deref(),
            concurrency,
            requests,
            retries,
        };
        return loadgen_multi(list, &spec, bench_json.as_deref(), json);
    }
    if let Some(file) = &tenants_file {
        if tenant_key.is_some() {
            return Err(CliError::Msg(
                "--tenant and --tenants-file are mutually exclusive".into(),
            ));
        }
        let spec = AdversarialSpec {
            addr: &addr,
            method: &method,
            path: &path,
            body: body_opt,
            concurrency,
            requests,
            retries,
        };
        return loadgen_adversarial(file, &spec, bench_json.as_deref(), json);
    }
    let report = match connections {
        // Open-loop: a fixed fleet of persistent keep-alive connections
        // driven with pipelined batches.
        Some(conns) => client::loadgen_keep_alive_auth(
            &addr,
            &method,
            &path,
            body_opt,
            tenant_key.as_deref(),
            conns,
            requests,
            pipeline,
        ),
        // Closed-loop: one connection per request, optional retries.
        None => {
            let retry = (retries > 0).then(|| client::RetryPolicy {
                max_retries: retries,
                ..client::RetryPolicy::default()
            });
            client::loadgen_auth(
                &addr,
                &method,
                &path,
                body_opt,
                tenant_key.as_deref(),
                concurrency,
                requests,
                retry.as_ref(),
            )
        }
    }
    .map_err(|e| CliError::Msg(e.to_string()))?;
    let row = loadgen_row(requests, &report);
    let mut doc = row.to_value();
    // When the server exposes an io section (a store is attached), the
    // durability counters ride along in the bench artifact so a perf
    // row records the fsync cost it was measured under.
    if let serde::Value::Object(pairs) = &mut doc {
        let server_io = client::request(&addr, "GET", "/statusz", None)
            .ok()
            .filter(|resp| resp.status == 200)
            .and_then(|resp| serde_json::from_str::<serde::Value>(&resp.body).ok())
            .and_then(|status| status.get("io").cloned());
        if let Some(io) = server_io {
            pairs.push(("server_io".to_string(), io));
        }
    }
    if let Some(path) = &bench_json {
        let text = serde_json::to_string_pretty(&doc).expect("serializable");
        std::fs::write(path, text.as_bytes())
            .map_err(|e| CliError::Msg(format!("writing {path}: {e}")))?;
    }
    if json {
        return Ok(serde_json::to_string_pretty(&doc).expect("serializable"));
    }
    let drive = match connections {
        Some(c) => format!("{c} keep-alive connection(s), pipeline {pipeline}"),
        None => format!("{concurrency} thread(s)"),
    };
    let mut table = Table::new(
        &format!("loadgen {method} {path} ({requests} requests, {drive})"),
        &["metric", "value"],
    );
    table.row(&["connections".to_string(), row.connections.to_string()]);
    table.row(&["ok".to_string(), row.ok.to_string()]);
    table.row(&["non-200".to_string(), row.non_ok.to_string()]);
    table.row(&["transport errors".to_string(), row.errors.to_string()]);
    table.row(&["retries".to_string(), row.retries.to_string()]);
    table.row(&[
        "retryable non-200s".to_string(),
        row.retryable_status.to_string(),
    ]);
    table.row(&[
        "rate limited (429)".to_string(),
        row.rate_limited.to_string(),
    ]);
    table.row(&[
        "transport resets".to_string(),
        row.transport_resets.to_string(),
    ]);
    table.row(&["breaker opens".to_string(), row.breaker_opens.to_string()]);
    table.row(&["elapsed (s)".to_string(), format!("{:.3}", row.elapsed_s)]);
    table.row(&[
        "throughput (req/s)".to_string(),
        format!("{:.1}", row.throughput_rps),
    ]);
    table.row(&["p50 (ms)".to_string(), format!("{:.2}", row.p50_ms)]);
    table.row(&["p95 (ms)".to_string(), format!("{:.2}", row.p95_ms)]);
    table.row(&["p99 (ms)".to_string(), format!("{:.2}", row.p99_ms)]);
    Ok(table.render())
}

/// The shared workload of a `--addrs` multi-node run.
struct MultiNodeSpec<'a> {
    method: &'a str,
    path: &'a str,
    body: Option<&'a str>,
    key: Option<&'a str>,
    concurrency: usize,
    requests: u64,
    retries: u32,
}

/// `loadgen --addrs`: split the request budget round-robin across a
/// fleet of cluster nodes (each node's share driven by its own thread
/// pool, all nodes concurrently) and report one row per node next to
/// the aggregate — per-node p50/p95/p99 makes a slow or cold node
/// stand out immediately.
fn loadgen_multi(
    list: &str,
    spec: &MultiNodeSpec<'_>,
    bench_json: Option<&str>,
    json: bool,
) -> Result<String, CliError> {
    use serde::Serialize as _;
    let nodes: Vec<String> = list
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(String::from)
        .collect();
    if nodes.is_empty() {
        return Err(CliError::Msg("--addrs needs at least one address".into()));
    }
    let n = nodes.len() as u64;
    if spec.requests < n {
        return Err(CliError::Msg(format!(
            "--requests {} is fewer than the {} node(s) in --addrs",
            spec.requests, n
        )));
    }
    let retry = (spec.retries > 0).then(|| client::RetryPolicy {
        max_retries: spec.retries,
        ..client::RetryPolicy::default()
    });
    let results: Vec<(String, u64, Result<client::LoadgenReport, String>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = nodes
                .iter()
                .enumerate()
                .map(|(i, addr)| {
                    // Round-robin split: the first (requests % n) nodes
                    // carry one extra request.
                    let share = spec.requests / n + u64::from((i as u64) < spec.requests % n);
                    let retry = retry.clone();
                    scope.spawn(move || {
                        let report = client::loadgen_auth(
                            addr,
                            spec.method,
                            spec.path,
                            spec.body,
                            spec.key,
                            spec.concurrency.min(share.max(1) as usize),
                            share,
                            retry.as_ref(),
                        )
                        .map_err(|e| e.to_string());
                        (addr.clone(), share, report)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("loadgen node thread panicked"))
                .collect()
        });
    let mut rows: Vec<(String, LoadgenRow)> = Vec::new();
    let mut agg = client::LoadgenReport {
        ok: 0,
        non_ok: 0,
        errors: 0,
        elapsed: Duration::ZERO,
        latencies: Vec::new(),
        retries: 0,
        retryable_status: 0,
        rate_limited: 0,
        retries_by_status: Vec::new(),
        transport_resets: 0,
        breaker_opens: 0,
        connections: 0,
    };
    for (addr, share, result) in results {
        let report = match result {
            Ok(report) => report,
            Err(why) => return Err(CliError::Msg(format!("node {addr}: {why}"))),
        };
        agg.ok += report.ok;
        agg.non_ok += report.non_ok;
        agg.errors += report.errors;
        // The nodes run concurrently, so fleet wall-clock is the
        // slowest node, not the sum.
        agg.elapsed = agg.elapsed.max(report.elapsed);
        agg.latencies.extend_from_slice(&report.latencies);
        agg.retries += report.retries;
        agg.retryable_status += report.retryable_status;
        agg.rate_limited += report.rate_limited;
        for &(status, count) in &report.retries_by_status {
            match agg.retries_by_status.iter_mut().find(|(s, _)| *s == status) {
                Some((_, total)) => *total += count,
                None => agg.retries_by_status.push((status, count)),
            }
        }
        agg.transport_resets += report.transport_resets;
        agg.breaker_opens += report.breaker_opens;
        agg.connections += report.connections;
        rows.push((addr, loadgen_row(share, &report)));
    }
    agg.latencies.sort_unstable();
    agg.retries_by_status.sort_unstable();
    let total = loadgen_row(spec.requests, &agg);
    let doc = serde::Value::Object(vec![
        (
            "nodes".to_string(),
            serde::Value::Object(
                rows.iter()
                    .map(|(addr, row)| (addr.clone(), row.to_value()))
                    .collect(),
            ),
        ),
        ("aggregate".to_string(), total.to_value()),
    ]);
    if let Some(path) = bench_json {
        let text = serde_json::to_string_pretty(&doc).expect("serializable");
        std::fs::write(path, text.as_bytes())
            .map_err(|e| CliError::Msg(format!("writing {path}: {e}")))?;
    }
    if json {
        return Ok(serde_json::to_string_pretty(&doc).expect("serializable"));
    }
    let mut table = Table::new(
        &format!(
            "loadgen {} {} ({} requests round-robin over {} node(s))",
            spec.method,
            spec.path,
            spec.requests,
            rows.len()
        ),
        &[
            "node", "requests", "ok", "non-200", "errors", "retries", "req/s", "p50 ms", "p95 ms",
            "p99 ms",
        ],
    );
    for (addr, row) in &rows {
        table.row(&[
            addr.clone(),
            row.requests.to_string(),
            row.ok.to_string(),
            row.non_ok.to_string(),
            row.errors.to_string(),
            row.retries.to_string(),
            format!("{:.1}", row.throughput_rps),
            format!("{:.2}", row.p50_ms),
            format!("{:.2}", row.p95_ms),
            format!("{:.2}", row.p99_ms),
        ]);
    }
    table.row(&[
        "(aggregate)".to_string(),
        total.requests.to_string(),
        total.ok.to_string(),
        total.non_ok.to_string(),
        total.errors.to_string(),
        total.retries.to_string(),
        format!("{:.1}", total.throughput_rps),
        format!("{:.2}", total.p50_ms),
        format!("{:.2}", total.p95_ms),
        format!("{:.2}", total.p99_ms),
    ]);
    Ok(table.render())
}

/// The shared workload of an adversarial multi-tenant run: every
/// tenant fires the same requests at the same server, concurrently.
struct AdversarialSpec<'a> {
    addr: &'a str,
    method: &'a str,
    path: &'a str,
    body: Option<&'a str>,
    concurrency: usize,
    requests: u64,
    retries: u32,
}

/// `loadgen --tenants-file`: drive every keyed tenant in the config
/// against the server at once — each under its own API key with the
/// full workload — and report one row per tenant, so fairness (who got
/// throughput, who got 429s) is directly measurable.
fn loadgen_adversarial(
    file: &str,
    spec: &AdversarialSpec<'_>,
    bench_json: Option<&str>,
    json: bool,
) -> Result<String, CliError> {
    use serde::Serialize as _;
    let text =
        std::fs::read_to_string(file).map_err(|e| CliError::Msg(format!("reading {file}: {e}")))?;
    let tenants = wrsn_serve::tenant::parse_tenants(&text)
        .map_err(|why| CliError::Msg(format!("{file}: {why}")))?;
    let keyed: Vec<_> = tenants.iter().filter(|t| t.key.is_some()).collect();
    if keyed.is_empty() {
        return Err(CliError::Msg(format!("{file}: no keyed tenants to drive")));
    }
    let retry = (spec.retries > 0).then(|| client::RetryPolicy {
        max_retries: spec.retries,
        ..client::RetryPolicy::default()
    });
    let results: Vec<(String, Result<client::LoadgenReport, String>)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = keyed
                .iter()
                .map(|tenant| {
                    let retry = retry.clone();
                    scope.spawn(move || {
                        let report = client::loadgen_auth(
                            spec.addr,
                            spec.method,
                            spec.path,
                            spec.body,
                            tenant.key.as_deref(),
                            spec.concurrency,
                            spec.requests,
                            retry.as_ref(),
                        )
                        .map_err(|e| e.to_string());
                        (tenant.name.clone(), report)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("loadgen tenant thread panicked"))
                .collect()
        });
    let mut rows: Vec<(String, LoadgenRow)> = Vec::new();
    for (name, result) in results {
        match result {
            Ok(report) => rows.push((name, loadgen_row(spec.requests, &report))),
            Err(why) => return Err(CliError::Msg(format!("tenant {name}: {why}"))),
        }
    }
    let doc = serde::Value::Object(
        rows.iter()
            .map(|(name, row)| (name.clone(), row.to_value()))
            .collect(),
    );
    if let Some(path) = bench_json {
        let text = serde_json::to_string_pretty(&doc).expect("serializable");
        std::fs::write(path, text.as_bytes())
            .map_err(|e| CliError::Msg(format!("writing {path}: {e}")))?;
    }
    if json {
        return Ok(serde_json::to_string_pretty(&doc).expect("serializable"));
    }
    let mut table = Table::new(
        &format!(
            "loadgen {} {} ({} requests x {} tenant(s), {} thread(s) each)",
            spec.method,
            spec.path,
            spec.requests,
            rows.len(),
            spec.concurrency
        ),
        &[
            "tenant", "ok", "non-200", "429s", "errors", "retries", "req/s", "p50 ms", "p99 ms",
        ],
    );
    for (name, row) in &rows {
        table.row(&[
            name.clone(),
            row.ok.to_string(),
            row.non_ok.to_string(),
            row.rate_limited.to_string(),
            row.errors.to_string(),
            row.retries.to_string(),
            format!("{:.1}", row.throughput_rps),
            format!("{:.2}", row.p50_ms),
            format!("{:.2}", row.p99_ms),
        ]);
    }
    Ok(table.render())
}

/// `loadgen --job`: submit one async sweep job, stream its events, and
/// report the round trip.
fn loadgen_job(addr: &str, body: &str, json: bool) -> Result<String, CliError> {
    let spec = if body.trim().is_empty() || body == "{}" {
        None
    } else {
        Some(body)
    };
    let outcome = client::run_job(
        addr,
        spec,
        Duration::from_millis(50),
        Duration::from_secs(120),
    )
    .map_err(|e| CliError::Msg(e.to_string()))?;
    if json {
        let value = serde::Value::Object(vec![
            (
                "id".to_string(),
                serde::Value::Number(serde::Number::PosInt(outcome.id)),
            ),
            (
                "state".to_string(),
                serde::Value::String(outcome.state.clone()),
            ),
            (
                "events".to_string(),
                serde::Value::Number(serde::Number::PosInt(outcome.events.len() as u64)),
            ),
            (
                "final".to_string(),
                serde_json::from_str::<serde::Value>(&outcome.final_body)
                    .unwrap_or(serde::Value::String(outcome.final_body.clone())),
            ),
        ]);
        return Ok(serde_json::to_string_pretty(&value).expect("serializable"));
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "job {} finished in state {:?} after {} event(s)",
        outcome.id,
        outcome.state,
        outcome.events.len()
    );
    let _ = writeln!(out, "{}", outcome.final_body);
    Ok(out)
}

fn cache_cmd(rest: &[String]) -> Result<String, CliError> {
    let Some((sub, rest)) = rest.split_first() else {
        return Ok(CACHE_HELP.to_string());
    };
    match sub.as_str() {
        "gc" => cache_gc(Args::parse(rest.to_vec())?),
        "verify" => cache_verify(Args::parse(rest.to_vec())?),
        other => Err(CliError::Msg(format!(
            "unknown cache subcommand {other:?}\n\n{CACHE_HELP}"
        ))),
    }
}

fn cache_verify(mut args: Args) -> Result<String, CliError> {
    let cache_arg = args.flag_or_value("cache");
    let json = args.flag("json");
    args.finish()?;
    let dir = cache_arg
        .flatten()
        .unwrap_or_else(|| DEFAULT_CACHE_DIR.to_string());
    let report =
        ResultStore::verify_dir(Path::new(&dir)).map_err(|e| CliError::Msg(e.to_string()))?;
    let rendered = if json {
        serde_json::to_string_pretty(&report).expect("serializable")
    } else {
        let mut out = String::new();
        let _ = writeln!(out, "cache verify in {dir}:");
        for segment in &report.segments {
            let verdict = match &segment.error {
                Some(why) => format!("CORRUPT: {why}"),
                None if segment.torn_tail => "clean (torn tail, repairable)".to_string(),
                None => "clean".to_string(),
            };
            let _ = writeln!(
                out,
                "  {} — {} record(s), {} byte(s): {verdict}",
                segment.name, segment.records, segment.bytes
            );
        }
        let _ = writeln!(
            out,
            "  {} record(s), {} distinct key(s), {} quarantined file(s)",
            report.records, report.keys, report.quarantined
        );
        let _ = write!(
            out,
            "verdict: {}",
            if report.is_clean() {
                "clean"
            } else {
                "CORRUPT"
            }
        );
        out
    };
    if report.is_clean() {
        Ok(rendered)
    } else {
        // Nonzero exit so CI and scripts can gate on store health; the
        // report still lands on stderr via the error path.
        Err(CliError::Msg(rendered))
    }
}

fn cache_gc(mut args: Args) -> Result<String, CliError> {
    let cache_arg = args.flag_or_value("cache");
    let max_bytes: Option<u64> = args.opt("max-bytes", "a byte budget")?;
    let json = args.flag("json");
    args.finish()?;
    let store = open_cache(cache_arg.flatten())?;
    let tag = cache_tag();
    let report = store
        .gc(|t| t == Some(tag.as_str()), max_bytes)
        .map_err(|e| CliError::Msg(e.to_string()))?;
    if json {
        return Ok(serde_json::to_string_pretty(&report).expect("serializable"));
    }
    let mut out = String::new();
    let _ = writeln!(out, "cache gc in {}:", store.dir().display());
    let _ = writeln!(
        out,
        "  kept {} entr{}, dropped {} unreachable + {} over budget",
        report.kept,
        if report.kept == 1 { "y" } else { "ies" },
        report.dropped_unreachable,
        report.dropped_for_budget,
    );
    let _ = writeln!(
        out,
        "  disk: {} -> {} bytes ({} reclaimed)",
        report.bytes_before,
        report.bytes_after,
        report.bytes_reclaimed()
    );
    Ok(out)
}

fn cluster_cmd(rest: &[String]) -> Result<String, CliError> {
    let Some((sub, rest)) = rest.split_first() else {
        return Ok(CLUSTER_HELP.to_string());
    };
    match sub.as_str() {
        "status" => cluster_status(Args::parse(rest.to_vec())?),
        other => Err(CliError::Msg(format!(
            "unknown cluster subcommand {other:?}\n\n{CLUSTER_HELP}"
        ))),
    }
}

/// One node's row in `wrsn cluster status`, or why it could not be
/// fetched.
enum NodeStatus {
    Up {
        cluster: serde::Value,
        entries: Option<u64>,
        keys_digest: Option<String>,
    },
    Down(String),
}

/// Fetches one node's `/statusz` cluster section plus its anti-entropy
/// manifest digest.
fn fetch_node_status(addr: &str) -> NodeStatus {
    let status = match client::request(addr, "GET", "/statusz", None) {
        Ok(resp) if resp.status == 200 => resp,
        Ok(resp) => return NodeStatus::Down(format!("/statusz answered {}", resp.status)),
        Err(e) => return NodeStatus::Down(e.to_string()),
    };
    let Ok(doc) = serde_json::from_str::<serde::Value>(&status.body) else {
        return NodeStatus::Down("unparseable /statusz".to_string());
    };
    let Some(cluster) = doc.get("cluster").cloned() else {
        return NodeStatus::Down("not in cluster mode (no cluster section)".to_string());
    };
    let entries = doc
        .get("cache")
        .and_then(|c| c.get("entries"))
        .and_then(serde::Value::as_u64);
    let keys_digest = client::request(addr, "GET", "/v1/cluster/segments", None)
        .ok()
        .filter(|resp| resp.status == 200)
        .and_then(|resp| serde_json::from_str::<serde::Value>(&resp.body).ok())
        .and_then(|m| {
            m.get("keys_digest")
                .and_then(serde::Value::as_str)
                .map(str::to_string)
        });
    NodeStatus::Up {
        cluster,
        entries,
        keys_digest,
    }
}

fn cluster_status(mut args: Args) -> Result<String, CliError> {
    use serde::Serialize as _;
    let addrs: String = args.require("addrs", "a comma-separated address list")?;
    let json = args.flag("json");
    args.finish()?;
    let nodes: Vec<&str> = addrs
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    if nodes.is_empty() {
        return Err(CliError::Msg("--addrs needs at least one address".into()));
    }
    let statuses: Vec<(String, NodeStatus)> = nodes
        .iter()
        .map(|addr| ((*addr).to_string(), fetch_node_status(addr)))
        .collect();
    let digests: Vec<&str> = statuses
        .iter()
        .filter_map(|(_, s)| match s {
            NodeStatus::Up { keys_digest, .. } => keys_digest.as_deref(),
            NodeStatus::Down(_) => None,
        })
        .collect();
    let converged = !digests.is_empty() && digests.iter().all(|d| *d == digests[0]);
    if json {
        let doc = serde::Value::Object(vec![
            (
                "nodes".to_string(),
                serde::Value::Object(
                    statuses
                        .iter()
                        .map(|(addr, status)| {
                            let value = match status {
                                NodeStatus::Up {
                                    cluster,
                                    entries,
                                    keys_digest,
                                } => {
                                    let mut fields = vec![
                                        (
                                            "status".to_string(),
                                            serde::Value::String("up".to_string()),
                                        ),
                                        ("cluster".to_string(), cluster.clone()),
                                    ];
                                    if let Some(entries) = entries {
                                        fields.push(("entries".to_string(), entries.to_value()));
                                    }
                                    if let Some(digest) = keys_digest {
                                        fields.push((
                                            "keys_digest".to_string(),
                                            serde::Value::String(digest.clone()),
                                        ));
                                    }
                                    serde::Value::Object(fields)
                                }
                                NodeStatus::Down(why) => serde::Value::Object(vec![
                                    (
                                        "status".to_string(),
                                        serde::Value::String("down".to_string()),
                                    ),
                                    ("error".to_string(), serde::Value::String(why.clone())),
                                ]),
                            };
                            (addr.clone(), value)
                        })
                        .collect(),
                ),
            ),
            ("converged".to_string(), serde::Value::Bool(converged)),
        ]);
        return Ok(serde_json::to_string_pretty(&doc).expect("serializable"));
    }
    let mut table = Table::new(
        &format!("cluster status ({} node(s))", statuses.len()),
        &[
            "node", "id", "share", "fwd hit", "fwd miss", "ticks", "pulled", "pushed", "entries",
            "digest",
        ],
    );
    for (addr, status) in &statuses {
        match status {
            NodeStatus::Up {
                cluster,
                entries,
                keys_digest,
            } => {
                let str_of = |v: Option<&serde::Value>| {
                    v.map_or_else(
                        || "?".to_string(),
                        |v| match v {
                            serde::Value::String(s) => s.clone(),
                            other => serde_json::to_string(other).unwrap_or_default(),
                        },
                    )
                };
                let forwarded = cluster.get("forwarded");
                let gossip = cluster.get("gossip");
                let share = cluster
                    .get("owned_share")
                    .and_then(serde::Value::as_f64)
                    .map_or_else(|| "?".to_string(), |s| format!("{s:.3}"));
                // The digest prefix is plenty to eyeball equality; the
                // full value is in --json.
                let digest = keys_digest
                    .as_deref()
                    .map_or("?", |d| &d[..d.len().min(16)]);
                table.row(&[
                    addr.clone(),
                    str_of(cluster.get("node_id")),
                    share,
                    str_of(forwarded.and_then(|f| f.get("hits"))),
                    str_of(forwarded.and_then(|f| f.get("misses"))),
                    str_of(gossip.and_then(|g| g.get("ticks"))),
                    str_of(gossip.and_then(|g| g.get("segments_pulled"))),
                    str_of(gossip.and_then(|g| g.get("segments_pushed"))),
                    entries.map_or_else(|| "?".to_string(), |e| e.to_string()),
                    digest.to_string(),
                ]);
            }
            NodeStatus::Down(why) => {
                table.row(&[
                    addr.clone(),
                    "DOWN".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    "-".to_string(),
                    why.clone(),
                ]);
            }
        }
    }
    let mut out = table.render();
    let _ = writeln!(
        out,
        "\ncaches {}",
        if converged {
            "converged (all reachable digests equal)"
        } else {
            "NOT converged (digests differ or no node reachable)"
        }
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_str(cmd: &str) -> Result<String, CliError> {
        run(&cmd.split_whitespace().map(String::from).collect::<Vec<_>>())
    }

    #[test]
    fn no_args_prints_usage() {
        assert!(run(&[]).unwrap().contains("USAGE"));
        assert!(run_str("help").unwrap().contains("COMMANDS"));
    }

    #[test]
    fn per_command_help() {
        for cmd in ["solve", "simulate", "fieldexp", "reduce"] {
            let out = run_str(&format!("{cmd} --help")).unwrap();
            assert!(out.contains("OPTIONS") || out.contains("options"), "{cmd}");
        }
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = run_str("frobnicate").unwrap_err();
        assert!(err.to_string().contains("unknown command"));
    }

    #[test]
    fn solve_small_instance() {
        let out = run_str("solve --posts 6 --nodes 12 --field 150 --seed 3 --algo idb").unwrap();
        assert!(out.contains("total recharging cost"));
        assert!(out.contains("deployment["));
    }

    #[test]
    fn solve_draw_renders_map_and_tree() {
        let out =
            run_str("solve --posts 6 --nodes 12 --field 150 --seed 3 --algo idb --draw").unwrap();
        assert!(out.contains("base station"));
        assert!(out.contains("BS\n") || out.contains("BS"));
        assert!(out.contains("post 0"));
    }

    #[test]
    fn solve_json_output_parses() {
        let out =
            run_str("solve --posts 5 --nodes 10 --field 150 --seed 2 --algo rfh --json").unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["posts"], 5);
        assert_eq!(v["deployment"].as_array().unwrap().len(), 5);
    }

    #[test]
    fn solve_rejects_bad_algo_and_eta() {
        assert!(
            run_str("solve --algo magic --posts 5 --nodes 10 --field 150")
                .unwrap_err()
                .to_string()
                .contains("--algo")
        );
        assert!(run_str("solve --eta 2.0 --posts 5 --nodes 10 --field 150")
            .unwrap_err()
            .to_string()
            .contains("eta"));
    }

    #[test]
    fn solve_rejects_unknown_option() {
        let err = run_str("solve --posts 5 --nodes 10 --field 150 --bogus 1").unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn solve_writes_svg() {
        let dir = std::env::temp_dir().join("wrsn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("map.svg");
        let _ = run_str(&format!(
            "solve --posts 6 --nodes 12 --field 150 --seed 3 --algo idb --svg {}",
            path.display()
        ))
        .unwrap();
        let svg = std::fs::read_to_string(&path).unwrap();
        assert!(svg.starts_with("<svg"));
        assert_eq!(svg.matches("<circle").count(), 6);
    }

    #[test]
    fn solve_save_and_load_reproduce_the_same_solution() {
        let dir = std::env::temp_dir().join("wrsn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("inst.json");
        let a = run_str(&format!(
            "solve --posts 6 --nodes 12 --field 150 --seed 3 --algo idb --json --save {}",
            path.display()
        ))
        .unwrap();
        let b = run_str(&format!(
            "solve --algo idb --json --load {}",
            path.display()
        ))
        .unwrap();
        let va: serde_json::Value = serde_json::from_str(&a).unwrap();
        let vb: serde_json::Value = serde_json::from_str(&b).unwrap();
        assert_eq!(va["total_cost_uj"], vb["total_cost_uj"]);
        assert_eq!(va["deployment"], vb["deployment"]);
    }

    #[test]
    fn load_rejects_bad_spec() {
        let dir = std::env::temp_dir().join("wrsn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad-spec.json");
        std::fs::write(&path, "{\"posts\": []}").unwrap();
        let err = run_str(&format!("solve --load {}", path.display())).unwrap_err();
        assert!(err.to_string().contains("spec") || err.to_string().contains("parsing"));
    }

    #[test]
    fn simulate_round_trip() {
        let out = run_str(
            "simulate --posts 5 --nodes 15 --field 150 --seed 4 --algo idb \
             --rounds 200 --bits 1000 --battery 0.01 --policy threshold --json",
        )
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["rounds"], 200);
        assert_eq!(v["reports_lost"], 0);
    }

    #[test]
    fn simulate_with_tour_policy() {
        let out = run_str(
            "simulate --posts 5 --nodes 15 --field 150 --seed 4 --algo idb \
             --rounds 200 --policy tour --speed 20 --json",
        )
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert!(v["charger_energy_j"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn simulate_with_finite_charger_power() {
        let out = run_str(
            "simulate --posts 5 --nodes 15 --field 150 --seed 4 --algo idb \
             --rounds 300 --policy tour --speed 20 --power 3 --json",
        )
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["rounds"], 300);
        assert!(
            run_str("simulate --power 0 --posts 5 --nodes 15 --field 150")
                .unwrap_err()
                .to_string()
                .contains("power")
        );
    }

    #[test]
    fn fieldexp_produces_grid() {
        let out = run_str("fieldexp --trials 5 --seed 1").unwrap();
        assert!(out.contains("spacing 5 cm"));
        assert!(out.contains("spacing 10 cm"));
        let json = run_str("fieldexp --trials 5 --json").unwrap();
        let rows: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(rows.as_array().unwrap().len(), 40);
    }

    #[test]
    fn reduce_from_file_and_solve() {
        let dir = std::env::temp_dir().join("wrsn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.cnf");
        std::fs::write(&path, "p cnf 3 2\n1 -2 3 0\n-1 2 -3 0\n").unwrap();
        let out = run_str(&format!("reduce --dimacs {} --solve", path.display())).unwrap();
        assert!(out.contains("SATISFIABLE"));
        assert!(out.contains("assignment:"));
        assert!(!out.contains("WARNING"));
        let json = run_str(&format!(
            "reduce --dimacs {} --solve --json",
            path.display()
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v["dpll_satisfiable"], v["optimizer_satisfiable"]);
    }

    #[test]
    fn reduce_rejects_missing_file_and_bad_dimacs() {
        assert!(run_str("reduce --dimacs /definitely/not/here.cnf")
            .unwrap_err()
            .to_string()
            .contains("reading"));
        let dir = std::env::temp_dir().join("wrsn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.cnf");
        std::fs::write(&path, "not dimacs at all").unwrap();
        assert!(run_str(&format!("reduce --dimacs {}", path.display()))
            .unwrap_err()
            .to_string()
            .contains("DIMACS"));
    }

    #[test]
    fn solve_accepts_every_registry_algorithm() {
        for algo in wrsn_engine::SolverRegistry::with_defaults().names() {
            let out = run_str(&format!(
                "solve --posts 5 --nodes 10 --field 150 --seed 3 --algo {algo} --json"
            ))
            .unwrap();
            let v: serde_json::Value = serde_json::from_str(&out).unwrap();
            assert!(v["total_cost_uj"].as_f64().unwrap() > 0.0, "{algo}");
        }
    }

    #[test]
    fn solve_rejects_infeasible_budget_without_panicking() {
        // 3 nodes cannot cover 5 posts; this used to panic in the sampler.
        let err = run_str("solve --posts 5 --nodes 3 --field 150").unwrap_err();
        assert!(err.to_string().contains("cannot cover"), "{err}");
    }

    #[test]
    fn simulate_human_output_reports_charger_energy() {
        let out = run_str(
            "simulate --posts 5 --nodes 15 --field 150 --seed 4 --algo idb \
             --rounds 100 --bits 1000",
        )
        .unwrap();
        assert!(out.contains("charger energy per round"));
        assert!(out.contains("analytic prediction"));
        assert!(out.contains("network alive") || out.contains("first death"));
    }

    #[test]
    fn simulate_tour_human_output_describes_the_patrol() {
        let out = run_str(
            "simulate --posts 5 --nodes 15 --field 150 --seed 4 --algo idb \
             --rounds 100 --policy tour --speed 20",
        )
        .unwrap();
        assert!(out.contains("patrol tour:"));
    }

    #[test]
    fn simulate_timeline_draws_a_sparkline() {
        let out = run_str(
            "simulate --posts 5 --nodes 15 --field 150 --seed 4 --algo idb \
             --rounds 200 --timeline 20",
        )
        .unwrap();
        assert!(out.contains("state of charge over time"));
        assert!(out.contains("mean "));
        assert!(out.contains("min  "));
    }

    #[test]
    fn simulate_policy_none_and_bad_policy() {
        let out = run_str(
            "simulate --posts 5 --nodes 15 --field 150 --seed 4 --algo idb \
             --rounds 50 --policy none --json",
        )
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["charger_energy_j"], 0.0);
        let err =
            run_str("simulate --posts 5 --nodes 15 --field 150 --policy teleport").unwrap_err();
        assert!(err.to_string().contains("--policy"));
    }

    #[test]
    fn simulate_rejects_bad_battery_and_chargers() {
        assert!(
            run_str("simulate --posts 5 --nodes 15 --field 150 --battery 0")
                .unwrap_err()
                .to_string()
                .contains("battery")
        );
        assert!(
            run_str("simulate --posts 5 --nodes 15 --field 150 --policy tour --chargers 0")
                .unwrap_err()
                .to_string()
                .contains("chargers")
        );
    }

    #[test]
    fn sweep_json_is_a_run_report() {
        let out = run_str(
            "sweep --posts 5 --nodes 10 --field 150 --algo idb --seeds 4 --seed-start 2 --json",
        )
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["solver"], "idb");
        let runs = v["runs"].as_array().unwrap();
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[0]["seed"], 2);
        assert!(v["cost_uj"]["mean"].as_f64().unwrap() > 0.0);
    }

    #[test]
    fn sweep_parallel_matches_sequential() {
        let base = "sweep --posts 6 --nodes 12 --field 150 --algo irfh --seeds 6 --json";
        let par: serde_json::Value =
            serde_json::from_str(&run_str(&format!("{base} --threads 4")).unwrap()).unwrap();
        let seq: serde_json::Value =
            serde_json::from_str(&run_str(&format!("{base} --threads 1")).unwrap()).unwrap();
        assert_eq!(par["runs"].as_array().unwrap().len(), 6);
        for (a, b) in par["runs"]
            .as_array()
            .unwrap()
            .iter()
            .zip(seq["runs"].as_array().unwrap())
        {
            assert_eq!(a["seed"], b["seed"]);
            assert_eq!(a["cost_uj"], b["cost_uj"]);
        }
        assert_eq!(par["cost_uj"]["mean"], seq["cost_uj"]["mean"]);
    }

    #[test]
    fn sweep_human_output_has_table_and_summary() {
        let out = run_str("sweep --posts 5 --nodes 10 --field 150 --algo idb --seeds 3").unwrap();
        assert!(out.contains("== sweep idb"));
        assert!(out.contains("cost: mean"));
        assert!(out.contains("wall-clock"));
    }

    #[test]
    fn sweep_history_prints_the_iteration_trace() {
        let out = run_str("sweep --posts 6 --nodes 12 --field 150 --algo irfh --seeds 2 --history")
            .unwrap();
        assert!(out.contains("mean cost by iteration:"));
        assert!(out.contains("->"));
    }

    #[test]
    fn sweep_rejects_bad_algo_seeds_and_threads() {
        assert!(
            run_str("sweep --posts 5 --nodes 10 --field 150 --algo magic")
                .unwrap_err()
                .to_string()
                .contains("--algo")
        );
        assert!(run_str("sweep --posts 5 --nodes 10 --field 150 --seeds 0")
            .unwrap_err()
            .to_string()
            .contains("--seeds"));
        assert!(
            run_str("sweep --posts 5 --nodes 10 --field 150 --threads 0")
                .unwrap_err()
                .to_string()
                .contains("--threads")
        );
        // `--seed` belongs to `solve`; sweep uses --seed-start.
        assert!(run_str("sweep --posts 5 --nodes 10 --field 150 --seed 7")
            .unwrap_err()
            .to_string()
            .contains("seed"));
    }

    #[test]
    fn sweep_loads_a_pinned_spec_with_zero_variance() {
        let dir = std::env::temp_dir().join("wrsn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sweep-inst.json");
        let _ = run_str(&format!(
            "solve --posts 6 --nodes 12 --field 150 --seed 3 --algo idb --save {}",
            path.display()
        ))
        .unwrap();
        let out = run_str(&format!(
            "sweep --algo idb --seeds 3 --json --load {}",
            path.display()
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["cost_uj"]["std_dev"], 0.0);
    }

    #[test]
    fn sweep_resume_requires_a_checkpoint() {
        let err = run_str("sweep --posts 5 --nodes 10 --field 150 --resume").unwrap_err();
        assert!(err.to_string().contains("--checkpoint"), "{err}");
    }

    #[test]
    fn sweep_checkpoint_interrupt_and_resume_match_a_clean_run() {
        let dir = std::env::temp_dir().join("wrsn-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("sweep-resume.checkpoint.json");
        let _ = std::fs::remove_file(&ck);
        let base = "sweep --posts 5 --nodes 10 --field 150 --algo idb --seeds 5 \
                    --threads 1 --no-timings --json";
        let partial = run_str(&format!(
            "{base} --checkpoint {} --halt-after 2",
            ck.display()
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&partial).unwrap();
        assert_eq!(v["runs"].as_array().unwrap().len(), 2, "halted after 2");
        let resumed = run_str(&format!("{base} --checkpoint {} --resume", ck.display())).unwrap();
        let clean = run_str(base).unwrap();
        assert_eq!(resumed, clean, "resume must reproduce the clean sweep");
    }

    #[test]
    fn sweep_keep_going_records_failures() {
        // 3 nodes cannot cover 5 posts — every seed fails to build.
        let base = "sweep --posts 5 --nodes 3 --field 150 --algo idb --seeds 3";
        let out = run_str(&format!("{base} --keep-going --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["runs"].as_array().unwrap().len(), 0);
        assert_eq!(v["failures"].as_array().unwrap().len(), 3);
        let human = run_str(&format!("{base} --keep-going")).unwrap();
        assert!(human.contains("failed seeds"), "{human}");
        // Without --keep-going, the same sweep aborts with the error.
        assert!(run_str(base).is_err());
    }

    #[test]
    fn simulate_fault_injection_is_deterministic() {
        let cmd = "simulate --posts 5 --nodes 15 --field 150 --seed 4 --algo idb \
                   --rounds 200 --bits 1000 --battery 0.01 --fault-seed 7 \
                   --kill 50:0 --outage 1:10:20 --charger-skip 0.2 --json";
        let a = run_str(cmd).unwrap();
        let b = run_str(cmd).unwrap();
        assert_eq!(a, b, "same fault seed must replay identically");
        let v: serde_json::Value = serde_json::from_str(&a).unwrap();
        assert!(v["first_fault_round"].as_u64().unwrap() <= 10);
        assert!(v["reports_lost"].as_u64().unwrap() > 0);
        assert!(v["delivery_ratio"].as_f64().unwrap() < 1.0);
        assert!(v["rounds_after_first_fault"].as_u64().unwrap() > 0);
    }

    #[test]
    fn simulate_fault_human_output_has_degradation_line() {
        let out = run_str(
            "simulate --posts 5 --nodes 15 --field 150 --seed 4 --algo idb \
             --rounds 100 --charger-skip 0.5",
        )
        .unwrap();
        assert!(out.contains("delivery ratio"), "{out}");
    }

    /// A fresh per-test scratch directory (cache stores compact on
    /// open, so leftovers from a previous run would skew hit counts).
    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("wrsn-cli-test").join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn sweep_cached_rerun_is_all_hits_and_identical() {
        let dir = scratch("sweep-cache");
        let base = format!(
            "sweep --posts 5 --nodes 10 --field 150 --algo idb --seeds 4 \
             --no-timings --json --cache {}",
            dir.display()
        );
        let first: serde_json::Value = serde_json::from_str(&run_str(&base).unwrap()).unwrap();
        assert_eq!(first["cache"]["hits"], 0);
        assert_eq!(first["cache"]["misses"], 4);
        assert_eq!(first["cache"]["appended"], 4);
        let second: serde_json::Value = serde_json::from_str(&run_str(&base).unwrap()).unwrap();
        assert_eq!(
            second["cache"]["hits"], 4,
            "rerun must be served entirely from the store"
        );
        assert_eq!(second["cache"]["misses"], 0);
        assert_eq!(second["cache"]["appended"], 0);
        assert_eq!(first["runs"], second["runs"]);
        assert_eq!(first["cost_uj"], second["cost_uj"]);
    }

    #[test]
    fn sweep_cache_human_output_reports_hits() {
        let dir = scratch("sweep-cache-human");
        let base = format!(
            "sweep --posts 5 --nodes 10 --field 150 --algo idb --seeds 2 --cache {}",
            dir.display()
        );
        let _ = run_str(&base).unwrap();
        let out = run_str(&base).unwrap();
        assert!(
            out.contains("cache: 2 hit(s), 0 miss(es), 0 appended"),
            "{out}"
        );
    }

    #[test]
    fn sweep_shard_rejects_malformed_and_out_of_range() {
        let base = "sweep --posts 5 --nodes 10 --field 150 --algo idb --seeds 4";
        assert!(run_str(&format!("{base} --shard 2"))
            .unwrap_err()
            .to_string()
            .contains("K/N"));
        assert!(run_str(&format!("{base} --shard a/b"))
            .unwrap_err()
            .to_string()
            .contains("K/N"));
        assert!(run_str(&format!("{base} --shard 0/2"))
            .unwrap_err()
            .to_string()
            .contains("1-based"));
        assert!(run_str(&format!("{base} --shard 3/2"))
            .unwrap_err()
            .to_string()
            .contains("1-based"));
    }

    #[test]
    fn merge_of_shard_logs_matches_an_unsharded_sweep_byte_for_byte() {
        let dir = scratch("sweep-shards");
        let base = "sweep --posts 5 --nodes 10 --field 150 --algo idb --seeds 5 \
                    --no-timings --json";
        let mut logs = Vec::new();
        for shard in ["1/3", "2/3", "3/3"] {
            let ck = dir.join(format!("shard-{}.jsonl", shard.replace('/', "-")));
            let _ = run_str(&format!(
                "{base} --shard {shard} --checkpoint {}",
                ck.display()
            ))
            .unwrap();
            logs.push(ck.display().to_string());
        }
        let merged = run_str(&format!("merge --logs {} --json", logs.join(","))).unwrap();
        let clean = run_str(base).unwrap();
        assert_eq!(
            merged, clean,
            "merged shards must reproduce the unsharded sweep"
        );
    }

    #[test]
    fn merge_human_output_warns_about_missing_shards() {
        let dir = scratch("sweep-partial-merge");
        let ck = dir.join("shard-1-2.jsonl");
        let _ = run_str(&format!(
            "sweep --posts 5 --nodes 10 --field 150 --algo idb --seeds 4 \
             --shard 1/2 --checkpoint {}",
            ck.display()
        ))
        .unwrap();
        let out = run_str(&format!("merge --logs {}", ck.display())).unwrap();
        assert!(out.contains("== merge idb"), "{out}");
        assert!(out.contains("WARNING: 2 seed(s)"), "{out}");
    }

    #[test]
    fn merge_rejects_overlapping_logs_and_requires_logs() {
        let dir = scratch("sweep-overlap-merge");
        let ck = dir.join("full.jsonl");
        let _ = run_str(&format!(
            "sweep --posts 5 --nodes 10 --field 150 --algo idb --seeds 2 --checkpoint {}",
            ck.display()
        ))
        .unwrap();
        let err = run_str(&format!("merge --logs {p},{p}", p = ck.display())).unwrap_err();
        assert!(err.to_string().contains("already covered"), "{err}");
        assert!(run_str("merge").unwrap_err().to_string().contains("--logs"));
        assert!(run_str("merge --help").unwrap().contains("--logs"));
    }

    #[test]
    fn sweep_compare_pairs_solvers_on_the_same_grid() {
        let out = run_str(
            "sweep --posts 5 --nodes 10 --field 150 --seeds 3 --compare rfh,irfh,idb --json",
        )
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let reports = v.as_array().unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[0]["solver"], "rfh");
        assert_eq!(reports[2]["solver"], "idb");
        for r in reports {
            let runs = r["runs"].as_array().unwrap();
            assert_eq!(runs.len(), 3);
            // Identical grid: every solver sees the same seeds.
            assert_eq!(runs[0]["seed"], reports[0]["runs"][0]["seed"]);
        }
        let human =
            run_str("sweep --posts 5 --nodes 10 --field 150 --seeds 3 --compare rfh,idb").unwrap();
        assert!(human.contains("== compare"), "{human}");
        assert!(human.contains("vs rfh"), "{human}");
        assert!(human.contains("%"), "{human}");
    }

    #[test]
    fn sweep_compare_reuses_the_result_store() {
        let dir = scratch("sweep-compare-cache");
        // Pre-warm the store with one of the two solvers.
        let _ = run_str(&format!(
            "sweep --posts 5 --nodes 10 --field 150 --algo idb --seeds 3 \
             --no-timings --json --cache {}",
            dir.display()
        ))
        .unwrap();
        let out = run_str(&format!(
            "sweep --posts 5 --nodes 10 --field 150 --seeds 3 --compare rfh,idb \
             --no-timings --json --cache {}",
            dir.display()
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        let reports = v.as_array().unwrap();
        assert_eq!(reports[0]["cache"]["hits"], 0, "rfh was never cached");
        assert_eq!(reports[0]["cache"]["misses"], 3);
        assert_eq!(
            reports[1]["cache"]["hits"], 3,
            "idb column comes from the store"
        );
    }

    #[test]
    fn sweep_compare_rejects_conflicting_options() {
        let base = "sweep --posts 5 --nodes 10 --field 150 --seeds 2";
        assert!(run_str(&format!("{base} --compare rfh,idb --algo idb"))
            .unwrap_err()
            .to_string()
            .contains("--algo"));
        assert!(run_str(&format!("{base} --compare rfh"))
            .unwrap_err()
            .to_string()
            .contains("at least two"));
        assert!(run_str(&format!("{base} --compare rfh,idb --shard 1/2"))
            .unwrap_err()
            .to_string()
            .contains("--compare"));
    }

    #[test]
    fn simulate_rejects_malformed_fault_flags() {
        let base = "simulate --posts 5 --nodes 15 --field 150 --seed 4 --algo idb --rounds 50";
        assert!(run_str(&format!("{base} --kill abc"))
            .unwrap_err()
            .to_string()
            .contains("--kill"));
        assert!(run_str(&format!("{base} --kill 1:999"))
            .unwrap_err()
            .to_string()
            .contains("fault plan"));
        assert!(run_str(&format!("{base} --outage 0:9:9"))
            .unwrap_err()
            .to_string()
            .contains("fault plan"));
        assert!(run_str(&format!("{base} --charger-skip 1.5"))
            .unwrap_err()
            .to_string()
            .contains("--charger-skip 1.5 out of range [0, 1]"));
        assert!(run_str(&format!("{base} --link-loss 2.0"))
            .unwrap_err()
            .to_string()
            .contains("--link-loss 2 out of range [0, 1]"));
        assert!(run_str(&format!("{base} --battery-fade -0.1"))
            .unwrap_err()
            .to_string()
            .contains("--battery-fade"));
        assert!(run_str(&format!("{base} --fade-floor 1.5"))
            .unwrap_err()
            .to_string()
            .contains("--fade-floor"));
        assert!(run_str(&format!("{base} --charger-down 10"))
            .unwrap_err()
            .to_string()
            .contains("--charger-down"));
        assert!(run_str(&format!("{base} --charger-down 9:9"))
            .unwrap_err()
            .to_string()
            .contains("fault plan"));
    }

    #[test]
    fn simulate_degradation_flags_replay_byte_identically() {
        let cmd = "simulate --posts 5 --nodes 15 --field 150 --seed 4 --algo idb \
                   --rounds 300 --battery 0.001 --fault-seed 9 --battery-fade 0.1 \
                   --charger-down 20:80 --json";
        let a = run_str(cmd).unwrap();
        let b = run_str(cmd).unwrap();
        assert_eq!(a, b, "degradation runs must replay byte-identically");
        let v: serde_json::Value = serde_json::from_str(&a).unwrap();
        assert_eq!(v["charger_downtime_rounds"], 60);
        assert!(v["capacity_floor_hits"].as_u64().is_some());
        assert!(v["breakdown_deaths"].as_u64().is_some());
    }

    #[test]
    fn simulate_link_loss_degrades_delivery() {
        let base = "simulate --posts 5 --nodes 15 --field 150 --seed 4 --algo idb --rounds 50";
        let out = run_str(&format!("{base} --link-loss 1.0 --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["delivery_ratio"], 0.0);
        assert_eq!(v["reports_delivered"], 0);
        assert!(v["link_losses"].as_u64().unwrap() > 0);
        // Without faults the field is present and zero.
        let out = run_str(&format!("{base} --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["link_losses"], 0);
        assert_eq!(v["delivery_ratio"], 1.0);
    }

    #[test]
    fn new_commands_have_help() {
        assert!(run_str("serve --help").unwrap().contains("--queue-depth"));
        assert!(run_str("loadgen --help").unwrap().contains("--concurrency"));
        assert!(run_str("cache --help").unwrap().contains("gc"));
        assert!(
            run_str("cache").unwrap().contains("gc"),
            "bare `cache` prints help"
        );
        assert!(run_str("cache frobnicate")
            .unwrap_err()
            .to_string()
            .contains("unknown cache subcommand"));
    }

    #[test]
    fn serve_and_loadgen_validate_their_options() {
        assert!(run_str("serve --workers 0")
            .unwrap_err()
            .to_string()
            .contains("--workers"));
        assert!(run_str("serve --queue-depth 0")
            .unwrap_err()
            .to_string()
            .contains("--queue-depth"));
        assert!(run_str("serve --addr not-an-address")
            .unwrap_err()
            .to_string()
            .contains("not-an-address"));
        assert!(run_str("loadgen --requests 0")
            .unwrap_err()
            .to_string()
            .contains("--requests"));
        // A dead server fails fast instead of producing an all-error report.
        assert!(run_str("loadgen --addr 127.0.0.1:9 --requests 1")
            .unwrap_err()
            .to_string()
            .contains("127.0.0.1:9"));
    }

    #[test]
    fn cache_gc_reclaims_stale_entries() {
        let dir = std::env::temp_dir().join("wrsn-cli-cache-gc");
        let _ = std::fs::remove_dir_all(&dir);
        // Populate via a cached sweep, then add one entry under a stale tag.
        let _ = run_str(&format!(
            "sweep --posts 5 --nodes 10 --field 150 --algo idb --seeds 3 \
             --no-timings --json --cache {}",
            dir.display()
        ))
        .unwrap();
        {
            let store = ResultStore::open(&dir).unwrap();
            let mut fp = wrsn_engine::FingerprintBuilder::new("wrsn-seedrun-v0");
            fp.push_str("stale");
            store
                .put_tagged(&fp.finish(), serde_json::from_str("{}").unwrap(), "old-tag")
                .unwrap();
        }
        let out = run_str(&format!("cache gc --cache {} --json", dir.display())).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["kept"], 3);
        assert_eq!(v["dropped_unreachable"], 1);
        assert_eq!(v["dropped_for_budget"], 0);
        // The kept entries still serve cache hits.
        let out = run_str(&format!(
            "sweep --posts 5 --nodes 10 --field 150 --algo idb --seeds 3 \
             --no-timings --json --cache {}",
            dir.display()
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["cache"]["hits"], 3);
        // A zero budget clears everything and reports reclaimed bytes.
        let out = run_str(&format!(
            "cache gc --cache {} --max-bytes 0 --json",
            dir.display()
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["kept"], 0);
        assert_eq!(v["dropped_for_budget"], 3);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn serve_loadgen_round_trip_with_cache() {
        let dir = std::env::temp_dir().join("wrsn-cli-serve-roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let mut api = ApiContext::new();
        api.store = Some(Arc::new(ResultStore::open(&dir).unwrap()));
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            ..ServerConfig::default()
        };
        let handle = Server::start(&config, api).unwrap();
        let addr = handle.addr().to_string();
        let body = "{\"instance\":{\"posts\":5,\"nodes\":10,\"field\":150.0},\"solver\":\"idb\"}";
        let out = run_str(&format!(
            "loadgen --addr {addr} --concurrency 2 --requests 10 --body {} --json",
            body.replace(' ', "")
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["ok"], 10);
        assert_eq!(v["errors"], 0);
        assert!(v["throughput_rps"].as_f64().unwrap() > 0.0);
        handle.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn loadgen_retries_through_a_chaotic_server() {
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            chaos: Some(wrsn_serve::ChaosPolicy::seeded(11).faults(0.3)),
            ..ServerConfig::default()
        };
        let handle = Server::start(&config, ApiContext::new()).unwrap();
        let addr = handle.addr().to_string();
        let body = "{\"instance\":{\"posts\":5,\"nodes\":10,\"field\":150.0},\"solver\":\"idb\"}";
        let out = run_str(&format!(
            "loadgen --addr {addr} --concurrency 2 --requests 12 --retries 8 --body {} --json",
            body.replace(' ', "")
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["ok"], 12, "retries absorb every injected fault: {out}");
        assert_eq!(v["non_ok"], 0);
        assert_eq!(v["errors"], 0);
        assert!(v["retries"].as_u64().unwrap() > 0, "{out}");
        handle.shutdown().unwrap();
    }

    #[test]
    fn serve_validates_chaos_and_timeout_flags() {
        assert!(run_str("serve --chaos 1.5")
            .unwrap_err()
            .to_string()
            .contains("--chaos 1.5 out of range [0, 1]"));
        assert!(run_str("serve --chaos-truncate -1")
            .unwrap_err()
            .to_string()
            .contains("--chaos-truncate"));
        assert!(run_str("serve --request-timeout-ms 0")
            .unwrap_err()
            .to_string()
            .contains("--request-timeout-ms"));
    }

    #[test]
    fn serve_documents_and_validates_durability() {
        let help = run_str("serve --help").unwrap();
        assert!(help.contains("--durability"));
        assert!(
            help.contains("second SIGINT/SIGTERM"),
            "signal escalation is documented"
        );
        assert!(run_str("serve --durability fsync")
            .unwrap_err()
            .to_string()
            .contains("requires --cache"));
        assert!(run_str("serve --cache /tmp/x --durability nonsense")
            .unwrap_err()
            .to_string()
            .contains("flush or fsync"));
    }

    #[test]
    fn cache_verify_reports_a_clean_and_a_corrupt_store() {
        let dir = std::env::temp_dir().join("wrsn-cli-cache-verify");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        {
            let store = ResultStore::open(&dir).unwrap();
            for i in 0..3u64 {
                let mut b = wrsn_engine::FingerprintBuilder::new("cli-verify");
                b.push_u64(i);
                store.put(&b.finish(), i.to_value()).unwrap();
            }
            store.sync().unwrap();
        }
        let out = run_str(&format!("cache verify --cache {}", dir.display())).unwrap();
        assert!(out.contains("verdict: clean"), "{out}");
        let json = run_str(&format!("cache verify --cache {} --json", dir.display())).unwrap();
        let v: serde_json::Value = serde_json::from_str(&json).unwrap();
        assert_eq!(
            v.get("records").and_then(serde_json::Value::as_u64),
            Some(3)
        );
        // Mangle an interior record line; verify must now fail.
        let segment = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|e| e == "jsonl"))
            .unwrap();
        let text = std::fs::read_to_string(&segment).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_string).collect();
        lines[1] = "{broken".to_string();
        std::fs::write(&segment, format!("{}\n", lines.join("\n"))).unwrap();
        let err = run_str(&format!("cache verify --cache {}", dir.display())).unwrap_err();
        assert!(err.to_string().contains("CORRUPT"), "{err}");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn serve_and_loadgen_document_and_validate_the_new_flags() {
        assert!(run_str("serve --help").unwrap().contains("--max-conns"));
        let help = run_str("loadgen --help").unwrap();
        for flag in ["--connections", "--pipeline", "--job", "--bench-json"] {
            assert!(help.contains(flag), "missing {flag}");
        }
        assert!(run_str("serve --max-conns 0")
            .unwrap_err()
            .to_string()
            .contains("--max-conns"));
        assert!(run_str("serve --max-jobs 0")
            .unwrap_err()
            .to_string()
            .contains("--max-jobs"));
        assert!(run_str("serve --keep-alive-max-requests 0")
            .unwrap_err()
            .to_string()
            .contains("--keep-alive-max-requests"));
        assert!(run_str("loadgen --connections 0")
            .unwrap_err()
            .to_string()
            .contains("--connections"));
        assert!(run_str("loadgen --pipeline 0")
            .unwrap_err()
            .to_string()
            .contains("--pipeline"));
    }

    #[test]
    fn loadgen_keep_alive_mode_reports_the_fleet_and_writes_bench_json() {
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            keep_alive: true,
            ..ServerConfig::default()
        };
        let handle = Server::start(&config, ApiContext::new()).unwrap();
        let addr = handle.addr().to_string();
        let bench = std::env::temp_dir().join("wrsn-cli-bench-serve.json");
        let _ = std::fs::remove_file(&bench);
        let out = run_str(&format!(
            "loadgen --addr {addr} --connections 3 --pipeline 2 --requests 12 \
             --method GET --path /healthz --bench-json {} --json",
            bench.display()
        ))
        .unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["ok"], 12, "{out}");
        assert_eq!(v["errors"], 0);
        assert_eq!(v["connections"], 3);
        // --bench-json mirrors the same report to a file.
        let filed = std::fs::read_to_string(&bench).unwrap();
        assert_eq!(filed, out);
        handle.shutdown().unwrap();
        let _ = std::fs::remove_file(bench);
    }

    #[test]
    fn loadgen_job_mode_round_trips_an_async_sweep() {
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 16,
            ..ServerConfig::default()
        };
        let handle = Server::start(&config, ApiContext::new()).unwrap();
        let addr = handle.addr().to_string();
        let spec = "{\"instance\":{\"posts\":5,\"nodes\":12,\"field\":150.0},\"seeds\":2}";
        let out = run_str(&format!("loadgen --addr {addr} --job --body {spec} --json")).unwrap();
        let v: serde_json::Value = serde_json::from_str(&out).unwrap();
        assert_eq!(v["state"], "done", "{out}");
        assert_eq!(v["events"], 2);
        assert!(v["final"]["report"].as_object().is_some(), "{out}");
        handle.shutdown().unwrap();
    }
}

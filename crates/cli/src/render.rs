//! ASCII rendering of fields, deployments, and routing trees for the
//! terminal (`wrsn solve --draw`).

use wrsn_core::{Geometry, Solution};
use wrsn_geom::Point;

/// Renders the deployment field as an ASCII map: each post shows its node
/// count (`+` beyond 9), `B` marks the base station, `.` is empty field.
///
/// The map is scaled to at most `width × height` character cells; posts
/// that collide in a cell show the larger count.
#[must_use]
pub fn render_field(
    geometry: &Geometry,
    solution: &Solution,
    width: usize,
    height: usize,
) -> String {
    let width = width.max(8);
    let height = height.max(4);
    let mut cells = vec![vec!['.'; width]; height];

    // Bounding box over posts + BS, padded slightly so borders render.
    let mut min = geometry.base_station;
    let mut max = geometry.base_station;
    for p in &geometry.posts {
        min.x = min.x.min(p.x);
        min.y = min.y.min(p.y);
        max.x = max.x.max(p.x);
        max.y = max.y.max(p.y);
    }
    let span_x = (max.x - min.x).max(1e-9);
    let span_y = (max.y - min.y).max(1e-9);
    let place = |pt: Point| -> (usize, usize) {
        let cx = ((pt.x - min.x) / span_x * (width - 1) as f64).round() as usize;
        // Screen rows grow downward; field y grows upward.
        let cy = height - 1 - ((pt.y - min.y) / span_y * (height - 1) as f64).round() as usize;
        (cx.min(width - 1), cy.min(height - 1))
    };

    for (p, &pt) in geometry.posts.iter().enumerate() {
        let (cx, cy) = place(pt);
        let count = solution.deployment().count(p);
        let glyph = if count > 9 {
            '+'
        } else {
            char::from_digit(count, 10).expect("count <= 9")
        };
        // On collision keep the visually larger marker.
        let existing = cells[cy][cx];
        if existing == '.'
            || existing == glyph
            || glyph == '+'
            || (existing != '+' && existing < glyph)
        {
            cells[cy][cx] = glyph;
        }
    }
    let (bx, by) = place(geometry.base_station);
    cells[by][bx] = 'B';

    let mut out = String::with_capacity((width + 1) * height);
    for row in cells {
        out.extend(row);
        out.push('\n');
    }
    out.push_str("B = base station; digits = nodes deployed at a post; + = 10 or more\n");
    out
}

/// Renders a series of values in `[0, 1]` as a one-line ASCII sparkline
/// (nine intensity levels, `_` low through `#` high).
#[must_use]
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: &[u8] = b"_.,:-=+*#";
    values
        .iter()
        .map(|&v| {
            let clamped = v.clamp(0.0, 1.0);
            let idx = (clamped * (LEVELS.len() - 1) as f64).round() as usize;
            LEVELS[idx] as char
        })
        .collect()
}

/// Renders the routing tree as an indented forest rooted at the base
/// station, annotated with node counts and descendant totals.
#[must_use]
pub fn render_tree(solution: &Solution) -> String {
    let tree = solution.tree();
    let counts = tree.descendant_counts();
    let mut out = String::from("BS\n");
    fn walk(out: &mut String, solution: &Solution, counts: &[usize], node: usize, prefix: &str) {
        let children = solution.tree().children(node);
        for (i, &c) in children.iter().enumerate() {
            let last = i + 1 == children.len();
            let branch = if last { "`- " } else { "|- " };
            let extent = if counts[c] > 0 {
                format!(", relays {} post(s)", counts[c])
            } else {
                String::new()
            };
            out.push_str(prefix);
            out.push_str(branch);
            out.push_str(&format!(
                "post {c} [{} node(s){extent}]\n",
                solution.deployment().count(c)
            ));
            let child_prefix = format!("{prefix}{}", if last { "   " } else { "|  " });
            walk(out, solution, counts, c, &child_prefix);
        }
    }
    walk(&mut out, solution, &counts, tree.bs(), "");
    out
}

/// Renders the deployment and routing tree as a standalone SVG document:
/// posts as circles with area proportional to their node count, routing
/// edges as lines, the base station as a filled square. Suitable for
/// dropping into a paper or README.
#[must_use]
pub fn render_svg(geometry: &Geometry, solution: &Solution, width_px: u32) -> String {
    let width_px = width_px.max(100);
    let mut min = geometry.base_station;
    let mut max = geometry.base_station;
    for p in &geometry.posts {
        min.x = min.x.min(p.x);
        min.y = min.y.min(p.y);
        max.x = max.x.max(p.x);
        max.y = max.y.max(p.y);
    }
    let span_x = (max.x - min.x).max(1e-9);
    let span_y = (max.y - min.y).max(1e-9);
    let margin = 24.0;
    let scale = (f64::from(width_px) - 2.0 * margin) / span_x;
    let height_px = span_y * scale + 2.0 * margin;
    let place = |pt: Point| -> (f64, f64) {
        (
            margin + (pt.x - min.x) * scale,
            // SVG y grows downward; field y grows upward.
            margin + (max.y - pt.y) * scale,
        )
    };
    let mut svg = String::new();
    svg.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{width_px}\" \
         height=\"{height_px:.0}\" viewBox=\"0 0 {width_px} {height_px:.0}\">\n"
    ));
    svg.push_str("<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n");
    // Edges first so nodes draw on top.
    let tree = solution.tree();
    for p in 0..geometry.posts.len() {
        let (x1, y1) = place(geometry.posts[p]);
        let parent = tree.parent(p);
        let target = if parent == tree.bs() {
            geometry.base_station
        } else {
            geometry.posts[parent]
        };
        let (x2, y2) = place(target);
        svg.push_str(&format!(
            "<line x1=\"{x1:.1}\" y1=\"{y1:.1}\" x2=\"{x2:.1}\" y2=\"{y2:.1}\" \
             stroke=\"#8a8a8a\" stroke-width=\"1\"/>\n"
        ));
    }
    let max_count = solution
        .deployment()
        .counts()
        .iter()
        .copied()
        .max()
        .unwrap_or(1) as f64;
    for (p, &pt) in geometry.posts.iter().enumerate() {
        let (x, y) = place(pt);
        let count = f64::from(solution.deployment().count(p));
        // Area proportional to node count.
        let r = 4.0 + 8.0 * (count / max_count).sqrt();
        svg.push_str(&format!(
            "<circle cx=\"{x:.1}\" cy=\"{y:.1}\" r=\"{r:.1}\" fill=\"#3b6ea5\" \
             fill-opacity=\"0.8\" stroke=\"#1d3a57\"/>\n"
        ));
        svg.push_str(&format!(
            "<text x=\"{x:.1}\" y=\"{:.1}\" font-size=\"9\" text-anchor=\"middle\" \
             fill=\"white\">{}</text>\n",
            y + 3.0,
            solution.deployment().count(p)
        ));
    }
    let (bx, by) = place(geometry.base_station);
    svg.push_str(&format!(
        "<rect x=\"{:.1}\" y=\"{:.1}\" width=\"14\" height=\"14\" fill=\"#b3352b\"/>\n",
        bx - 7.0,
        by - 7.0
    ));
    svg.push_str("</svg>\n");
    svg
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrsn_core::{Idb, InstanceSampler, Solver};
    use wrsn_geom::Field;

    fn sample() -> (wrsn_core::Instance, Solution) {
        let inst = InstanceSampler::new(Field::square(150.0), 6, 14).sample(2);
        let sol = Idb::new(1).solve(&inst).unwrap();
        (inst, sol)
    }

    #[test]
    fn field_map_contains_all_posts_and_the_bs() {
        let (inst, sol) = sample();
        let geo = inst.geometry().unwrap();
        let map = render_field(geo, &sol, 60, 24);
        let grid: String = map.lines().take(24).collect();
        assert_eq!(grid.matches('B').count(), 1);
        // Marker glyphs: at least one digit appears.
        assert!(map.chars().any(|c| c.is_ascii_digit()));
        // Legend line present.
        assert!(map.contains("base station"));
        // Dimensions respected (+1 legend line).
        assert_eq!(map.lines().count(), 25);
        assert!(map.lines().next().unwrap().len() <= 60);
    }

    #[test]
    fn field_map_clamps_tiny_dimensions() {
        let (inst, sol) = sample();
        let geo = inst.geometry().unwrap();
        let map = render_field(geo, &sol, 1, 1);
        assert!(map.lines().count() >= 4);
    }

    #[test]
    fn tree_rendering_lists_every_post_once() {
        let (inst, sol) = sample();
        let text = render_tree(&sol);
        for p in 0..inst.num_posts() {
            assert_eq!(
                text.matches(&format!("post {p} ")).count(),
                1,
                "post {p} in:\n{text}"
            );
        }
        assert!(text.starts_with("BS\n"));
    }

    #[test]
    fn tree_rendering_mentions_relays() {
        let (inst, sol) = sample();
        let counts = sol.tree().descendant_counts();
        let text = render_tree(&sol);
        if counts.iter().any(|&c| c > 0) {
            assert!(text.contains("relays"), "{text}");
        }
        let _ = inst;
    }

    #[test]
    fn sparkline_maps_extremes_and_length() {
        assert_eq!(sparkline(&[]), "");
        let s = sparkline(&[0.0, 0.5, 1.0, 2.0, -1.0]);
        assert_eq!(s.len(), 5);
        assert!(s.starts_with('_'));
        assert_eq!(s.chars().nth(2), Some('#'));
        assert_eq!(s.chars().nth(3), Some('#')); // clamped high
        assert_eq!(s.chars().nth(4), Some('_')); // clamped low
    }

    #[test]
    fn svg_is_well_formed_and_complete() {
        let (inst, sol) = sample();
        let geo = inst.geometry().unwrap();
        let svg = render_svg(geo, &sol, 480);
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One circle + one label per post, one line per post, one BS rect.
        let n = inst.num_posts();
        assert_eq!(svg.matches("<circle").count(), n);
        assert_eq!(svg.matches("<line").count(), n);
        assert_eq!(svg.matches("<text").count(), n);
        assert_eq!(svg.matches("fill=\"#b3352b\"").count(), 1);
        // Balanced tags (no unclosed elements).
        assert_eq!(svg.matches("<svg").count(), svg.matches("</svg>").count());
    }

    #[test]
    fn svg_clamps_tiny_width() {
        let (inst, sol) = sample();
        let geo = inst.geometry().unwrap();
        let svg = render_svg(geo, &sol, 1);
        assert!(svg.contains("width=\"100\""));
    }

    #[test]
    fn ten_plus_nodes_render_as_plus() {
        // One heavily loaded post.
        let inst = InstanceSampler::new(Field::square(100.0), 2, 14).sample(1);
        let sol = Idb::new(1).solve(&inst).unwrap();
        if sol.deployment().counts().iter().any(|&c| c > 9) {
            let map = render_field(inst.geometry().unwrap(), &sol, 40, 12);
            assert!(map.contains('+'));
        }
    }
}

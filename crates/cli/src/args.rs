//! A small typed `--key value` argument parser (no external parser
//! dependency; the approved crate set has none).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error produced while parsing command-line arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// An option was given without a value.
    MissingValue(String),
    /// A token did not look like `--key` in option position.
    UnexpectedToken(String),
    /// An option's value failed to parse.
    BadValue {
        /// The option name.
        key: String,
        /// The raw value.
        value: String,
        /// What was expected.
        expected: &'static str,
    },
    /// A required option was absent.
    MissingOption(String),
    /// Options were supplied that the command does not understand.
    UnknownOptions(Vec<String>),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingValue(k) => write!(f, "option --{k} needs a value"),
            ArgsError::UnexpectedToken(t) => write!(f, "unexpected argument {t:?}"),
            ArgsError::BadValue {
                key,
                value,
                expected,
            } => {
                write!(f, "--{key} {value:?}: expected {expected}")
            }
            ArgsError::MissingOption(k) => write!(f, "required option --{k} is missing"),
            ArgsError::UnknownOptions(ks) => {
                write!(f, "unknown option(s): ")?;
                for (i, k) in ks.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "--{k}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for ArgsError {}

/// Parsed `--key value` / `--flag` arguments with typed accessors.
///
/// Consumption is tracked so [`Args::finish`] can reject typos instead
/// of silently ignoring them.
#[derive(Debug, Clone)]
pub struct Args {
    values: BTreeMap<String, Option<String>>,
    consumed: BTreeMap<String, bool>,
}

impl Args {
    /// Parses raw tokens. A token `--key` followed by a non-`--` token
    /// is an option with a value; a `--key` followed by another option
    /// (or the end) is a boolean flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::UnexpectedToken`] for stray positional
    /// tokens.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Self, ArgsError> {
        let tokens: Vec<String> = tokens.into_iter().collect();
        let mut values = BTreeMap::new();
        let mut i = 0;
        while i < tokens.len() {
            let tok = &tokens[i];
            let Some(key) = tok.strip_prefix("--") else {
                return Err(ArgsError::UnexpectedToken(tok.clone()));
            };
            if key.is_empty() {
                return Err(ArgsError::UnexpectedToken(tok.clone()));
            }
            let value = match tokens.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    i += 1;
                    Some(v.clone())
                }
                _ => None,
            };
            values.insert(key.to_string(), value);
            i += 1;
        }
        let consumed = values.keys().map(|k| (k.clone(), false)).collect();
        Ok(Args { values, consumed })
    }

    fn take(&mut self, key: &str) -> Option<Option<String>> {
        if let Some(c) = self.consumed.get_mut(key) {
            *c = true;
        }
        self.values.get(key).cloned()
    }

    /// A boolean flag: present (with or without a value) means `true`.
    pub fn flag(&mut self, key: &str) -> bool {
        self.take(key).is_some()
    }

    /// An option accepted both as a bare flag and with a value (like
    /// `--cache` / `--cache DIR`): `None` when absent, `Some(None)` for
    /// the bare flag, `Some(Some(value))` when a value was given.
    pub fn flag_or_value(&mut self, key: &str) -> Option<Option<String>> {
        self.take(key)
    }

    /// An optional typed value.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::MissingValue`] when the flag form was used,
    /// or [`ArgsError::BadValue`] when parsing fails.
    pub fn opt<T: std::str::FromStr>(
        &mut self,
        key: &str,
        expected: &'static str,
    ) -> Result<Option<T>, ArgsError> {
        match self.take(key) {
            None => Ok(None),
            Some(None) => Err(ArgsError::MissingValue(key.to_string())),
            Some(Some(raw)) => raw.parse().map(Some).map_err(|_| ArgsError::BadValue {
                key: key.to_string(),
                value: raw,
                expected,
            }),
        }
    }

    /// A typed value with a default.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Args::opt`].
    pub fn get_or<T: std::str::FromStr>(
        &mut self,
        key: &str,
        expected: &'static str,
        default: T,
    ) -> Result<T, ArgsError> {
        Ok(self.opt(key, expected)?.unwrap_or(default))
    }

    /// A required typed value.
    ///
    /// # Errors
    ///
    /// [`ArgsError::MissingOption`] when absent; otherwise as
    /// [`Args::opt`].
    pub fn require<T: std::str::FromStr>(
        &mut self,
        key: &str,
        expected: &'static str,
    ) -> Result<T, ArgsError> {
        self.opt(key, expected)?
            .ok_or_else(|| ArgsError::MissingOption(key.to_string()))
    }

    /// Rejects any options that were never consumed (typo protection).
    ///
    /// # Errors
    ///
    /// [`ArgsError::UnknownOptions`] listing the leftovers.
    pub fn finish(self) -> Result<(), ArgsError> {
        let leftover: Vec<String> = self
            .consumed
            .iter()
            .filter(|(_, &c)| !c)
            .map(|(k, _)| k.clone())
            .collect();
        if leftover.is_empty() {
            Ok(())
        } else {
            Err(ArgsError::UnknownOptions(leftover))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn parses_values_and_flags() {
        let mut a = args("--posts 100 --json --field 500.0");
        assert_eq!(a.require::<usize>("posts", "integer").unwrap(), 100);
        assert!(a.flag("json"));
        assert_eq!(a.get_or("field", "number", 0.0).unwrap(), 500.0);
        assert!(a.finish().is_ok());
    }

    #[test]
    fn default_applies_when_absent() {
        let mut a = args("--posts 10");
        assert_eq!(a.get_or("seed", "integer", 42u64).unwrap(), 42);
        let _ = a.require::<usize>("posts", "integer");
        assert!(a.finish().is_ok());
    }

    #[test]
    fn missing_required_option() {
        let mut a = args("");
        assert_eq!(
            a.require::<usize>("posts", "integer"),
            Err(ArgsError::MissingOption("posts".into()))
        );
    }

    #[test]
    fn bad_value_reports_expectation() {
        let mut a = args("--posts many");
        let err = a.require::<usize>("posts", "a post count").unwrap_err();
        assert!(matches!(err, ArgsError::BadValue { .. }));
        assert!(format!("{err}").contains("a post count"));
    }

    #[test]
    fn flag_without_value_errors_as_typed_option() {
        let mut a = args("--posts --json");
        assert_eq!(
            a.opt::<usize>("posts", "integer"),
            Err(ArgsError::MissingValue("posts".into()))
        );
    }

    #[test]
    fn positional_tokens_rejected() {
        assert!(matches!(
            Args::parse(vec!["oops".to_string()]),
            Err(ArgsError::UnexpectedToken(_))
        ));
        assert!(matches!(
            Args::parse(vec!["--".to_string()]),
            Err(ArgsError::UnexpectedToken(_))
        ));
    }

    #[test]
    fn unknown_options_detected() {
        let mut a = args("--posts 3 --tpyo 1");
        let _ = a.require::<usize>("posts", "integer");
        assert_eq!(
            a.finish(),
            Err(ArgsError::UnknownOptions(vec!["tpyo".into()]))
        );
    }

    #[test]
    fn error_messages_nonempty() {
        let errors = [
            ArgsError::MissingValue("k".into()),
            ArgsError::UnexpectedToken("x".into()),
            ArgsError::BadValue {
                key: "k".into(),
                value: "v".into(),
                expected: "n",
            },
            ArgsError::MissingOption("k".into()),
            ArgsError::UnknownOptions(vec!["a".into(), "b".into()]),
        ];
        for e in errors {
            assert!(!format!("{e}").is_empty());
        }
    }
}

//! `wrsn` — command-line entry point.

use std::process::ExitCode;

mod args;
mod commands;
mod render;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&argv) {
        Ok(output) => {
            println!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

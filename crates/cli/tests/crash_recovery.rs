//! Crash-recovery harness: SIGKILL a real `wrsn serve` process mid-
//! sweep and prove the durable store and job journal lose nothing.
//!
//! The scenario mirrors an operator's worst day: a server running with
//! `--cache --durability fsync` takes an async job, gets `kill -9`'d
//! while seeds are still solving, and is restarted over the same store
//! directory. The restarted server must (a) still know the job, (b)
//! resume it to completion, and (c) produce a final report
//! byte-identical to a never-interrupted run — and `wrsn cache verify`
//! must find no corruption beyond a repairable torn tail.

use std::io::{BufRead as _, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};
use wrsn_serve::client;

const BIN: &str = env!("CARGO_BIN_EXE_wrsn");

/// A sweep heavy enough to stay in flight for a beat: the kill lands
/// between the first committed seed and the last.
const JOB_SPEC: &str =
    "{\"instance\": {\"posts\": 10, \"nodes\": 50, \"field\": 300.0}, \"seeds\": 40}";

struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    /// Spawns `wrsn serve` on an ephemeral port over `store_dir` and
    /// waits for the readiness announcement on stderr.
    fn start(store_dir: &std::path::Path) -> ServerProc {
        let mut child = Command::new(BIN)
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--cache",
                &store_dir.display().to_string(),
                "--durability",
                "fsync",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawning wrsn serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let mut lines = BufReader::new(stderr).lines();
        let deadline = Instant::now() + Duration::from_secs(60);
        let addr = loop {
            assert!(Instant::now() < deadline, "server never announced");
            let Some(Ok(line)) = lines.next() else {
                panic!("server exited before announcing readiness");
            };
            if let Some(rest) = line.strip_prefix("wrsn-serve listening on ") {
                let addr = rest.split_whitespace().next().unwrap_or_default();
                break addr.trim_end_matches(|c| c == '(').trim().to_string();
            }
        };
        // Keep draining stderr so the child never blocks on a full pipe.
        std::thread::spawn(move || for _line in lines {});
        ServerProc { child, addr }
    }

    fn kill9(mut self) {
        // Child::kill is SIGKILL on unix — no drain, no flush.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    fn shutdown(mut self) {
        // No graceful-signal plumbing in std; SIGKILL is fine here
        // because these teardowns happen after the assertions.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn get_json(addr: &str, path: &str) -> serde_json::Value {
    let resp = client::request(addr, "GET", path, None).expect("GET");
    assert_eq!(resp.status, 200, "{path}: {}", resp.body);
    serde_json::from_str(&resp.body).expect("valid JSON")
}

fn submit_job(addr: &str) -> u64 {
    let resp = client::request(addr, "POST", "/v1/jobs", Some(JOB_SPEC)).expect("POST /v1/jobs");
    assert_eq!(resp.status, 202, "{}", resp.body);
    let v: serde_json::Value = serde_json::from_str(&resp.body).unwrap();
    v.get("id").and_then(serde_json::Value::as_u64).unwrap()
}

fn poll_until_done(addr: &str, id: u64) -> serde_json::Value {
    let deadline = Instant::now() + Duration::from_secs(300);
    loop {
        assert!(Instant::now() < deadline, "job {id} never finished");
        let v = get_json(addr, &format!("/v1/jobs/{id}"));
        match v.get("state").and_then(serde_json::Value::as_str) {
            Some("done") => return v,
            Some("running") => std::thread::sleep(Duration::from_millis(50)),
            other => panic!("job {id} in unexpected state {other:?}: {v:?}"),
        }
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wrsn-crash-harness-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn sigkill_mid_sweep_loses_no_committed_results() {
    let crashed_dir = temp_dir("crashed");
    let clean_dir = temp_dir("clean");

    // --- Act 1: submit, wait for the first committed seed, kill -9.
    let server = ServerProc::start(&crashed_dir);
    let id = submit_job(&server.addr);
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(Instant::now() < deadline, "no seed ever committed");
        let v = get_json(&server.addr, &format!("/v1/jobs/{id}/events?since=0"));
        let events = v
            .get("events")
            .and_then(serde_json::Value::as_array)
            .map_or(0, Vec::len);
        if events >= 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    server.kill9();

    // --- Act 2: restart over the same store; the journal respawns the
    // job and the checkpoint + cache replay the committed seeds.
    let server = ServerProc::start(&crashed_dir);
    let resumed = poll_until_done(&server.addr, id);
    let resumed_report = resumed.get("report").expect("resumed job has a report");
    let status = get_json(&server.addr, "/statusz");
    let io = status.get("io").expect("statusz io section with a store");
    assert!(
        io.get("jobs_resumed")
            .and_then(serde_json::Value::as_u64)
            .unwrap_or(0)
            >= 1,
        "restart must report the resumed job: {io:?}"
    );
    server.shutdown();

    // --- Act 3: the same job on a never-crashed server, for the
    // byte-identical reference report.
    let server = ServerProc::start(&clean_dir);
    let clean_id = submit_job(&server.addr);
    let clean = poll_until_done(&server.addr, clean_id);
    let clean_report = clean.get("report").expect("clean job has a report");
    server.shutdown();

    assert_eq!(
        serde_json::to_string(resumed_report).unwrap(),
        serde_json::to_string(clean_report).unwrap(),
        "a killed-and-resumed job must replay to the uninterrupted report"
    );

    // --- Act 4: the crashed store itself is healthy — every committed
    // segment parses (a torn tail is repairable, not a loss).
    let verify = Command::new(BIN)
        .args([
            "cache",
            "verify",
            "--cache",
            &crashed_dir.display().to_string(),
        ])
        .output()
        .expect("running cache verify");
    assert!(
        verify.status.success(),
        "cache verify flagged the crashed store:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&verify.stdout),
        String::from_utf8_lossy(&verify.stderr)
    );

    let _ = std::fs::remove_dir_all(crashed_dir);
    let _ = std::fs::remove_dir_all(clean_dir);
}

#[test]
fn cache_verify_exits_nonzero_on_planted_corruption() {
    use serde::Serialize as _;
    use wrsn_engine::{FingerprintBuilder, ResultStore};
    let dir = temp_dir("verify-cli");
    {
        let store = ResultStore::open(&dir).unwrap();
        for i in 0..4u64 {
            let mut b = FingerprintBuilder::new("crash-harness");
            b.push_u64(i);
            store.put(&b.finish(), i.to_value()).unwrap();
        }
        store.sync().unwrap();
    }
    // A clean store verifies with exit 0.
    let ok = Command::new(BIN)
        .args(["cache", "verify", "--cache", &dir.display().to_string()])
        .output()
        .unwrap();
    assert!(
        ok.status.success(),
        "clean store must verify: {}",
        String::from_utf8_lossy(&ok.stderr)
    );

    // Plant interior corruption: mangle a record line that is NOT the
    // tail, so it cannot be mistaken for a repairable torn write.
    let segment = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|e| e == "jsonl"))
        .expect("a segment file");
    let text = std::fs::read_to_string(&segment).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 3, "header plus several records");
    let mut mangled: Vec<String> = lines.iter().map(|l| (*l).to_string()).collect();
    mangled[1] = "{this is not json".to_string();
    std::fs::write(&segment, format!("{}\n", mangled.join("\n"))).unwrap();

    let bad = Command::new(BIN)
        .args(["cache", "verify", "--cache", &dir.display().to_string()])
        .output()
        .unwrap();
    assert!(
        !bad.status.success(),
        "verify must exit nonzero on interior corruption:\nstdout: {}",
        String::from_utf8_lossy(&bad.stdout)
    );
    assert!(
        String::from_utf8_lossy(&bad.stderr).contains("CORRUPT"),
        "the verdict names the corruption: {}",
        String::from_utf8_lossy(&bad.stderr)
    );
    let _ = std::fs::remove_dir_all(dir);
}

//! Static RF-charger placement with duty-cycle guarantees.
//!
//! A fixed budget of RF chargers is installed on a candidate lattice
//! over the field; each post then harvests power from every installed
//! charger under an inverse-square path-loss model scaled by the post's
//! `m`-node charging efficiency (the paper's central gain curve). The
//! solver picks sites by greedy max-coverage of a per-post duty-cycle
//! target, polishes the pick with swap local search, and spends spare
//! sensor nodes on the posts whose duty cycle is worst.

use crate::profile::EnergyProfile;
use wrsn_core::{
    optimal_cost, CostEvaluator, Deployment, Geometry, Instance, RoutingTree, ScenarioSpec,
    Solution, SolveError, Solver,
};
use wrsn_geom::Point;

/// The `site_grid × site_grid` candidate-site lattice: cell centers of
/// a uniform grid over the bounding box of the posts and the base
/// station.
///
/// # Examples
///
/// ```
/// use wrsn_core::InstanceSampler;
/// use wrsn_geom::Field;
/// use wrsn_sched::candidate_sites;
///
/// let inst = InstanceSampler::new(Field::square(100.0), 6, 6).sample(1);
/// let sites = candidate_sites(inst.geometry().unwrap(), 4);
/// assert_eq!(sites.len(), 16);
/// ```
#[must_use]
pub fn candidate_sites(geometry: &Geometry, grid: usize) -> Vec<Point> {
    let mut min_x = geometry.base_station.x;
    let mut max_x = geometry.base_station.x;
    let mut min_y = geometry.base_station.y;
    let mut max_y = geometry.base_station.y;
    for p in &geometry.posts {
        min_x = min_x.min(p.x);
        max_x = max_x.max(p.x);
        min_y = min_y.min(p.y);
        max_y = max_y.max(p.y);
    }
    let (w, h) = (max_x - min_x, max_y - min_y);
    let mut sites = Vec::with_capacity(grid * grid);
    for gy in 0..grid {
        for gx in 0..grid {
            sites.push(Point::new(
                min_x + (gx as f64 + 0.5) * w / grid as f64,
                min_y + (gy as f64 + 0.5) * h / grid as f64,
            ));
        }
    }
    sites
}

/// Raw radiated power (watts) a post at distance `d_m` receives from one
/// RF charger, before the post's charging efficiency is applied:
/// `rf_power_w / (1 + (d / rf_range_m)²)` — full power up close, half
/// power at `rf_range_m`, inverse-square beyond.
fn site_power_w(site: Point, post: Point, spec: &ScenarioSpec) -> f64 {
    let ratio = site.distance(post) / spec.rf_range_m;
    spec.rf_power_w / (1.0 + ratio * ratio)
}

/// Greedy max-coverage site selection plus swap local search.
///
/// `raw[c][p]` holds the pre-efficiency power post `p` receives from
/// candidate `c`; the objective credits each post up to
/// `min(duty_target, eff_p · Σ raw / required_w_p)` so power beyond the
/// target is spent elsewhere.
fn choose_sites(
    raw: &[Vec<f64>],
    eff: &[f64],
    required_w: &[f64],
    spec: &ScenarioSpec,
) -> Vec<usize> {
    let n = required_w.len();
    let budget = (spec.charger_budget as usize).min(raw.len());
    let duty_credit = |p: usize, raw_sum: f64| -> f64 {
        if required_w[p] <= 0.0 {
            spec.duty_target
        } else {
            (eff[p] * raw_sum / required_w[p]).min(spec.duty_target)
        }
    };
    let objective = |raw_sum: &[f64]| -> f64 { (0..n).map(|p| duty_credit(p, raw_sum[p])).sum() };
    let mut chosen: Vec<usize> = Vec::with_capacity(budget);
    let mut raw_sum = vec![0.0; n];
    for _ in 0..budget {
        let mut best: Option<(f64, usize)> = None;
        for (c, row) in raw.iter().enumerate() {
            if chosen.contains(&c) {
                continue;
            }
            let gain: f64 = (0..n)
                .map(|p| duty_credit(p, raw_sum[p] + row[p]) - duty_credit(p, raw_sum[p]))
                .sum();
            if best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, c));
            }
        }
        let (_, c) = best.expect("budget never exceeds the candidate count");
        chosen.push(c);
        for p in 0..n {
            raw_sum[p] += raw[c][p];
        }
    }
    // First-improvement swap search: trade an installed site for a free
    // one whenever coverage strictly improves.
    let mut score = objective(&raw_sum);
    let mut improved = true;
    while improved {
        improved = false;
        'swap: for i in 0..chosen.len() {
            for (c, row) in raw.iter().enumerate() {
                if chosen.contains(&c) {
                    continue;
                }
                let out = chosen[i];
                for p in 0..n {
                    raw_sum[p] += row[p] - raw[out][p];
                }
                let cand = objective(&raw_sum);
                if cand > score + 1e-12 {
                    chosen[i] = c;
                    score = cand;
                    improved = true;
                    continue 'swap;
                }
                for p in 0..n {
                    raw_sum[p] -= row[p] - raw[out][p];
                }
            }
        }
    }
    chosen
}

/// RF-charger placement solver.
///
/// Installs `charger_budget` static RF chargers from the candidate
/// lattice, then spends spare sensor nodes on the posts with the worst
/// resulting duty cycle (each node improves both storage and the
/// `m`-node charging gain). On instances without geometry it degrades
/// to a pure cost-greedy allocation, so the solver is total over every
/// instance the registry can be handed. The installed sites themselves
/// come from [`plan_placement`].
///
/// # Examples
///
/// ```
/// use wrsn_core::{InstanceSampler, ScenarioSpec, Solver};
/// use wrsn_geom::Field;
/// use wrsn_sched::{plan_placement, SchedPlace};
///
/// let inst = InstanceSampler::new(Field::square(200.0), 8, 20).sample(2);
/// let spec = ScenarioSpec::default();
/// let sol = SchedPlace::new(spec.clone()).solve(&inst)?;
/// let plan = plan_placement(&inst, &sol, &spec).expect("geometric");
/// assert!(plan.sites.len() <= spec.charger_budget as usize);
/// # Ok::<(), wrsn_core::SolveError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SchedPlace {
    spec: ScenarioSpec,
}

impl SchedPlace {
    /// Creates the solver for one charging scenario.
    #[must_use]
    pub fn new(spec: ScenarioSpec) -> Self {
        SchedPlace { spec }
    }

    /// The scenario this solver places chargers for.
    #[must_use]
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Pure cost-greedy allocation for instances without geometry.
    #[allow(clippy::needless_range_loop)] // probes every post index
    fn solve_costwise(&self, instance: &Instance) -> Result<Solution, SolveError> {
        let n = instance.num_posts();
        let cap = instance
            .max_nodes_per_post()
            .unwrap_or(instance.num_nodes());
        let mut eval = CostEvaluator::new(instance);
        if eval.set_deployment(&vec![1u32; n]).is_none() {
            let dep = Deployment::ones(n);
            return Err(match optimal_cost(instance, &dep) {
                Err(e) => e,
                Ok(_) => SolveError::Unroutable { post: 0 },
            });
        }
        let mut counts = vec![1u32; n];
        for _ in 0..(instance.num_nodes() - n as u32) {
            let mut best: Option<(f64, usize)> = None;
            for p in 0..n {
                if counts[p] >= cap {
                    continue;
                }
                let cost = eval.probe_add(p);
                if best.is_none_or(|(b, _)| cost < b) {
                    best = Some((cost, p));
                }
            }
            let (_, p) = best.expect("cap feasibility was validated at build time");
            eval.commit_add(p);
            counts[p] += 1;
        }
        let dep = eval.deployment();
        let tree = RoutingTree::new(eval.parents(), instance)
            .expect("shortest-path parents use existing links");
        Ok(Solution::evaluated(self.name(), instance, dep, tree))
    }
}

impl Default for SchedPlace {
    fn default() -> Self {
        SchedPlace::new(ScenarioSpec::default())
    }
}

impl Solver for SchedPlace {
    fn name(&self) -> &'static str {
        "SchedPlace"
    }

    #[allow(clippy::needless_range_loop)] // scans every post index
    fn solve(&self, instance: &Instance) -> Result<Solution, SolveError> {
        let Some(geo) = instance.geometry() else {
            return self.solve_costwise(instance);
        };
        let geo = geo.clone();
        let n = instance.num_posts();
        let cap = instance
            .max_nodes_per_post()
            .unwrap_or(instance.num_nodes());
        let mut eval = CostEvaluator::new(instance);
        if eval.set_deployment(&vec![1u32; n]).is_none() {
            let dep = Deployment::ones(n);
            return Err(match optimal_cost(instance, &dep) {
                Err(e) => e,
                Ok(_) => SolveError::Unroutable { post: 0 },
            });
        }
        // Required power per post under the one-node routing; the site
        // pick keys off this fixed baseline so placement and allocation
        // cannot chase each other.
        let ones = vec![1u32; n];
        let tree = RoutingTree::new(eval.parents(), instance)
            .expect("shortest-path parents use existing links");
        let profile = EnergyProfile::new(instance, &ones, &tree, &self.spec);
        let candidates = candidate_sites(&geo, self.spec.site_grid);
        let raw: Vec<Vec<f64>> = candidates
            .iter()
            .map(|&s| {
                geo.posts
                    .iter()
                    .map(|&p| site_power_w(s, p, &self.spec))
                    .collect()
            })
            .collect();
        let eff1: Vec<f64> = (0..n).map(|_| instance.charge_efficiency(1)).collect();
        let chosen = choose_sites(&raw, &eff1, &profile.consumed_w, &self.spec);
        let mut raw_sum = vec![0.0; n];
        for &c in &chosen {
            for p in 0..n {
                raw_sum[p] += raw[c][p];
            }
        }
        // Spend spare nodes on the worst duty cycle; every node at `p`
        // lifts its harvest through the m-node charging gain.
        let duty = |p: usize, m: u32| -> f64 {
            if profile.consumed_w[p] <= 0.0 {
                f64::INFINITY
            } else {
                instance.charge_efficiency(m) * raw_sum[p] / profile.consumed_w[p]
            }
        };
        let mut counts = vec![1u32; n];
        for _ in 0..(instance.num_nodes() - n as u32) {
            let mut best: Option<(f64, usize)> = None;
            for p in 0..n {
                if counts[p] >= cap {
                    continue;
                }
                let d = duty(p, counts[p]);
                if best.is_none_or(|(b, _)| d < b) {
                    best = Some((d, p));
                }
            }
            let (d, mut pick) = best.expect("cap feasibility was validated at build time");
            if d.is_infinite() {
                // No post consumes anything: fall back to cost-greedy so
                // the spares still buy objective value.
                let mut cheapest: Option<(f64, usize)> = None;
                for p in 0..n {
                    if counts[p] >= cap {
                        continue;
                    }
                    let cost = eval.probe_add(p);
                    if cheapest.is_none_or(|(c, _)| cost < c) {
                        cheapest = Some((cost, p));
                    }
                }
                pick = cheapest.expect("a post below the cap exists").1;
            }
            eval.commit_add(pick);
            counts[pick] += 1;
        }
        let dep = eval.deployment();
        let tree = RoutingTree::new(eval.parents(), instance)
            .expect("shortest-path parents use existing links");
        Ok(Solution::evaluated(self.name(), instance, dep, tree))
    }
}

/// The installed RF-charger sites and the duty cycle they buy each post.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPlan {
    /// Installed charger locations (at most `charger_budget`).
    pub sites: Vec<Point>,
    /// Achieved duty cycle per post: received power over required
    /// power, capped at 1. Posts that consume nothing report 1.
    pub duty: Vec<f64>,
    /// Posts whose duty cycle meets the scenario's target.
    pub covered: usize,
    /// The scenario's duty-cycle target, echoed for reports.
    pub target: f64,
}

/// Places RF chargers for a routed solution under one scenario.
/// Returns `None` for instances without geometry.
///
/// Unlike the pick embedded in [`SchedPlace::solve`] (which works from
/// the one-node baseline it is about to improve), this plans against
/// the *final* deployment and routing, so the reported duty cycles are
/// the ones the installed network actually gets.
#[must_use]
pub fn plan_placement(
    instance: &Instance,
    solution: &Solution,
    spec: &ScenarioSpec,
) -> Option<PlacementPlan> {
    let geo = instance.geometry()?;
    let n = instance.num_posts();
    let counts = solution.deployment().counts();
    let profile = EnergyProfile::new(instance, counts, solution.tree(), spec);
    let candidates = candidate_sites(geo, spec.site_grid);
    let raw: Vec<Vec<f64>> = candidates
        .iter()
        .map(|&s| {
            geo.posts
                .iter()
                .map(|&p| site_power_w(s, p, spec))
                .collect()
        })
        .collect();
    let eff: Vec<f64> = counts
        .iter()
        .map(|&m| instance.charge_efficiency(m))
        .collect();
    let chosen = choose_sites(&raw, &eff, &profile.consumed_w, spec);
    let mut duty = vec![0.0; n];
    for p in 0..n {
        if profile.consumed_w[p] <= 0.0 {
            duty[p] = 1.0;
            continue;
        }
        let raw_sum: f64 = chosen.iter().map(|&c| raw[c][p]).sum();
        duty[p] = (eff[p] * raw_sum / profile.consumed_w[p]).min(1.0);
    }
    let covered = duty
        .iter()
        .filter(|&&d| d + 1e-12 >= spec.duty_target)
        .count();
    Some(PlacementPlan {
        sites: chosen.into_iter().map(|c| candidates[c]).collect(),
        duty,
        covered,
        target: spec.duty_target,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrsn_core::{InstanceBuilder, InstanceSampler};
    use wrsn_energy::Energy;
    use wrsn_geom::Field;

    #[test]
    fn solves_with_exact_budget_and_valid_deployment() {
        let inst = InstanceSampler::new(Field::square(200.0), 8, 20).sample(4);
        let sol = SchedPlace::default().solve(&inst).unwrap();
        assert!(sol.deployment().is_valid_for(&inst));
        assert_eq!(sol.deployment().total(), 20);
        assert_eq!(sol.algorithm(), "SchedPlace");
    }

    #[test]
    fn respects_cap() {
        let inst = InstanceSampler::new(Field::square(150.0), 4, 8)
            .max_nodes_per_post(2)
            .sample(2);
        let sol = SchedPlace::default().solve(&inst).unwrap();
        assert_eq!(sol.deployment().counts(), &[2, 2, 2, 2]);
    }

    #[test]
    fn explicit_instances_fall_back_to_cost_greedy() {
        let e = Energy::from_njoules(4.0);
        let inst = InstanceBuilder::new(2, 5)
            .rx_energy(Energy::from_njoules(2.0))
            .uplink(0, 2, e)
            .uplink(1, 0, e)
            .build()
            .unwrap();
        let sol = SchedPlace::default().solve(&inst).unwrap();
        assert_eq!(sol.deployment().total(), 5);
        // The relay carries double traffic, so the cost-greedy fallback
        // reinforces it — same behavior IDB(1) exhibits.
        assert!(sol.deployment().count(0) > sol.deployment().count(1));
        assert!(plan_placement(&inst, &sol, &ScenarioSpec::default()).is_none());
    }

    #[test]
    fn lattice_covers_the_bounding_box() {
        let inst = InstanceSampler::new(Field::square(300.0), 10, 10).sample(8);
        let geo = inst.geometry().unwrap();
        let sites = candidate_sites(geo, 5);
        assert_eq!(sites.len(), 25);
        let min_x = geo
            .posts
            .iter()
            .map(|p| p.x)
            .fold(geo.base_station.x, f64::min);
        let max_x = geo
            .posts
            .iter()
            .map(|p| p.x)
            .fold(geo.base_station.x, f64::max);
        for s in &sites {
            assert!(s.x > min_x && s.x < max_x);
            assert!(s.is_finite());
        }
    }

    #[test]
    fn plan_respects_budget_and_duty_bounds() {
        let inst = InstanceSampler::new(Field::square(250.0), 12, 24).sample(3);
        let spec = ScenarioSpec::default();
        let sol = SchedPlace::new(spec.clone()).solve(&inst).unwrap();
        let plan = plan_placement(&inst, &sol, &spec).unwrap();
        assert!(plan.sites.len() <= spec.charger_budget as usize);
        assert!(!plan.sites.is_empty());
        assert_eq!(plan.duty.len(), 12);
        assert!(plan.duty.iter().all(|&d| (0.0..=1.0).contains(&d)));
        assert_eq!(
            plan.covered,
            plan.duty
                .iter()
                .filter(|&&d| d + 1e-12 >= plan.target)
                .count()
        );
        assert_eq!(plan.target, spec.duty_target);
    }

    #[test]
    fn overwhelming_rf_power_covers_every_post() {
        let inst = InstanceSampler::new(Field::square(200.0), 8, 16).sample(5);
        let spec = ScenarioSpec {
            rf_power_w: 1e9,
            ..ScenarioSpec::default()
        };
        let sol = SchedPlace::new(spec.clone()).solve(&inst).unwrap();
        let plan = plan_placement(&inst, &sol, &spec).unwrap();
        assert_eq!(plan.covered, 8);
    }

    #[test]
    fn bigger_budgets_never_reduce_coverage_credit() {
        let inst = InstanceSampler::new(Field::square(300.0), 10, 20).sample(6);
        let credit = |budget: u32| {
            let spec = ScenarioSpec {
                charger_budget: budget,
                rf_power_w: 20.0,
                ..ScenarioSpec::default()
            };
            let sol = SchedPlace::new(spec.clone()).solve(&inst).unwrap();
            let plan = plan_placement(&inst, &sol, &spec).unwrap();
            plan.duty
                .iter()
                .map(|&d| d.min(spec.duty_target))
                .sum::<f64>()
        };
        let one = credit(1);
        let four = credit(4);
        let nine = credit(9);
        assert!(four + 1e-9 >= one, "{four} vs {one}");
        assert!(nine + 1e-9 >= four, "{nine} vs {four}");
    }

    #[test]
    fn placement_is_deterministic() {
        let inst = InstanceSampler::new(Field::square(250.0), 9, 18).sample(7);
        let spec = ScenarioSpec::default();
        let a = SchedPlace::new(spec.clone()).solve(&inst).unwrap();
        let b = SchedPlace::new(spec.clone()).solve(&inst).unwrap();
        assert_eq!(a.deployment().counts(), b.deployment().counts());
        assert_eq!(
            plan_placement(&inst, &a, &spec),
            plan_placement(&inst, &b, &spec)
        );
    }
}

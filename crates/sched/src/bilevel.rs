//! Bi-level deploy-then-schedule metaheuristic.
//!
//! The outer level searches deployments with simulated annealing; the
//! inner level evaluates each candidate by optimally routing it (the
//! paper's objective) *and* by the steady-state feasibility of the
//! charging schedule a mobile-charger fleet could run over it. The
//! combined objective `cost × (1 + infeasible_fraction)` pulls the
//! anneal toward deployments that are cheap to recharge *and*
//! physically serviceable before batteries run dry.

use crate::profile::EnergyProfile;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use wrsn_core::{
    optimal_cost, CostEvaluator, Deployment, Instance, RoutingTree, ScenarioSpec, Solution,
    SolveError, Solver,
};
use wrsn_sim::PatrolTour;

/// A stable FNV-1a digest of an instance, mixed into the bi-level
/// solver's RNG seed so each instance anneals its own deterministic
/// trajectory even inside a fixed-seed sweep.
///
/// # Examples
///
/// ```
/// use wrsn_core::InstanceSampler;
/// use wrsn_geom::Field;
/// use wrsn_sched::instance_digest;
///
/// let a = InstanceSampler::new(Field::square(100.0), 4, 8).sample(1);
/// let b = InstanceSampler::new(Field::square(100.0), 4, 8).sample(2);
/// assert_eq!(instance_digest(&a), instance_digest(&a));
/// assert_ne!(instance_digest(&a), instance_digest(&b));
/// ```
#[must_use]
pub fn instance_digest(instance: &Instance) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{instance:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

/// Fraction of posts whose battery deadline is shorter than the
/// steady-state patrol period of the charger route that owns them.
///
/// The fleet's tour geometry is planned once over the instance (it does
/// not depend on the deployment), so per-candidate evaluation only
/// recomputes dwell loads and battery windows — O(posts) on top of the
/// routing itself. Instances without geometry score 0 (no spatial
/// schedule to violate), which reduces the anneal to pure cost search.
pub(crate) fn infeasible_fraction(
    instance: &Instance,
    counts: &[u32],
    tree: &RoutingTree,
    spec: &ScenarioSpec,
    routes: &[(Vec<usize>, f64)],
) -> f64 {
    if routes.is_empty() {
        return 0.0;
    }
    let profile = EnergyProfile::new(instance, counts, tree, spec);
    let mut bad = 0usize;
    for (members, travel_s) in routes {
        let load: f64 = members
            .iter()
            .map(|&p| profile.demand_w[p] / spec.charger_power_w)
            .sum();
        let cycle_s = if load < 1.0 {
            travel_s / (1.0 - load)
        } else {
            f64::INFINITY
        };
        bad += members
            .iter()
            .filter(|&&p| profile.window_s[p] < cycle_s)
            .count();
    }
    bad as f64 / instance.num_posts() as f64
}

/// Plans the fleet's route memberships and travel times once per
/// instance: the full patrol tour split across the fleet, exactly the
/// partition [`plan_tour_schedule`](crate::plan_tour_schedule) and the
/// simulator use.
fn plan_routes(instance: &Instance, spec: &ScenarioSpec) -> Vec<(Vec<usize>, f64)> {
    let Some(geo) = instance.geometry() else {
        return Vec::new();
    };
    let full = PatrolTour::plan(geo.base_station, geo.posts.clone());
    let mut used = vec![false; geo.posts.len()];
    full.split(spec.chargers as usize)
        .into_iter()
        .map(|sub| {
            let members: Vec<usize> = sub
                .stops_in_order()
                .into_iter()
                .map(|pt| {
                    let p = geo
                        .posts
                        .iter()
                        .enumerate()
                        .position(|(i, q)| {
                            !used[i]
                                && q.x.to_bits() == pt.x.to_bits()
                                && q.y.to_bits() == pt.y.to_bits()
                        })
                        .expect("tour stops are instance posts");
                    used[p] = true;
                    p
                })
                .collect();
            (members, sub.length() / spec.charger_speed_mps)
        })
        .collect()
}

/// Bi-level deploy-then-schedule solver.
///
/// Starts from the cost-greedy deployment (IDB(1)'s coordinate ascent)
/// and anneals single-node moves between posts, scoring every candidate
/// by `routing cost × (1 + infeasible_fraction)`. The anneal is seeded
/// by `spec.seed` mixed with [`instance_digest`], so identical inputs
/// replay identical trajectories — the property the engine's result
/// cache and the shard-merge tests rely on.
///
/// # Examples
///
/// ```
/// use wrsn_core::{InstanceSampler, ScenarioSpec, Solver};
/// use wrsn_geom::Field;
/// use wrsn_sched::SchedBilevel;
///
/// let inst = InstanceSampler::new(Field::square(200.0), 6, 15).sample(4);
/// let a = SchedBilevel::new(ScenarioSpec::default()).solve(&inst)?;
/// let b = SchedBilevel::new(ScenarioSpec::default()).solve(&inst)?;
/// assert_eq!(a.deployment().counts(), b.deployment().counts());
/// # Ok::<(), wrsn_core::SolveError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SchedBilevel {
    spec: ScenarioSpec,
}

impl SchedBilevel {
    /// Creates the solver for one charging scenario.
    #[must_use]
    pub fn new(spec: ScenarioSpec) -> Self {
        SchedBilevel { spec }
    }

    /// The scenario whose schedule feasibility shapes the anneal.
    #[must_use]
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }
}

impl Default for SchedBilevel {
    fn default() -> Self {
        SchedBilevel::new(ScenarioSpec::default())
    }
}

impl Solver for SchedBilevel {
    fn name(&self) -> &'static str {
        "SchedBilevel"
    }

    #[allow(clippy::needless_range_loop)] // probes every post index
    fn solve(&self, instance: &Instance) -> Result<Solution, SolveError> {
        let n = instance.num_posts();
        let cap = instance
            .max_nodes_per_post()
            .unwrap_or(instance.num_nodes());
        let mut eval = CostEvaluator::new(instance);
        if eval.set_deployment(&vec![1u32; n]).is_none() {
            let dep = Deployment::ones(n);
            return Err(match optimal_cost(instance, &dep) {
                Err(e) => e,
                Ok(_) => SolveError::Unroutable { post: 0 },
            });
        }
        // Lower level, warm start: cost-greedy coordinate ascent.
        let mut counts = vec![1u32; n];
        for _ in 0..(instance.num_nodes() - n as u32) {
            let mut best: Option<(f64, usize)> = None;
            for p in 0..n {
                if counts[p] >= cap {
                    continue;
                }
                let cost = eval.probe_add(p);
                if best.is_none_or(|(b, _)| cost < b) {
                    best = Some((cost, p));
                }
            }
            let (_, p) = best.expect("cap feasibility was validated at build time");
            eval.commit_add(p);
            counts[p] += 1;
        }
        let routes = plan_routes(instance, &self.spec);
        let objective = |eval: &mut CostEvaluator<'_>, counts: &[u32]| -> Option<f64> {
            let cost = eval.set_deployment(counts)?;
            let tree = RoutingTree::new(eval.parents(), instance)
                .expect("shortest-path parents use existing links");
            let frac = infeasible_fraction(instance, counts, &tree, &self.spec, &routes);
            Some(cost * (1.0 + frac))
        };
        let mut current = objective(&mut eval, &counts).expect("warm start is routable");
        let mut best_counts = counts.clone();
        let mut best = current;
        // Upper level: anneal single-node moves. With no spare nodes
        // every move is blocked, so skip the loop entirely.
        if instance.num_nodes() > n as u32 && n >= 2 {
            let mut rng = SmallRng::seed_from_u64(self.spec.seed ^ instance_digest(instance));
            let t0 = self.spec.sa_temp * current.max(f64::MIN_POSITIVE);
            let decay = (1e-3f64).powf(1.0 / f64::from(self.spec.sa_iters));
            let mut temp = t0;
            for _ in 0..self.spec.sa_iters {
                // Donor: a post with a spare node; recipient: a post
                // below the cap. Scan cyclically from random starts so
                // the move is always well-defined when one exists.
                let pick = |rng: &mut SmallRng| (rng.random::<f64>() * n as f64) as usize % n;
                let start_a = pick(&mut rng);
                let start_b = pick(&mut rng);
                let a = (0..n).map(|k| (start_a + k) % n).find(|&p| counts[p] > 1);
                let Some(a) = a else { break };
                let Some(b) = (0..n)
                    .map(|k| (start_b + k) % n)
                    .find(|&p| p != a && counts[p] < cap)
                else {
                    break;
                };
                counts[a] -= 1;
                counts[b] += 1;
                let cand = objective(&mut eval, &counts);
                let accept = match cand {
                    None => false,
                    Some(j) => j < current || rng.random::<f64>() < (-(j - current) / temp).exp(),
                };
                if accept {
                    current = cand.expect("accepted moves are routable");
                    if current < best {
                        best = current;
                        best_counts.copy_from_slice(&counts);
                    }
                } else {
                    counts[a] += 1;
                    counts[b] -= 1;
                }
                temp *= decay;
            }
        }
        eval.set_deployment(&best_counts)
            .expect("best candidate was routable when accepted");
        let dep = eval.deployment();
        let tree = RoutingTree::new(eval.parents(), instance)
            .expect("shortest-path parents use existing links");
        Ok(Solution::evaluated(self.name(), instance, dep, tree))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrsn_core::{Idb, InstanceBuilder, InstanceSampler};
    use wrsn_energy::Energy;
    use wrsn_geom::Field;

    #[test]
    fn solves_with_exact_budget_and_valid_deployment() {
        let inst = InstanceSampler::new(Field::square(200.0), 8, 20).sample(1);
        let sol = SchedBilevel::default().solve(&inst).unwrap();
        assert!(sol.deployment().is_valid_for(&inst));
        assert_eq!(sol.deployment().total(), 20);
        assert_eq!(sol.algorithm(), "SchedBilevel");
    }

    #[test]
    fn replays_identically_for_one_seed() {
        let inst = InstanceSampler::new(Field::square(300.0), 12, 36).sample(9);
        let spec = ScenarioSpec {
            battery_j: 0.005,
            charger_speed_mps: 1.0,
            sa_iters: 150,
            ..ScenarioSpec::default()
        };
        let a = SchedBilevel::new(spec.clone()).solve(&inst).unwrap();
        let b = SchedBilevel::new(spec.clone()).solve(&inst).unwrap();
        assert_eq!(a.deployment().counts(), b.deployment().counts());
        assert_eq!(a.total_cost(), b.total_cost());
        // Other scenario seeds stay valid (their trajectories may or may
        // not converge to the same deployment).
        for s in 1..=3 {
            let spec = ScenarioSpec {
                seed: s,
                ..spec.clone()
            };
            let c = SchedBilevel::new(spec).solve(&inst).unwrap();
            assert!(c.deployment().is_valid_for(&inst));
        }
    }

    #[test]
    fn relaxed_scenario_never_loses_to_the_cost_greedy_start() {
        // With huge batteries the penalty term is zero, the objective
        // collapses to pure routing cost, and SA keeps the best-so-far,
        // which starts at the IDB(1) deployment.
        let spec = ScenarioSpec {
            battery_j: 1e6,
            ..ScenarioSpec::default()
        };
        for seed in [2u64, 5, 11] {
            let inst = InstanceSampler::new(Field::square(250.0), 10, 25).sample(seed);
            let sched = SchedBilevel::new(spec.clone()).solve(&inst).unwrap();
            let idb = Idb::new(1).solve(&inst).unwrap();
            assert!(
                sched.total_cost().as_njoules() <= idb.total_cost().as_njoules() * (1.0 + 1e-9),
                "seed {seed}: {} vs {}",
                sched.total_cost(),
                idb.total_cost()
            );
        }
    }

    #[test]
    fn penalized_objective_never_exceeds_the_warm_start() {
        // Under a tight scenario the anneal may trade routing cost for
        // feasibility, but its combined objective can only improve on
        // the warm start (= the IDB(1) deployment).
        let inst = InstanceSampler::new(Field::square(300.0), 12, 30).sample(3);
        let idb = Idb::new(1).solve(&inst).unwrap();
        // Pick a battery size where the warm start is *partially*
        // infeasible, so feasibility-improving moves actually pay.
        let spec_for = |battery_j: f64| ScenarioSpec {
            battery_j,
            charger_speed_mps: 1.0,
            charger_power_w: 2.0,
            ..ScenarioSpec::default()
        };
        let spec = [0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1]
            .into_iter()
            .map(spec_for)
            .find(|spec| {
                let routes = plan_routes(&inst, spec);
                let frac = infeasible_fraction(
                    &inst,
                    idb.deployment().counts(),
                    idb.tree(),
                    spec,
                    &routes,
                );
                frac > 0.0 && frac < 1.0
            })
            .unwrap_or_else(|| spec_for(0.004));
        let routes = plan_routes(&inst, &spec);
        let score = |sol: &Solution| {
            let frac =
                infeasible_fraction(&inst, sol.deployment().counts(), sol.tree(), &spec, &routes);
            sol.total_cost().as_njoules() * (1.0 + frac)
        };
        let sched = SchedBilevel::new(spec.clone()).solve(&inst).unwrap();
        assert!(score(&sched) <= score(&idb) * (1.0 + 1e-9));
    }

    #[test]
    fn explicit_instances_anneal_on_pure_cost() {
        let e = Energy::from_njoules(4.0);
        let inst = InstanceBuilder::new(2, 5)
            .rx_energy(Energy::from_njoules(2.0))
            .uplink(0, 2, e)
            .uplink(1, 0, e)
            .build()
            .unwrap();
        assert!(plan_routes(&inst, &ScenarioSpec::default()).is_empty());
        let sol = SchedBilevel::default().solve(&inst).unwrap();
        let idb = Idb::new(1).solve(&inst).unwrap();
        assert_eq!(sol.deployment().total(), 5);
        assert!(sol.total_cost() <= idb.total_cost());
    }

    #[test]
    fn no_spare_nodes_short_circuits_the_anneal() {
        let inst = InstanceSampler::new(Field::square(150.0), 5, 5).sample(2);
        let sol = SchedBilevel::default().solve(&inst).unwrap();
        assert_eq!(sol.deployment().counts(), &[1, 1, 1, 1, 1]);
    }

    #[test]
    fn digest_is_stable_and_instance_sensitive() {
        let a = InstanceSampler::new(Field::square(100.0), 4, 8).sample(1);
        let b = InstanceSampler::new(Field::square(100.0), 4, 8).sample(2);
        assert_eq!(instance_digest(&a), instance_digest(&a));
        assert_ne!(instance_digest(&a), instance_digest(&b));
    }
}

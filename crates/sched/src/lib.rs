//! # wrsn-sched — charging-scenario solvers
//!
//! The source paper holds the charger out of scope ("sensor nodes can
//! always be recharged in time"); the related work makes charging
//! itself the decision variable. This crate adds three solver families
//! that flow through the ordinary [`wrsn_core::Solver`] contract — so
//! the engine's sweeps, result cache, HTTP serving, and chaos tests all
//! pick them up unchanged — while exposing their scheduling artifacts
//! (tours, dwell times, witness sets, charger sites) through side APIs
//! the simulator and CLI consume:
//!
//! - [`SchedTour`] — **mobile-charger tour scheduling** against battery
//!   deadlines: a deadline-balancing deployment (extra nodes go to the
//!   post whose pooled battery runs dry first) plus
//!   [`plan_tour_schedule`], a nearest-deadline-first route per charger
//!   refined by deadline-aware 2-opt over travel and dwell, with
//!   infeasibility detection and a minimal witness set of posts no
//!   schedule can save.
//! - [`SchedPlace`] — **static RF-charger placement** with duty-cycle
//!   guarantees: greedy max-coverage over a candidate site lattice,
//!   local-search refinement, and a per-post received-power model that
//!   reuses the instance's `wrsn-charging` gain curve.
//! - [`SchedBilevel`] — **bi-level deploy-then-schedule**: simulated
//!   annealing over deployments, scoring each candidate by routing cost
//!   plus a charging-schedule feasibility penalty; seeded and
//!   replay-deterministic.
//!
//! All three read their knobs from a [`wrsn_core::ScenarioSpec`], the
//! same declarative parameter block the CLI, the HTTP API, and the
//! engine's cache fingerprints share.
//!
//! # Examples
//!
//! ```
//! use wrsn_core::{InstanceSampler, ScenarioSpec, Solver};
//! use wrsn_geom::Field;
//! use wrsn_sched::{plan_tour_schedule, SchedTour};
//!
//! let inst = InstanceSampler::new(Field::square(200.0), 8, 20).sample(1);
//! let spec = ScenarioSpec::default();
//! let sol = SchedTour::new(spec.clone()).solve(&inst)?;
//! let schedule = plan_tour_schedule(&inst, &sol, &spec).expect("geometric");
//! assert_eq!(schedule.visit_order.len() + schedule.infeasible.len(), 8);
//! # Ok::<(), wrsn_core::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bilevel;
mod place;
mod profile;
mod tour;

pub use bilevel::{instance_digest, SchedBilevel};
pub use place::{candidate_sites, plan_placement, PlacementPlan, SchedPlace};
pub use tour::{plan_tour_schedule, ChargerRoute, SchedTour, TourSchedule};

//! Mobile-charger tour scheduling against battery deadlines.
//!
//! [`SchedTour`] deploys nodes to *balance battery deadlines* — every
//! extra node goes to the post whose pooled battery would run dry first,
//! which simultaneously stretches that post's deadline (more storage)
//! and cheapens its recharging (better `m`-node charging efficiency).
//! [`plan_tour_schedule`] then turns the routed solution into a concrete
//! charger timetable: the patrol tour is split among the fleet,
//! each route is ordered nearest-deadline-first and refined by a
//! deadline-aware 2-opt over (lateness, travel), and dwell times are
//! sized so steady-state delivery matches steady-state drain. Posts no
//! schedule can save are reported as a *minimal witness set* — drop
//! them and the rest of the timetable is feasible; re-add any one and
//! it is not.

use crate::profile::EnergyProfile;
use wrsn_core::{
    optimal_cost, CostEvaluator, Deployment, Instance, RoutingTree, ScenarioSpec, Solution,
    SolveError, Solver,
};
use wrsn_geom::Point;
use wrsn_sim::PatrolTour;

/// Slack applied when comparing arrival times against battery
/// deadlines, absorbing accumulated floating-point error.
const DEADLINE_EPS: f64 = 1e-9;

/// Deadline-balancing deployment solver for mobile-charger scenarios.
///
/// Where [`Idb`](wrsn_core::Idb) spends spare nodes minimizing the
/// recharging *cost*, `SchedTour` spends them maximizing the tightest
/// battery *deadline* the charger fleet must beat. The returned
/// [`Solution`] flows through the ordinary engine/cache/serve plumbing;
/// the charger timetable itself comes from [`plan_tour_schedule`].
///
/// # Examples
///
/// ```
/// use wrsn_core::{InstanceSampler, ScenarioSpec, Solver};
/// use wrsn_geom::Field;
/// use wrsn_sched::SchedTour;
///
/// let inst = InstanceSampler::new(Field::square(200.0), 8, 20).sample(3);
/// let sol = SchedTour::new(ScenarioSpec::default()).solve(&inst)?;
/// assert_eq!(sol.deployment().total(), 20);
/// # Ok::<(), wrsn_core::SolveError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SchedTour {
    spec: ScenarioSpec,
}

impl SchedTour {
    /// Creates the solver for one charging scenario.
    #[must_use]
    pub fn new(spec: ScenarioSpec) -> Self {
        SchedTour { spec }
    }

    /// The scenario this solver schedules against.
    #[must_use]
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }
}

impl Default for SchedTour {
    fn default() -> Self {
        SchedTour::new(ScenarioSpec::default())
    }
}

impl Solver for SchedTour {
    fn name(&self) -> &'static str {
        "SchedTour"
    }

    #[allow(clippy::needless_range_loop)] // probes every post index
    fn solve(&self, instance: &Instance) -> Result<Solution, SolveError> {
        let n = instance.num_posts();
        let cap = instance
            .max_nodes_per_post()
            .unwrap_or(instance.num_nodes());
        let mut eval = CostEvaluator::new(instance);
        if eval.set_deployment(&vec![1u32; n]).is_none() {
            let dep = Deployment::ones(n);
            return Err(match optimal_cost(instance, &dep) {
                Err(e) => e,
                Ok(_) => SolveError::Unroutable { post: 0 },
            });
        }
        let mut counts = vec![1u32; n];
        for _ in 0..(instance.num_nodes() - n as u32) {
            let tree = RoutingTree::new(eval.parents(), instance)
                .expect("shortest-path parents use existing links");
            let profile = EnergyProfile::new(instance, &counts, &tree, &self.spec);
            // The post whose pooled battery dies first gets the node.
            let mut best: Option<(f64, usize)> = None;
            for p in 0..n {
                if counts[p] >= cap {
                    continue;
                }
                let w = profile.window_s[p];
                if best.is_none_or(|(bw, _)| w < bw) {
                    best = Some((w, p));
                }
            }
            let (window, mut pick) = best.expect("cap feasibility was validated at build time");
            if window.is_infinite() {
                // Nothing drains (degenerate scenario): fall back to the
                // cost-greedy choice so spares still help the objective.
                let mut cheapest: Option<(f64, usize)> = None;
                for p in 0..n {
                    if counts[p] >= cap {
                        continue;
                    }
                    let cost = eval.probe_add(p);
                    if cheapest.is_none_or(|(c, _)| cost < c) {
                        cheapest = Some((cost, p));
                    }
                }
                pick = cheapest.expect("a post below the cap exists").1;
            }
            eval.commit_add(pick);
            counts[pick] += 1;
        }
        let dep = eval.deployment();
        let tree = RoutingTree::new(eval.parents(), instance)
            .expect("shortest-path parents use existing links");
        Ok(Solution::evaluated(self.name(), instance, dep, tree))
    }
}

/// One mobile charger's steady-state timetable.
#[derive(Debug, Clone, PartialEq)]
pub struct ChargerRoute {
    /// Posts in visit order.
    pub posts: Vec<usize>,
    /// First-cycle arrival time at each post in seconds (travel plus
    /// dwell at every earlier stop).
    pub arrival_s: Vec<f64>,
    /// Steady-state dwell at each post in seconds, sized so one cycle's
    /// delivery replaces one cycle's drain.
    pub dwell_s: Vec<f64>,
    /// Steady-state cycle period in seconds (travel plus all dwells).
    pub cycle_s: f64,
    /// Route travel distance in meters (depot → posts → depot).
    pub length_m: f64,
}

/// A fleet timetable over every post, plus the posts that cannot be
/// saved by any timetable.
///
/// Produced by [`plan_tour_schedule`]; consumed by the CLI (`wrsn
/// simulate --sched-tour`) and the simulator's planned-tour mode.
#[derive(Debug, Clone, PartialEq)]
pub struct TourSchedule {
    /// One timetable per mobile charger (empty routes are dropped).
    pub routes: Vec<ChargerRoute>,
    /// Battery deadline per post in seconds (infinite when the post
    /// consumes nothing).
    pub deadline_s: Vec<f64>,
    /// Minimal witness set of unsavable posts, ascending: removing them
    /// makes every route feasible, and re-adding any single one breaks
    /// its route again.
    pub infeasible: Vec<usize>,
    /// All scheduled posts, route by route in visit order — the order
    /// handed to the simulator's planned-tour mode.
    pub visit_order: Vec<usize>,
}

impl TourSchedule {
    /// Whether every post can be kept alive by this timetable.
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.infeasible.is_empty()
    }
}

/// One candidate ordering of a route, scored for the 2-opt search.
struct RouteScore {
    /// Total deadline lateness across first-cycle arrivals and
    /// steady-state periods (0 when feasible).
    lateness: f64,
    /// Travel distance in meters.
    length_m: f64,
}

impl RouteScore {
    fn better_than(&self, other: &RouteScore) -> bool {
        if (self.lateness - other.lateness).abs() > DEADLINE_EPS {
            return self.lateness < other.lateness;
        }
        self.length_m + DEADLINE_EPS < other.length_m
    }
}

/// Computes the timetable for one route order without reordering it.
fn timetable(
    depot: Point,
    posts: &[Point],
    order: &[usize],
    profile: &EnergyProfile,
    spec: &ScenarioSpec,
) -> ChargerRoute {
    let mut length_m = 0.0;
    let mut prev = depot;
    let mut leg_s = Vec::with_capacity(order.len());
    for &p in order {
        let d = prev.distance(posts[p]);
        length_m += d;
        leg_s.push(d / spec.charger_speed_mps);
        prev = posts[p];
    }
    if let Some(&last) = order.last() {
        length_m += posts[last].distance(depot);
    }
    let travel_s = length_m / spec.charger_speed_mps;
    // Steady state: the charger radiates `charger_power_w` while
    // dwelling; over one cycle it must deliver cycle_s × demand_w to
    // each post. load = fraction of the cycle spent dwelling.
    let load: f64 = order
        .iter()
        .map(|&p| profile.demand_w[p] / spec.charger_power_w)
        .sum();
    let cycle_s = if load < 1.0 {
        travel_s / (1.0 - load)
    } else {
        f64::INFINITY
    };
    let dwell_s: Vec<f64> = order
        .iter()
        .map(|&p| {
            if cycle_s.is_finite() {
                profile.demand_w[p] * cycle_s / spec.charger_power_w
            } else {
                f64::INFINITY
            }
        })
        .collect();
    let mut arrival_s = Vec::with_capacity(order.len());
    let mut t = 0.0;
    for (k, &leg) in leg_s.iter().enumerate() {
        t += leg;
        arrival_s.push(t);
        t += if dwell_s[k].is_finite() {
            dwell_s[k]
        } else {
            0.0
        };
    }
    ChargerRoute {
        posts: order.to_vec(),
        arrival_s,
        dwell_s,
        cycle_s,
        length_m,
    }
}

/// Total lateness of a timetable against the battery deadlines.
fn lateness(route: &ChargerRoute, profile: &EnergyProfile) -> f64 {
    let mut late = 0.0;
    for (k, &p) in route.posts.iter().enumerate() {
        let window = profile.window_s[p];
        if window.is_infinite() {
            continue;
        }
        if route.cycle_s.is_finite() {
            late += (route.arrival_s[k] - window).max(0.0);
            late += (route.cycle_s - window).max(0.0);
        } else {
            // Overloaded charger: charge the full deadline as lateness
            // so the search still prefers saving the slack posts.
            late += window;
        }
    }
    late
}

/// Posts on `route` that miss their deadline (first arrival or
/// steady-state period exceeds the battery window).
fn violations(route: &ChargerRoute, profile: &EnergyProfile) -> Vec<usize> {
    route
        .posts
        .iter()
        .enumerate()
        .filter_map(|(k, &p)| {
            let window = profile.window_s[p];
            if window.is_infinite() {
                return None;
            }
            let late = !route.cycle_s.is_finite()
                || route.arrival_s[k] > window + DEADLINE_EPS
                || route.cycle_s > window + DEADLINE_EPS;
            late.then_some(p)
        })
        .collect()
}

/// Orders `members` nearest-deadline-first, then runs a deadline-aware
/// 2-opt accepting exchanges that lexicographically reduce
/// (lateness, travel).
fn schedule_route(
    depot: Point,
    posts: &[Point],
    members: &[usize],
    profile: &EnergyProfile,
    spec: &ScenarioSpec,
) -> ChargerRoute {
    // Earliest-deadline-first start: the charger reaches fragile posts
    // before their first-cycle arrival slips past the window.
    let mut order = members.to_vec();
    order.sort_by(|&a, &b| {
        profile.window_s[a]
            .total_cmp(&profile.window_s[b])
            .then_with(|| a.cmp(&b))
    });
    let n = order.len();
    if n >= 3 {
        let score = |ord: &[usize]| {
            let route = timetable(depot, posts, ord, profile, spec);
            RouteScore {
                lateness: lateness(&route, profile),
                length_m: route.length_m,
            }
        };
        let mut best = score(&order);
        let mut improved = true;
        while improved {
            improved = false;
            for i in 0..n - 1 {
                for j in i + 1..n {
                    order[i..=j].reverse();
                    let cand = score(&order);
                    if cand.better_than(&best) {
                        best = cand;
                        improved = true;
                    } else {
                        order[i..=j].reverse();
                    }
                }
            }
        }
    }
    timetable(depot, posts, &order, profile, spec)
}

/// Plans the charger-fleet timetable for a routed solution under one
/// scenario. Returns `None` for instances without geometry (explicit
/// instances cannot be patrolled spatially).
///
/// The full patrol tour is planned and split among `spec.chargers`
/// exactly as the simulator does, so the timetable and the simulated
/// patrol agree on which charger owns which posts. Each route is then
/// scheduled independently; posts no ordering can save are removed one
/// at a time (tightest deadline first) into a witness set, which a
/// final pass shrinks to inclusion-minimality.
///
/// # Examples
///
/// ```
/// use wrsn_core::{InstanceSampler, ScenarioSpec, Solver};
/// use wrsn_geom::Field;
/// use wrsn_sched::{plan_tour_schedule, SchedTour};
///
/// let inst = InstanceSampler::new(Field::square(150.0), 6, 18).sample(1);
/// let spec = ScenarioSpec { chargers: 2, ..ScenarioSpec::default() };
/// let sol = SchedTour::new(spec.clone()).solve(&inst)?;
/// let schedule = plan_tour_schedule(&inst, &sol, &spec).expect("geometric");
/// assert!(schedule.routes.len() <= 2);
/// # Ok::<(), wrsn_core::SolveError>(())
/// ```
#[must_use]
pub fn plan_tour_schedule(
    instance: &Instance,
    solution: &Solution,
    spec: &ScenarioSpec,
) -> Option<TourSchedule> {
    let geo = instance.geometry()?;
    let profile = EnergyProfile::new(
        instance,
        solution.deployment().counts(),
        solution.tree(),
        spec,
    );
    let index_of = |pt: Point, used: &mut [bool]| -> usize {
        let p = geo
            .posts
            .iter()
            .enumerate()
            .position(|(i, p)| {
                !used[i] && p.x.to_bits() == pt.x.to_bits() && p.y.to_bits() == pt.y.to_bits()
            })
            .expect("tour stops are instance posts");
        used[p] = true;
        p
    };
    let full = PatrolTour::plan(geo.base_station, geo.posts.clone());
    let mut used = vec![false; geo.posts.len()];
    let mut routes = Vec::new();
    let mut infeasible = Vec::new();
    for sub in full.split(spec.chargers as usize) {
        let members: Vec<usize> = sub
            .stops_in_order()
            .into_iter()
            .map(|pt| index_of(pt, &mut used))
            .collect();
        // Peel off unsavable posts, tightest deadline first, until the
        // remaining route schedules cleanly.
        let mut active = members;
        let mut dropped: Vec<usize> = Vec::new();
        let mut route = schedule_route(geo.base_station, &geo.posts, &active, &profile, spec);
        loop {
            let bad = violations(&route, &profile);
            if bad.is_empty() {
                break;
            }
            let worst = bad
                .into_iter()
                .min_by(|&a, &b| {
                    profile.window_s[a]
                        .total_cmp(&profile.window_s[b])
                        .then_with(|| a.cmp(&b))
                })
                .expect("non-empty violation set");
            active.retain(|&p| p != worst);
            dropped.push(worst);
            route = schedule_route(geo.base_station, &geo.posts, &active, &profile, spec);
        }
        // Minimality: re-admit any dropped post the final route can in
        // fact absorb (peeling order is greedy, not clairvoyant).
        dropped.sort_unstable();
        for &p in &dropped {
            let mut trial = active.clone();
            trial.push(p);
            let cand = schedule_route(geo.base_station, &geo.posts, &trial, &profile, spec);
            if violations(&cand, &profile).is_empty() {
                active = trial;
                route = cand;
            } else {
                infeasible.push(p);
            }
        }
        if !route.posts.is_empty() {
            routes.push(route);
        }
    }
    infeasible.sort_unstable();
    let visit_order = routes.iter().flat_map(|r| r.posts.clone()).collect();
    Some(TourSchedule {
        routes,
        deadline_s: profile.window_s,
        infeasible,
        visit_order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrsn_core::{Idb, InstanceBuilder, InstanceSampler};
    use wrsn_energy::Energy;
    use wrsn_geom::Field;

    fn relaxed_spec() -> ScenarioSpec {
        // Generous batteries and a fast charger: everything feasible.
        ScenarioSpec {
            battery_j: 100.0,
            charger_speed_mps: 20.0,
            charger_power_w: 50.0,
            ..ScenarioSpec::default()
        }
    }

    #[test]
    fn solves_with_exact_budget_and_valid_deployment() {
        let inst = InstanceSampler::new(Field::square(200.0), 8, 20).sample(3);
        let sol = SchedTour::default().solve(&inst).unwrap();
        assert!(sol.deployment().is_valid_for(&inst));
        assert_eq!(sol.deployment().total(), 20);
        assert_eq!(sol.algorithm(), "SchedTour");
    }

    #[test]
    fn deadline_balancing_widens_the_worst_window() {
        let inst = InstanceSampler::new(Field::square(250.0), 10, 30).sample(7);
        let spec = ScenarioSpec::default();
        let sched = SchedTour::new(spec.clone()).solve(&inst).unwrap();
        let idb = Idb::new(1).solve(&inst).unwrap();
        let min_window = |sol: &Solution| {
            let profile = EnergyProfile::new(&inst, sol.deployment().counts(), sol.tree(), &spec);
            profile.min_window(&(0..10).collect::<Vec<_>>())
        };
        // Spending spares on deadlines must not lose to the cost-greedy
        // allocation on its own objective.
        assert!(min_window(&sched) >= min_window(&idb) * 0.999);
    }

    #[test]
    fn respects_cap() {
        let inst = InstanceSampler::new(Field::square(150.0), 4, 8)
            .max_nodes_per_post(2)
            .sample(2);
        let sol = SchedTour::default().solve(&inst).unwrap();
        assert_eq!(sol.deployment().counts(), &[2, 2, 2, 2]);
    }

    #[test]
    fn schedule_is_none_without_geometry() {
        let e = Energy::from_njoules(4.0);
        let inst = InstanceBuilder::new(2, 4)
            .uplink(0, 2, e)
            .uplink(1, 0, e)
            .build()
            .unwrap();
        let sol = SchedTour::default().solve(&inst).unwrap();
        assert!(plan_tour_schedule(&inst, &sol, &ScenarioSpec::default()).is_none());
    }

    #[test]
    fn relaxed_scenario_schedules_every_post_feasibly() {
        let inst = InstanceSampler::new(Field::square(200.0), 10, 25).sample(5);
        let spec = relaxed_spec();
        let sol = SchedTour::new(spec.clone()).solve(&inst).unwrap();
        let schedule = plan_tour_schedule(&inst, &sol, &spec).unwrap();
        assert!(schedule.is_feasible(), "{:?}", schedule.infeasible);
        let mut seen: Vec<usize> = schedule.visit_order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        for route in &schedule.routes {
            assert!(route.cycle_s.is_finite());
            assert_eq!(route.posts.len(), route.arrival_s.len());
            assert_eq!(route.posts.len(), route.dwell_s.len());
            // Arrivals are ordered and fit inside one cycle.
            let mut last = 0.0;
            for (&a, &d) in route.arrival_s.iter().zip(&route.dwell_s) {
                assert!(a >= last);
                last = a + d;
            }
            assert!(route.cycle_s + 1e-9 >= last);
        }
    }

    #[test]
    fn dwell_times_replace_one_cycle_of_drain() {
        let inst = InstanceSampler::new(Field::square(150.0), 6, 15).sample(9);
        let spec = relaxed_spec();
        let sol = SchedTour::new(spec.clone()).solve(&inst).unwrap();
        let schedule = plan_tour_schedule(&inst, &sol, &spec).unwrap();
        let profile = EnergyProfile::new(&inst, sol.deployment().counts(), sol.tree(), &spec);
        for route in &schedule.routes {
            for (k, &p) in route.posts.iter().enumerate() {
                let delivered = route.dwell_s[k] * spec.charger_power_w;
                let drained = profile.demand_w[p] * route.cycle_s;
                assert!(
                    (delivered - drained).abs() <= 1e-6 * drained.max(1e-12),
                    "post {p}: delivered {delivered} vs drained {drained}"
                );
            }
        }
    }

    #[test]
    fn starved_scenario_reports_a_minimal_witness_set() {
        // Tiny batteries and a crawling charger: some posts must fail.
        let inst = InstanceSampler::new(Field::square(300.0), 12, 24).sample(11);
        let spec = ScenarioSpec {
            battery_j: 0.002,
            charger_speed_mps: 0.3,
            charger_power_w: 1.0,
            ..ScenarioSpec::default()
        };
        let sol = SchedTour::new(spec.clone()).solve(&inst).unwrap();
        let schedule = plan_tour_schedule(&inst, &sol, &spec).unwrap();
        assert!(!schedule.is_feasible(), "expected an infeasible scenario");
        // Witnesses are sorted, unique, and absent from every route.
        let w = &schedule.infeasible;
        assert!(w.windows(2).all(|ab| ab[0] < ab[1]));
        for route in &schedule.routes {
            for p in &route.posts {
                assert!(!w.contains(p));
            }
        }
        // Scheduled + witnesses cover every post exactly once.
        let mut all: Vec<usize> = schedule.visit_order.clone();
        all.extend(w.iter().copied());
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<_>>());
        // Remaining routes are feasible (windows hold).
        let profile = EnergyProfile::new(&inst, sol.deployment().counts(), sol.tree(), &spec);
        for route in &schedule.routes {
            assert!(violations(route, &profile).is_empty());
        }
    }

    #[test]
    fn more_chargers_never_hurt_feasibility() {
        let inst = InstanceSampler::new(Field::square(300.0), 10, 20).sample(4);
        let base = ScenarioSpec {
            battery_j: 0.02,
            charger_speed_mps: 2.0,
            ..ScenarioSpec::default()
        };
        let sol = SchedTour::new(base.clone()).solve(&inst).unwrap();
        let mut last = usize::MAX;
        for chargers in [1u32, 2, 4] {
            let spec = ScenarioSpec {
                chargers,
                ..base.clone()
            };
            let schedule = plan_tour_schedule(&inst, &sol, &spec).unwrap();
            assert!(
                schedule.infeasible.len() <= last,
                "{chargers} chargers left {} witnesses, previous fleet left {last}",
                schedule.infeasible.len()
            );
            last = schedule.infeasible.len();
        }
    }

    #[test]
    fn schedule_is_deterministic() {
        let inst = InstanceSampler::new(Field::square(250.0), 9, 18).sample(6);
        let spec = ScenarioSpec {
            chargers: 2,
            ..ScenarioSpec::default()
        };
        let sol = SchedTour::new(spec.clone()).solve(&inst).unwrap();
        let a = plan_tour_schedule(&inst, &sol, &spec).unwrap();
        let b = plan_tour_schedule(&inst, &sol, &spec).unwrap();
        assert_eq!(a, b);
    }
}

//! Shared per-post energy bookkeeping for the scheduling solvers.
//!
//! Every charging-scenario solver asks the same two questions about a
//! routed deployment: *how fast does each post drain* (the battery
//! deadline a charger must beat) and *how much charger output does each
//! post need* (the dwell/duty a charger must supply). [`EnergyProfile`]
//! answers both once so the tour scheduler, the placement solver, and
//! the bi-level annealer cannot drift apart on units.

use wrsn_core::{Instance, RoutingTree, ScenarioSpec};

/// Per-post drain rates and charger-side demands for one routed
/// deployment under one scenario.
#[derive(Debug, Clone)]
pub(crate) struct EnergyProfile {
    /// Charger output power each post needs in watts: consumed power
    /// divided by the post's charging efficiency at its node count.
    pub demand_w: Vec<f64>,
    /// Battery deadline per post in seconds: how long the pooled
    /// battery lasts from full with no recharging. Infinite for posts
    /// that consume nothing.
    pub window_s: Vec<f64>,
    /// Consumed (node-side) power per post in watts.
    pub consumed_w: Vec<f64>,
}

impl EnergyProfile {
    /// Profiles `tree` routed over `counts` nodes per post.
    pub(crate) fn new(
        instance: &Instance,
        counts: &[u32],
        tree: &RoutingTree,
        spec: &ScenarioSpec,
    ) -> Self {
        let per_bit = tree.per_post_energy(instance);
        let n = instance.num_posts();
        let mut demand_w = Vec::with_capacity(n);
        let mut window_s = Vec::with_capacity(n);
        let mut consumed_w = Vec::with_capacity(n);
        for p in 0..n {
            let per_round_j =
                (per_bit[p] * spec.bits_per_report as f64 + instance.sensing_energy(p)).as_joules();
            let watts = per_round_j / spec.round_interval_s;
            consumed_w.push(watts);
            demand_w.push(watts / instance.charge_efficiency(counts[p]));
            let pool_j = spec.battery_j * f64::from(counts[p]);
            window_s.push(if watts > 0.0 {
                pool_j / watts
            } else {
                f64::INFINITY
            });
        }
        EnergyProfile {
            demand_w,
            window_s,
            consumed_w,
        }
    }

    /// The tightest battery deadline across `posts`, in seconds.
    #[cfg(test)]
    pub(crate) fn min_window(&self, posts: &[usize]) -> f64 {
        posts
            .iter()
            .map(|&p| self.window_s[p])
            .fold(f64::INFINITY, f64::min)
    }
}

//! Property tests for the SAT substrate.

use proptest::prelude::*;
use wrsn_sat::{planted_3sat, random_3sat, CnfFormula, DpllSolver, Lit};

/// An arbitrary small formula as (num_vars, clause literal codes).
fn arb_formula() -> impl Strategy<Value = CnfFormula> {
    (2usize..6).prop_flat_map(|nv| {
        let lit = (1..=nv, any::<bool>());
        let clause = proptest::collection::vec(lit, 1..4);
        proptest::collection::vec(clause, 0..8).prop_map(move |clauses| {
            let mut f = CnfFormula::new(nv);
            for c in clauses {
                let lits: Vec<Lit> = c
                    .into_iter()
                    .map(|(v, pos)| if pos { Lit::pos(v) } else { Lit::neg(v) })
                    .collect();
                f.add_clause(lits).expect("valid clause");
            }
            f
        })
    })
}

fn brute_force_satisfiable(f: &CnfFormula) -> bool {
    let n = f.num_vars();
    (0u32..(1 << n)).any(|bits| {
        let a: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
        f.evaluate(&a)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// DPLL agrees with brute-force enumeration on every small formula,
    /// and returned models actually satisfy.
    #[test]
    fn dpll_matches_bruteforce(f in arb_formula()) {
        let solver = DpllSolver::new();
        let model = solver.solve(&f);
        prop_assert_eq!(model.is_some(), brute_force_satisfiable(&f));
        if let Some(m) = model {
            prop_assert!(f.evaluate(&m));
        }
    }

    /// DIMACS serialization round-trips exactly.
    #[test]
    fn dimacs_roundtrip(f in arb_formula()) {
        let text = f.to_dimacs();
        let parsed = CnfFormula::parse_dimacs(&text).expect("own output parses");
        prop_assert_eq!(parsed, f);
    }

    /// Negation is an involution and flips evaluation.
    #[test]
    fn literal_negation(v in 1usize..50, pos in any::<bool>(), val in any::<bool>()) {
        let l = if pos { Lit::pos(v) } else { Lit::neg(v) };
        prop_assert_eq!(!!l, l);
        let mut assignment = vec![false; v];
        assignment[v - 1] = val;
        prop_assert_eq!(l.eval(&assignment), !(!l).eval(&assignment));
    }

    /// Planted generators always produce formulas their plant satisfies.
    #[test]
    fn planted_instances_satisfied_by_plant(
        nv in 3usize..10, nc in 1usize..20, seed in any::<u64>()
    ) {
        let (f, plant) = planted_3sat(nv, nc, seed);
        prop_assert!(f.evaluate(&plant));
        prop_assert!(f.is_3sat());
        prop_assert_eq!(f.num_clauses(), nc);
    }

    /// Random 3-SAT generators are deterministic and well-shaped.
    #[test]
    fn random_3sat_shape(nv in 3usize..10, nc in 0usize..20, seed in any::<u64>()) {
        let f = random_3sat(nv, nc, seed);
        prop_assert_eq!(f.clone(), random_3sat(nv, nc, seed));
        prop_assert!(f.is_3sat());
        for c in f.clauses() {
            let mut vars: Vec<usize> = c.lits().iter().map(|l| l.var()).collect();
            vars.sort_unstable();
            vars.dedup();
            prop_assert_eq!(vars.len(), 3);
        }
    }
}

//! A complete DPLL satisfiability solver.

use crate::{CnfFormula, Lit};
use std::fmt;

/// A DPLL SAT solver with unit propagation and pure-literal elimination.
///
/// Complete (always terminates with the correct answer) and comfortably
/// fast for the formula sizes the NP-completeness reduction tests use
/// (tens of variables). Not intended to compete with CDCL solvers.
///
/// # Examples
///
/// ```
/// use wrsn_sat::{CnfFormula, DpllSolver, Lit};
///
/// let mut f = CnfFormula::new(1);
/// f.add_clause([Lit::pos(1)]).unwrap();
/// f.add_clause([Lit::neg(1)]).unwrap();
/// assert_eq!(DpllSolver::new().solve(&f), None); // contradiction
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DpllSolver {
    _private: (),
}

impl DpllSolver {
    /// Creates a solver.
    #[must_use]
    pub fn new() -> Self {
        DpllSolver::default()
    }

    /// Searches for a satisfying assignment; returns one (indexed by
    /// variable, `model[i]` = value of variable `i + 1`) or `None` if the
    /// formula is unsatisfiable. Variables not constrained by any clause
    /// default to `false`.
    #[must_use]
    pub fn solve(&self, formula: &CnfFormula) -> Option<Vec<bool>> {
        let mut assignment: Vec<Option<bool>> = vec![None; formula.num_vars()];
        if Self::search(formula, &mut assignment) {
            Some(assignment.into_iter().map(|v| v.unwrap_or(false)).collect())
        } else {
            None
        }
    }

    /// `true` iff the formula is satisfiable.
    #[must_use]
    pub fn is_satisfiable(&self, formula: &CnfFormula) -> bool {
        self.solve(formula).is_some()
    }

    fn search(formula: &CnfFormula, assignment: &mut Vec<Option<bool>>) -> bool {
        // Unit propagation + pure literal elimination to fixpoint.
        let trail_start = Self::snapshot(assignment);
        loop {
            match Self::propagate_once(formula, assignment) {
                Propagation::Conflict => {
                    Self::restore(assignment, &trail_start);
                    return false;
                }
                Propagation::Progress => continue,
                Propagation::Fixpoint => break,
            }
        }
        // Pick the first unassigned variable appearing in an unsatisfied
        // clause; if none, all clauses are satisfied.
        let branch_var = formula
            .clauses()
            .iter()
            .filter(|c| !Self::clause_satisfied(c.lits(), assignment))
            .flat_map(|c| c.lits())
            .find(|l| assignment[l.var() - 1].is_none())
            .map(|l| l.var());
        let Some(var) = branch_var else {
            return true; // every clause satisfied
        };
        for value in [true, false] {
            assignment[var - 1] = Some(value);
            if Self::search(formula, assignment) {
                return true;
            }
            assignment[var - 1] = None;
        }
        Self::restore(assignment, &trail_start);
        false
    }

    fn clause_satisfied(lits: &[Lit], assignment: &[Option<bool>]) -> bool {
        lits.iter()
            .any(|l| assignment[l.var() - 1] == Some(l.is_positive()))
    }

    fn propagate_once(formula: &CnfFormula, assignment: &mut [Option<bool>]) -> Propagation {
        let mut progress = false;
        // Unit propagation.
        for clause in formula.clauses() {
            if Self::clause_satisfied(clause.lits(), assignment) {
                continue;
            }
            let unassigned: Vec<Lit> = clause
                .lits()
                .iter()
                .copied()
                .filter(|l| assignment[l.var() - 1].is_none())
                .collect();
            match unassigned.len() {
                0 => return Propagation::Conflict,
                1 => {
                    let l = unassigned[0];
                    assignment[l.var() - 1] = Some(l.is_positive());
                    progress = true;
                }
                _ => {}
            }
        }
        // Pure-literal elimination.
        let n = assignment.len();
        let mut pos = vec![false; n];
        let mut neg = vec![false; n];
        for clause in formula.clauses() {
            if Self::clause_satisfied(clause.lits(), assignment) {
                continue;
            }
            for l in clause.lits() {
                if assignment[l.var() - 1].is_none() {
                    if l.is_positive() {
                        pos[l.var() - 1] = true;
                    } else {
                        neg[l.var() - 1] = true;
                    }
                }
            }
        }
        for v in 0..n {
            if assignment[v].is_none() && (pos[v] ^ neg[v]) {
                assignment[v] = Some(pos[v]);
                progress = true;
            }
        }
        if progress {
            Propagation::Progress
        } else {
            Propagation::Fixpoint
        }
    }

    fn snapshot(assignment: &[Option<bool>]) -> Vec<Option<bool>> {
        assignment.to_vec()
    }

    fn restore(assignment: &mut [Option<bool>], snapshot: &[Option<bool>]) {
        assignment.copy_from_slice(snapshot);
    }
}

impl fmt::Display for DpllSolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dpll solver")
    }
}

#[derive(Debug, PartialEq, Eq)]
enum Propagation {
    Conflict,
    Progress,
    Fixpoint,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clause(f: &mut CnfFormula, lits: &[i32]) {
        f.add_clause(lits.iter().map(|&c| Lit::from_dimacs(c)))
            .unwrap();
    }

    #[test]
    fn trivially_satisfiable() {
        let mut f = CnfFormula::new(1);
        clause(&mut f, &[1]);
        let model = DpllSolver::new().solve(&f).unwrap();
        assert!(f.evaluate(&model));
        assert!(model[0]);
    }

    #[test]
    fn direct_contradiction() {
        let mut f = CnfFormula::new(1);
        clause(&mut f, &[1]);
        clause(&mut f, &[-1]);
        assert!(!DpllSolver::new().is_satisfiable(&f));
    }

    #[test]
    fn empty_formula_satisfiable() {
        assert!(DpllSolver::new().is_satisfiable(&CnfFormula::new(5)));
    }

    #[test]
    fn chain_of_implications() {
        // x1 & (x1 -> x2) & (x2 -> x3) & (x3 -> x4)
        let mut f = CnfFormula::new(4);
        clause(&mut f, &[1]);
        clause(&mut f, &[-1, 2]);
        clause(&mut f, &[-2, 3]);
        clause(&mut f, &[-3, 4]);
        let model = DpllSolver::new().solve(&f).unwrap();
        assert_eq!(model, vec![true; 4]);
    }

    #[test]
    fn unsat_pigeonhole_2_into_1() {
        // p1 and p2 both must hold slot 1, but not together.
        let mut f = CnfFormula::new(2);
        clause(&mut f, &[1]);
        clause(&mut f, &[2]);
        clause(&mut f, &[-1, -2]);
        assert!(!DpllSolver::new().is_satisfiable(&f));
    }

    #[test]
    fn unsat_full_enumeration_of_two_vars() {
        // All four clauses over 2 variables: no assignment survives.
        let mut f = CnfFormula::new(2);
        clause(&mut f, &[1, 2]);
        clause(&mut f, &[1, -2]);
        clause(&mut f, &[-1, 2]);
        clause(&mut f, &[-1, -2]);
        assert!(!DpllSolver::new().is_satisfiable(&f));
    }

    #[test]
    fn model_satisfies_3sat_instance() {
        let mut f = CnfFormula::new(4);
        clause(&mut f, &[1, -2, 3]);
        clause(&mut f, &[-1, 2, -4]);
        clause(&mut f, &[2, 3, 4]);
        clause(&mut f, &[-1, -3, -4]);
        let model = DpllSolver::new().solve(&f).unwrap();
        assert!(f.evaluate(&model));
    }

    #[test]
    fn exhaustive_check_against_bruteforce_small() {
        // Every 3-var formula with 4 fixed clauses: solver agrees with
        // brute force on satisfiability.
        let clauses_pool: Vec<Vec<i32>> = vec![
            vec![1, 2, 3],
            vec![-1, -2, -3],
            vec![1, -2, 3],
            vec![-1, 2, -3],
            vec![1, 2, -3],
            vec![-1, -2, 3],
        ];
        // Try all subsets of up to 6 clauses.
        for mask in 0u32..(1 << clauses_pool.len()) {
            let mut f = CnfFormula::new(3);
            for (i, c) in clauses_pool.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    clause(&mut f, c);
                }
            }
            let brute = (0u8..8).any(|bits| {
                let a = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
                f.evaluate(&a)
            });
            let solver = DpllSolver::new().solve(&f);
            assert_eq!(solver.is_some(), brute, "mask {mask:b}");
            if let Some(model) = solver {
                assert!(f.evaluate(&model), "mask {mask:b}");
            }
        }
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", DpllSolver::new()), "dpll solver");
    }
}

//! Random 3-SAT instance generators.

use crate::{CnfFormula, Lit};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generates a uniformly random 3-SAT formula with `num_vars` variables
/// and `num_clauses` clauses: each clause picks three distinct variables
/// and negates each with probability ½. Deterministic in `seed`.
///
/// Around the classic threshold `num_clauses / num_vars ≈ 4.27` these
/// become hard; the reduction tests stay well below it.
///
/// # Panics
///
/// Panics if `num_vars < 3`.
///
/// # Examples
///
/// ```
/// use wrsn_sat::random_3sat;
/// let f = random_3sat(10, 20, 42);
/// assert_eq!(f.num_vars(), 10);
/// assert_eq!(f.num_clauses(), 20);
/// assert!(f.is_3sat());
/// ```
#[must_use]
pub fn random_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> CnfFormula {
    assert!(num_vars >= 3, "3-SAT needs at least 3 variables");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut formula = CnfFormula::new(num_vars);
    let mut vars: Vec<usize> = (1..=num_vars).collect();
    for _ in 0..num_clauses {
        vars.shuffle(&mut rng);
        let lits = vars[..3].iter().map(|&v| {
            if rng.random::<bool>() {
                Lit::pos(v)
            } else {
                Lit::neg(v)
            }
        });
        formula
            .add_clause(lits)
            .expect("generated clauses are valid by construction");
    }
    formula
}

/// Generates a random 3-SAT formula that is **guaranteed satisfiable**: a
/// hidden assignment is drawn first and every clause is forced to contain
/// at least one literal it satisfies. Returns the formula together with
/// the planted assignment.
///
/// # Panics
///
/// Panics if `num_vars < 3`.
///
/// # Examples
///
/// ```
/// use wrsn_sat::planted_3sat;
/// let (f, plant) = planted_3sat(12, 30, 7);
/// assert!(f.evaluate(&plant));
/// ```
#[must_use]
pub fn planted_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> (CnfFormula, Vec<bool>) {
    assert!(num_vars >= 3, "3-SAT needs at least 3 variables");
    let mut rng = SmallRng::seed_from_u64(seed);
    let plant: Vec<bool> = (0..num_vars).map(|_| rng.random()).collect();
    let mut formula = CnfFormula::new(num_vars);
    let mut vars: Vec<usize> = (1..=num_vars).collect();
    for _ in 0..num_clauses {
        vars.shuffle(&mut rng);
        let chosen = &vars[..3];
        // Force one randomly chosen slot to agree with the plant.
        let honest = rng.random_range(0..3);
        let lits = chosen.iter().enumerate().map(|(i, &v)| {
            let positive = if i == honest {
                plant[v - 1]
            } else {
                rng.random()
            };
            if positive {
                Lit::pos(v)
            } else {
                Lit::neg(v)
            }
        });
        formula
            .add_clause(lits)
            .expect("generated clauses are valid by construction");
    }
    (formula, plant)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DpllSolver;

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(random_3sat(8, 15, 1), random_3sat(8, 15, 1));
        assert_ne!(random_3sat(8, 15, 1), random_3sat(8, 15, 2));
    }

    #[test]
    fn random_clauses_use_distinct_variables() {
        let f = random_3sat(5, 40, 3);
        for c in f.clauses() {
            let mut vars: Vec<usize> = c.lits().iter().map(|l| l.var()).collect();
            vars.sort_unstable();
            vars.dedup();
            assert_eq!(vars.len(), 3, "clause {c} repeats a variable");
        }
    }

    #[test]
    fn planted_formulas_are_satisfiable() {
        for seed in 0..10 {
            let (f, plant) = planted_3sat(10, 25, seed);
            assert!(f.evaluate(&plant), "plant violated for seed {seed}");
            assert!(DpllSolver::new().is_satisfiable(&f));
        }
    }

    #[test]
    fn solver_handles_random_instances_near_threshold() {
        // Low ratio: almost surely satisfiable; just exercise the solver.
        for seed in 0..5 {
            let f = random_3sat(15, 30, seed);
            if let Some(model) = DpllSolver::new().solve(&f) {
                assert!(f.evaluate(&model));
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn too_few_variables_rejected() {
        let _ = random_3sat(2, 1, 0);
    }
}

//! # wrsn-sat — 3-CNF formulas and a DPLL solver
//!
//! The paper proves the joint deployment/routing problem NP-complete by
//! reduction from 3-CNF SAT (Section IV). This crate supplies the SAT side
//! of that story so the reduction can be exercised end-to-end in code:
//!
//! - [`CnfFormula`] / [`Clause`] / [`Lit`] — formula representation with
//!   assignment evaluation,
//! - [`DpllSolver`] — a complete solver (unit propagation, pure-literal
//!   elimination, first-unassigned branching),
//! - [`random_3sat`] / [`planted_3sat`] — instance generators,
//! - DIMACS CNF import/export ([`CnfFormula::to_dimacs`],
//!   [`CnfFormula::parse_dimacs`]).
//!
//! # Examples
//!
//! ```
//! use wrsn_sat::{CnfFormula, DpllSolver, Lit};
//!
//! // (x1 ∨ x2) ∧ (¬x1 ∨ x2) ∧ (¬x2 ∨ x3)
//! let mut f = CnfFormula::new(3);
//! f.add_clause([Lit::pos(1), Lit::pos(2)])?;
//! f.add_clause([Lit::neg(1), Lit::pos(2)])?;
//! f.add_clause([Lit::neg(2), Lit::pos(3)])?;
//! let model = DpllSolver::new().solve(&f).expect("satisfiable");
//! assert!(f.evaluate(&model));
//! # Ok::<(), wrsn_sat::FormulaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dimacs;
mod formula;
mod generate;
mod solver;

pub use dimacs::ParseDimacsError;
pub use formula::{Clause, CnfFormula, FormulaError, Lit};
pub use generate::{planted_3sat, random_3sat};
pub use solver::DpllSolver;

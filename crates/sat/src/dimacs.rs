//! DIMACS CNF import/export.

use crate::{CnfFormula, Lit};
use std::error::Error;
use std::fmt;

/// Error parsing a DIMACS CNF document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseDimacsError {
    /// No `p cnf <vars> <clauses>` header was found before the clauses.
    MissingHeader,
    /// The header line was malformed.
    BadHeader(String),
    /// A token could not be parsed as an integer literal.
    BadLiteral(String),
    /// A clause referenced a variable beyond the header's count.
    VariableOutOfRange(usize),
    /// The document ended inside an unterminated clause.
    UnterminatedClause,
    /// The clause count did not match the header.
    ClauseCountMismatch {
        /// Count declared in the header.
        declared: usize,
        /// Count actually present.
        found: usize,
    },
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseDimacsError::MissingHeader => write!(f, "missing `p cnf` header"),
            ParseDimacsError::BadHeader(l) => write!(f, "malformed header line: {l:?}"),
            ParseDimacsError::BadLiteral(t) => write!(f, "invalid literal token: {t:?}"),
            ParseDimacsError::VariableOutOfRange(v) => {
                write!(f, "variable x{v} exceeds header count")
            }
            ParseDimacsError::UnterminatedClause => write!(f, "unterminated final clause"),
            ParseDimacsError::ClauseCountMismatch { declared, found } => {
                write!(f, "header declares {declared} clauses but {found} found")
            }
        }
    }
}

impl Error for ParseDimacsError {}

impl CnfFormula {
    /// Serializes the formula in DIMACS CNF format.
    ///
    /// ```
    /// use wrsn_sat::{CnfFormula, Lit};
    /// let mut f = CnfFormula::new(2);
    /// f.add_clause([Lit::pos(1), Lit::neg(2)]).unwrap();
    /// assert_eq!(f.to_dimacs(), "p cnf 2 1\n1 -2 0\n");
    /// ```
    #[must_use]
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars(), self.num_clauses());
        for c in self.clauses() {
            for l in c.lits() {
                out.push_str(&l.to_dimacs().to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }

    /// Parses a DIMACS CNF document (comment lines starting with `c` are
    /// skipped; clauses may span lines).
    ///
    /// # Errors
    ///
    /// Returns a [`ParseDimacsError`] describing the first problem
    /// encountered.
    pub fn parse_dimacs(text: &str) -> Result<CnfFormula, ParseDimacsError> {
        let mut header: Option<(usize, usize)> = None;
        let mut formula = CnfFormula::new(0);
        let mut current: Vec<Lit> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if line.starts_with('p') {
                let parts: Vec<&str> = line.split_whitespace().collect();
                let parsed = (parts.len() == 4 && parts[1] == "cnf")
                    .then(|| {
                        Some((
                            parts[2].parse::<usize>().ok()?,
                            parts[3].parse::<usize>().ok()?,
                        ))
                    })
                    .flatten();
                match parsed {
                    Some((v, c)) => {
                        header = Some((v, c));
                        formula = CnfFormula::new(v);
                    }
                    None => return Err(ParseDimacsError::BadHeader(line.to_string())),
                }
                continue;
            }
            let (num_vars, _) = header.ok_or(ParseDimacsError::MissingHeader)?;
            for tok in line.split_whitespace() {
                let code: i32 = tok
                    .parse()
                    .map_err(|_| ParseDimacsError::BadLiteral(tok.to_string()))?;
                if code == 0 {
                    formula
                        .add_clause(current.drain(..))
                        .map_err(|_| ParseDimacsError::UnterminatedClause)?;
                } else {
                    let lit = Lit::from_dimacs(code);
                    if lit.var() > num_vars {
                        return Err(ParseDimacsError::VariableOutOfRange(lit.var()));
                    }
                    current.push(lit);
                }
            }
        }
        if !current.is_empty() {
            return Err(ParseDimacsError::UnterminatedClause);
        }
        let (_, declared) = header.ok_or(ParseDimacsError::MissingHeader)?;
        if declared != formula.num_clauses() {
            return Err(ParseDimacsError::ClauseCountMismatch {
                declared,
                found: formula.num_clauses(),
            });
        }
        Ok(formula)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut f = CnfFormula::new(3);
        f.add_clause([Lit::pos(1), Lit::neg(2), Lit::pos(3)])
            .unwrap();
        f.add_clause([Lit::neg(1), Lit::neg(3)]).unwrap();
        let parsed = CnfFormula::parse_dimacs(&f.to_dimacs()).unwrap();
        assert_eq!(parsed, f);
    }

    #[test]
    fn parses_comments_and_multiline_clauses() {
        let text = "c a comment\np cnf 3 2\n1 -2\n3 0\n-1 -3 0\n";
        let f = CnfFormula::parse_dimacs(text).unwrap();
        assert_eq!(f.num_vars(), 3);
        assert_eq!(f.num_clauses(), 2);
        assert_eq!(f.clauses()[0].lits().len(), 3);
    }

    #[test]
    fn missing_header() {
        assert_eq!(
            CnfFormula::parse_dimacs("1 2 0\n"),
            Err(ParseDimacsError::MissingHeader)
        );
    }

    #[test]
    fn bad_header() {
        assert!(matches!(
            CnfFormula::parse_dimacs("p cnf x y\n"),
            Err(ParseDimacsError::BadHeader(_))
        ));
    }

    #[test]
    fn bad_literal() {
        assert!(matches!(
            CnfFormula::parse_dimacs("p cnf 1 1\n1 foo 0\n"),
            Err(ParseDimacsError::BadLiteral(_))
        ));
    }

    #[test]
    fn out_of_range_variable() {
        assert_eq!(
            CnfFormula::parse_dimacs("p cnf 1 1\n2 0\n"),
            Err(ParseDimacsError::VariableOutOfRange(2))
        );
    }

    #[test]
    fn unterminated_clause() {
        assert_eq!(
            CnfFormula::parse_dimacs("p cnf 2 1\n1 2\n"),
            Err(ParseDimacsError::UnterminatedClause)
        );
    }

    #[test]
    fn clause_count_mismatch() {
        assert_eq!(
            CnfFormula::parse_dimacs("p cnf 1 2\n1 0\n"),
            Err(ParseDimacsError::ClauseCountMismatch {
                declared: 2,
                found: 1
            })
        );
    }

    #[test]
    fn error_messages_nonempty() {
        let errors = [
            ParseDimacsError::MissingHeader,
            ParseDimacsError::BadHeader("p".into()),
            ParseDimacsError::BadLiteral("q".into()),
            ParseDimacsError::VariableOutOfRange(3),
            ParseDimacsError::UnterminatedClause,
            ParseDimacsError::ClauseCountMismatch {
                declared: 1,
                found: 2,
            },
        ];
        for e in errors {
            assert!(!format!("{e}").is_empty());
        }
    }
}

//! CNF formula representation.

use std::error::Error;
use std::fmt;

/// A propositional literal: variable `1..=n`, possibly negated.
///
/// Literals use the DIMACS convention internally (a non-zero signed
/// integer whose magnitude is the variable index), which makes I/O and
/// debugging straightforward.
///
/// # Examples
///
/// ```
/// use wrsn_sat::Lit;
/// let a = Lit::pos(3);
/// assert_eq!(a.var(), 3);
/// assert!(a.is_positive());
/// assert_eq!(!a, Lit::neg(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(i32);

impl Lit {
    /// The positive literal of variable `var` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `var == 0` or `var > i32::MAX as usize`.
    #[must_use]
    pub fn pos(var: usize) -> Self {
        Lit(var_to_i32(var))
    }

    /// The negated literal of variable `var` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `var == 0` or `var > i32::MAX as usize`.
    #[must_use]
    pub fn neg(var: usize) -> Self {
        Lit(-var_to_i32(var))
    }

    /// The 1-based variable index.
    #[must_use]
    pub fn var(self) -> usize {
        self.0.unsigned_abs() as usize
    }

    /// `true` for an un-negated literal.
    #[must_use]
    pub fn is_positive(self) -> bool {
        self.0 > 0
    }

    /// The literal's DIMACS integer encoding.
    #[must_use]
    pub fn to_dimacs(self) -> i32 {
        self.0
    }

    /// Builds a literal from its DIMACS encoding.
    ///
    /// # Panics
    ///
    /// Panics if `code == 0`.
    #[must_use]
    pub fn from_dimacs(code: i32) -> Self {
        assert!(
            code != 0,
            "0 is the DIMACS clause terminator, not a literal"
        );
        Lit(code)
    }

    /// Truth value of this literal under `assignment`
    /// (`assignment[var - 1]` is the value of the variable).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than the variable index.
    #[must_use]
    pub fn eval(self, assignment: &[bool]) -> bool {
        assignment[self.var() - 1] == self.is_positive()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(-self.0)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var())
        } else {
            write!(f, "!x{}", self.var())
        }
    }
}

fn var_to_i32(var: usize) -> i32 {
    assert!(var >= 1, "variables are 1-based");
    i32::try_from(var).expect("variable index fits in i32")
}

/// A disjunction of literals.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// The literals of this clause.
    #[must_use]
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// `true` if the clause has no literals (an empty clause is
    /// unsatisfiable).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Truth value under `assignment`.
    #[must_use]
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        self.lits.iter().any(|l| l.eval(assignment))
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

/// Error building a [`CnfFormula`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FormulaError {
    /// A clause referenced a variable above the declared count.
    VariableOutOfRange {
        /// The offending variable.
        var: usize,
        /// The declared variable count.
        num_vars: usize,
    },
    /// A clause was empty.
    EmptyClause,
}

impl fmt::Display for FormulaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormulaError::VariableOutOfRange { var, num_vars } => {
                write!(f, "variable x{var} exceeds declared count {num_vars}")
            }
            FormulaError::EmptyClause => write!(f, "empty clause is trivially unsatisfiable"),
        }
    }
}

impl Error for FormulaError {}

/// A CNF formula: a conjunction of [`Clause`]s over variables `1..=n`.
///
/// # Examples
///
/// ```
/// use wrsn_sat::{CnfFormula, Lit};
/// let mut f = CnfFormula::new(2);
/// f.add_clause([Lit::pos(1), Lit::neg(2)])?;
/// assert!(f.evaluate(&[true, true]));
/// assert!(!f.evaluate(&[false, true]));
/// # Ok::<(), wrsn_sat::FormulaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CnfFormula {
    num_vars: usize,
    clauses: Vec<Clause>,
}

impl CnfFormula {
    /// Creates an empty formula over `num_vars` variables.
    #[must_use]
    pub fn new(num_vars: usize) -> Self {
        CnfFormula {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// The clauses.
    #[must_use]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    #[must_use]
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Appends a clause.
    ///
    /// # Errors
    ///
    /// Returns [`FormulaError::EmptyClause`] for an empty literal list and
    /// [`FormulaError::VariableOutOfRange`] if a literal references a
    /// variable beyond [`CnfFormula::num_vars`].
    pub fn add_clause<I>(&mut self, lits: I) -> Result<(), FormulaError>
    where
        I: IntoIterator<Item = Lit>,
    {
        let lits: Vec<Lit> = lits.into_iter().collect();
        if lits.is_empty() {
            return Err(FormulaError::EmptyClause);
        }
        for l in &lits {
            if l.var() > self.num_vars {
                return Err(FormulaError::VariableOutOfRange {
                    var: l.var(),
                    num_vars: self.num_vars,
                });
            }
        }
        self.clauses.push(Clause { lits });
        Ok(())
    }

    /// Truth value under a full `assignment` (`assignment[i]` is the value
    /// of variable `i + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() < self.num_vars()`.
    #[must_use]
    pub fn evaluate(&self, assignment: &[bool]) -> bool {
        assert!(
            assignment.len() >= self.num_vars,
            "assignment covers {} of {} variables",
            assignment.len(),
            self.num_vars
        );
        self.clauses.iter().all(|c| c.evaluate(assignment))
    }

    /// `true` if every clause has exactly three literals (the shape the
    /// NP-completeness reduction expects).
    #[must_use]
    pub fn is_3sat(&self) -> bool {
        self.clauses.iter().all(|c| c.len() == 3)
    }
}

impl fmt::Display for CnfFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.clauses.is_empty() {
            return write!(f, "(true)");
        }
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_basics() {
        let l = Lit::pos(5);
        assert_eq!(l.var(), 5);
        assert!(l.is_positive());
        assert!(!(!l).is_positive());
        assert_eq!(!!l, l);
        assert_eq!(l.to_dimacs(), 5);
        assert_eq!(Lit::from_dimacs(-7), Lit::neg(7));
    }

    #[test]
    #[should_panic(expected = "1-based")]
    fn variable_zero_rejected() {
        let _ = Lit::pos(0);
    }

    #[test]
    #[should_panic(expected = "terminator")]
    fn dimacs_zero_rejected() {
        let _ = Lit::from_dimacs(0);
    }

    #[test]
    fn literal_eval() {
        let a = [true, false];
        assert!(Lit::pos(1).eval(&a));
        assert!(!Lit::pos(2).eval(&a));
        assert!(Lit::neg(2).eval(&a));
    }

    #[test]
    fn clause_eval_any_semantics() {
        let mut f = CnfFormula::new(2);
        f.add_clause([Lit::pos(1), Lit::pos(2)]).unwrap();
        let c = &f.clauses()[0];
        assert!(c.evaluate(&[true, false]));
        assert!(c.evaluate(&[false, true]));
        assert!(!c.evaluate(&[false, false]));
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
    }

    #[test]
    fn formula_eval_all_semantics() {
        let mut f = CnfFormula::new(2);
        f.add_clause([Lit::pos(1)]).unwrap();
        f.add_clause([Lit::neg(2)]).unwrap();
        assert!(f.evaluate(&[true, false]));
        assert!(!f.evaluate(&[true, true]));
        assert!(!f.evaluate(&[false, false]));
    }

    #[test]
    fn empty_formula_is_true() {
        assert!(CnfFormula::new(3).evaluate(&[false, false, false]));
    }

    #[test]
    fn add_clause_validates() {
        let mut f = CnfFormula::new(1);
        assert_eq!(f.add_clause([]), Err(FormulaError::EmptyClause));
        assert_eq!(
            f.add_clause([Lit::pos(2)]),
            Err(FormulaError::VariableOutOfRange {
                var: 2,
                num_vars: 1
            })
        );
        assert!(f.add_clause([Lit::neg(1)]).is_ok());
        assert_eq!(f.num_clauses(), 1);
    }

    #[test]
    fn is_3sat_detects_shape() {
        let mut f = CnfFormula::new(3);
        f.add_clause([Lit::pos(1), Lit::pos(2), Lit::pos(3)])
            .unwrap();
        assert!(f.is_3sat());
        f.add_clause([Lit::pos(1)]).unwrap();
        assert!(!f.is_3sat());
    }

    #[test]
    fn displays() {
        let mut f = CnfFormula::new(2);
        f.add_clause([Lit::pos(1), Lit::neg(2)]).unwrap();
        assert_eq!(format!("{f}"), "(x1 | !x2)");
        assert_eq!(format!("{}", CnfFormula::new(0)), "(true)");
        let err = FormulaError::EmptyClause;
        assert!(!format!("{err}").is_empty());
    }
}

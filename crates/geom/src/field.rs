//! Deployment fields and post layouts.

use crate::Point;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A rectangular deployment field with the base station at a fixed corner.
///
/// The ICDCS 2010 evaluation uses square fields (`200 m × 200 m` for the
/// optimal-solution comparison, `500 m × 500 m` for the large-scale study)
/// with the base station at the lower-left corner and posts drawn uniformly
/// at random. [`Field::random_posts`] reproduces that; the structured
/// [`Layout`]s support the domain examples (bridges, factory floors).
///
/// # Examples
///
/// ```
/// use wrsn_geom::{Field, Layout};
///
/// let field = Field::new(200.0, 100.0);
/// let posts = field.layout_posts(Layout::Grid { cols: 10, rows: 5 });
/// assert_eq!(posts.len(), 50);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Field {
    width: f64,
    height: f64,
}

impl Field {
    /// Creates a `width × height` meter field.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive and finite.
    #[must_use]
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0 && width.is_finite() && height.is_finite(),
            "field dimensions must be positive and finite, got {width}x{height}"
        );
        Field { width, height }
    }

    /// Creates a square field with the given side length in meters.
    #[must_use]
    pub fn square(side: f64) -> Self {
        Field::new(side, side)
    }

    /// Field width in meters.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Field height in meters.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.height
    }

    /// The base-station location: the lower-left corner, as in the paper.
    #[must_use]
    pub fn base_station(&self) -> Point {
        Point::ORIGIN
    }

    /// Length of the field diagonal — the maximum possible post-to-base
    /// distance, useful for bounding hop counts.
    #[must_use]
    pub fn diagonal(&self) -> f64 {
        Point::ORIGIN.distance(Point::new(self.width, self.height))
    }

    /// Returns `true` if `p` lies inside the field (inclusive of borders).
    #[must_use]
    pub fn contains(&self, p: Point) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// Draws `n` post locations uniformly at random, deterministically from
    /// `seed`. The same `(n, seed)` pair always yields the same posts, which
    /// keeps every experiment in the workspace reproducible.
    ///
    /// ```
    /// use wrsn_geom::Field;
    /// let f = Field::square(100.0);
    /// assert_eq!(f.random_posts(10, 7), f.random_posts(10, 7));
    /// assert_ne!(f.random_posts(10, 7), f.random_posts(10, 8));
    /// ```
    #[must_use]
    pub fn random_posts(&self, n: usize, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point::new(
                    rng.random_range(0.0..=self.width),
                    rng.random_range(0.0..=self.height),
                )
            })
            .collect()
    }

    /// Draws `n` post locations uniformly at random while rejecting any
    /// candidate closer than `min_separation` meters to an already placed
    /// post (simple dart-throwing blue-noise sampling). Returns `None` if a
    /// non-colliding sample cannot be found within a generous retry budget,
    /// which indicates the requested density is infeasible.
    #[must_use]
    pub fn random_posts_separated(
        &self,
        n: usize,
        min_separation: f64,
        seed: u64,
    ) -> Option<Vec<Point>> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut posts: Vec<Point> = Vec::with_capacity(n);
        let budget = 1000usize.saturating_mul(n.max(1));
        let mut attempts = 0usize;
        while posts.len() < n {
            attempts += 1;
            if attempts > budget {
                return None;
            }
            let cand = Point::new(
                rng.random_range(0.0..=self.width),
                rng.random_range(0.0..=self.height),
            );
            if posts.iter().all(|p| p.distance(cand) >= min_separation) {
                posts.push(cand);
            }
        }
        Some(posts)
    }

    /// Generates post locations for a structured [`Layout`].
    ///
    /// All generated posts are clamped to lie inside the field.
    #[must_use]
    pub fn layout_posts(&self, layout: Layout) -> Vec<Point> {
        let posts = match layout {
            Layout::Grid { cols, rows } => self.grid(cols, rows),
            Layout::Line { n } => self.line(n),
            Layout::Clusters {
                centers,
                per_cluster,
                radius,
                seed,
            } => self.clusters(centers, per_cluster, radius, seed),
        };
        posts
            .into_iter()
            .map(|p| Point::new(p.x.clamp(0.0, self.width), p.y.clamp(0.0, self.height)))
            .collect()
    }

    fn grid(&self, cols: usize, rows: usize) -> Vec<Point> {
        let mut out = Vec::with_capacity(cols * rows);
        for r in 0..rows {
            for c in 0..cols {
                // Cell centers, so posts stay off the borders.
                let x = (c as f64 + 0.5) * self.width / cols as f64;
                let y = (r as f64 + 0.5) * self.height / rows as f64;
                out.push(Point::new(x, y));
            }
        }
        out
    }

    fn line(&self, n: usize) -> Vec<Point> {
        let y = self.height / 2.0;
        (0..n)
            .map(|i| {
                let t = (i as f64 + 1.0) / (n as f64 + 1.0);
                Point::new(t * self.width, y)
            })
            .collect()
    }

    fn clusters(&self, centers: usize, per_cluster: usize, radius: f64, seed: u64) -> Vec<Point> {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut out = Vec::with_capacity(centers * per_cluster);
        for _ in 0..centers {
            let center = Point::new(
                rng.random_range(0.0..=self.width),
                rng.random_range(0.0..=self.height),
            );
            for _ in 0..per_cluster {
                let angle = rng.random_range(0.0..std::f64::consts::TAU);
                let r = radius * rng.random::<f64>().sqrt();
                out.push(center + Point::new(r * angle.cos(), r * angle.sin()));
            }
        }
        out
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}m x {:.0}m field", self.width, self.height)
    }
}

/// Structured post layouts for the domain examples.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Layout {
    /// `cols × rows` posts at grid-cell centers (factory floors).
    Grid {
        /// Number of columns.
        cols: usize,
        /// Number of rows.
        rows: usize,
    },
    /// `n` posts evenly spaced along the horizontal midline (bridge decks,
    /// pipelines).
    Line {
        /// Number of posts.
        n: usize,
    },
    /// Randomly placed cluster centers with posts scattered uniformly in a
    /// disc around each (environmental hot-spot monitoring).
    Clusters {
        /// Number of cluster centers.
        centers: usize,
        /// Posts per cluster.
        per_cluster: usize,
        /// Cluster disc radius in meters.
        radius: f64,
        /// RNG seed for center and offset placement.
        seed: u64,
    },
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_field_dimensions() {
        let f = Field::square(500.0);
        assert_eq!(f.width(), 500.0);
        assert_eq!(f.height(), 500.0);
        assert!((f.diagonal() - 500.0 * 2f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_rejected() {
        let _ = Field::new(0.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn nan_dimension_rejected() {
        let _ = Field::new(f64::NAN, 10.0);
    }

    #[test]
    fn base_station_at_corner() {
        assert_eq!(Field::square(200.0).base_station(), Point::ORIGIN);
    }

    #[test]
    fn random_posts_inside_field_and_deterministic() {
        let f = Field::new(300.0, 120.0);
        let a = f.random_posts(250, 99);
        assert_eq!(a.len(), 250);
        assert!(a.iter().all(|p| f.contains(*p)));
        assert_eq!(a, f.random_posts(250, 99));
    }

    #[test]
    fn different_seeds_differ() {
        let f = Field::square(100.0);
        assert_ne!(f.random_posts(20, 1), f.random_posts(20, 2));
    }

    #[test]
    fn separated_posts_respect_min_distance() {
        let f = Field::square(100.0);
        let posts = f.random_posts_separated(30, 5.0, 3).expect("feasible");
        for i in 0..posts.len() {
            for j in 0..i {
                assert!(posts[i].distance(posts[j]) >= 5.0);
            }
        }
    }

    #[test]
    fn separated_posts_infeasible_returns_none() {
        // 1000 posts at >= 50 m pairwise separation cannot fit in 100x100.
        let f = Field::square(100.0);
        assert!(f.random_posts_separated(1000, 50.0, 3).is_none());
    }

    #[test]
    fn grid_layout_counts_and_bounds() {
        let f = Field::new(100.0, 50.0);
        let posts = f.layout_posts(Layout::Grid { cols: 4, rows: 3 });
        assert_eq!(posts.len(), 12);
        assert!(posts.iter().all(|p| f.contains(*p)));
        // First cell center.
        assert_eq!(posts[0], Point::new(12.5, 50.0 / 6.0));
    }

    #[test]
    fn line_layout_is_evenly_spaced() {
        let f = Field::new(100.0, 10.0);
        let posts = f.layout_posts(Layout::Line { n: 4 });
        assert_eq!(posts.len(), 4);
        let gap = posts[1].x - posts[0].x;
        for w in posts.windows(2) {
            assert!((w[1].x - w[0].x - gap).abs() < 1e-9);
            assert_eq!(w[0].y, 5.0);
        }
    }

    #[test]
    fn cluster_layout_counts() {
        let f = Field::square(200.0);
        let posts = f.layout_posts(Layout::Clusters {
            centers: 5,
            per_cluster: 8,
            radius: 10.0,
            seed: 11,
        });
        assert_eq!(posts.len(), 40);
        assert!(posts.iter().all(|p| f.contains(*p)));
    }

    #[test]
    fn display_mentions_dimensions() {
        assert_eq!(format!("{}", Field::square(500.0)), "500m x 500m field");
    }
}

//! Points in the Euclidean plane.

use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point (or displacement vector) in the two-dimensional plane, in meters.
///
/// `Point` is a plain value type: `Copy`, cheap, and with the full set of
/// comparison and hashing traits needed to use it as a map key in layout
/// code. Coordinates are `f64`; equality is exact bitwise `f64` equality,
/// which is appropriate because posts are only ever compared against
/// coordinates they were constructed from.
///
/// # Examples
///
/// ```
/// use wrsn_geom::Point;
///
/// let a = Point::new(3.0, 0.0);
/// let b = Point::new(0.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// assert_eq!(a + b, Point::new(3.0, 4.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate in meters.
    pub x: f64,
    /// Vertical coordinate in meters.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates (meters).
    ///
    /// ```
    /// let p = wrsn_geom::Point::new(1.5, -2.0);
    /// assert_eq!(p.x, 1.5);
    /// ```
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    ///
    /// ```
    /// use wrsn_geom::Point;
    /// let d = Point::new(1.0, 1.0).distance(Point::new(4.0, 5.0));
    /// assert_eq!(d, 5.0);
    /// ```
    #[must_use]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_squared(other).sqrt()
    }

    /// Squared Euclidean distance to `other` (avoids the square root when
    /// only comparisons are needed, e.g. in the spatial index).
    #[must_use]
    pub fn distance_squared(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean norm of this point viewed as a vector from the origin.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.distance(Point::ORIGIN)
    }

    /// Midpoint between `self` and `other`.
    #[must_use]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new((self.x + other.x) / 2.0, (self.y + other.y) / 2.0)
    }

    /// Linear interpolation: returns `self` when `t == 0.0` and `other`
    /// when `t == 1.0`. `t` outside `[0, 1]` extrapolates.
    #[must_use]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Returns `true` if every coordinate is finite (not NaN or infinite).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Point {
    type Output = Point;

    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Point {
    type Output = Point;

    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Point {
    type Output = Point;

    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(-3.0, 7.5);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(12.25, -0.5);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn pythagorean_triple() {
        assert_eq!(Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn squared_distance_matches_distance() {
        let a = Point::new(2.0, 3.0);
        let b = Point::new(5.0, -1.0);
        let d = a.distance(b);
        assert!((a.distance_squared(b) - d * d).abs() < 1e-12);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(0.5, -3.0);
        assert_eq!((a + b) - b, a);
    }

    #[test]
    fn scalar_multiplication() {
        assert_eq!(Point::new(1.0, -2.0) * 3.0, Point::new(3.0, -6.0));
    }

    #[test]
    fn midpoint_is_halfway() {
        let m = Point::new(0.0, 0.0).midpoint(Point::new(10.0, 4.0));
        assert_eq!(m, Point::new(5.0, 2.0));
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(9.0, -7.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), a.midpoint(b));
    }

    #[test]
    fn tuple_conversions() {
        let p: Point = (2.0, 4.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (2.0, 4.0));
    }

    #[test]
    fn non_finite_detected() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Point::ORIGIN).is_empty());
    }
}

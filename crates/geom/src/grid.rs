//! Uniform-grid spatial index over a fixed point set.

use crate::Point;

/// A uniform-grid spatial index for radius and nearest-neighbor queries
/// over a fixed set of points.
///
/// Building the post connectivity graph requires, for every post, all other
/// posts within the maximum transmission range `d_max`. A naive all-pairs
/// scan is `O(N²)`; the grid index with cell size `d_max` answers each
/// radius query by inspecting only the 3×3 neighborhood of cells, which
/// keeps graph construction near-linear for the large-scale experiments.
///
/// # Examples
///
/// ```
/// use wrsn_geom::{GridIndex, Point};
///
/// let pts = vec![Point::new(0.0, 0.0), Point::new(3.0, 4.0), Point::new(50.0, 50.0)];
/// let idx = GridIndex::new(&pts, 10.0);
/// let mut near = idx.within(Point::new(0.0, 0.0), 6.0);
/// near.sort_unstable();
/// assert_eq!(near, vec![0, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct GridIndex {
    points: Vec<Point>,
    cell_size: f64,
    cols: usize,
    rows: usize,
    min: Point,
    /// `cells[r * cols + c]` holds indices of points in that cell.
    cells: Vec<Vec<u32>>,
}

impl GridIndex {
    /// Builds an index over `points` with the given `cell_size` (meters).
    ///
    /// A good `cell_size` is the query radius you will use most often.
    ///
    /// # Panics
    ///
    /// Panics if `cell_size` is not strictly positive and finite, or if any
    /// point has a non-finite coordinate.
    #[must_use]
    pub fn new(points: &[Point], cell_size: f64) -> Self {
        assert!(
            cell_size > 0.0 && cell_size.is_finite(),
            "cell_size must be positive and finite, got {cell_size}"
        );
        assert!(
            points.iter().all(|p| p.is_finite()),
            "all indexed points must be finite"
        );
        let (min, max) = bounding_box(points);
        let cols = ((max.x - min.x) / cell_size).floor() as usize + 1;
        let rows = ((max.y - min.y) / cell_size).floor() as usize + 1;
        let mut cells = vec![Vec::new(); cols * rows];
        let idx = GridIndex {
            points: points.to_vec(),
            cell_size,
            cols,
            rows,
            min,
            cells: Vec::new(),
        };
        for (i, p) in points.iter().enumerate() {
            let (c, r) = idx.cell_of(*p);
            cells[r * cols + c].push(i as u32);
        }
        GridIndex { cells, ..idx }
    }

    /// Number of indexed points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Returns `true` if the index contains no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Indices of all points within `radius` meters of `center`
    /// (inclusive). Order is unspecified.
    #[must_use]
    pub fn within(&self, center: Point, radius: f64) -> Vec<usize> {
        let mut out = Vec::new();
        if self.points.is_empty() || !radius.is_finite() || radius < 0.0 {
            return out;
        }
        let r2 = radius * radius;
        let reach = (radius / self.cell_size).ceil() as isize;
        let (cc, cr) = self.cell_of_clamped(center);
        for dr in -reach..=reach {
            for dc in -reach..=reach {
                let c = cc as isize + dc;
                let r = cr as isize + dr;
                if c < 0 || r < 0 || c as usize >= self.cols || r as usize >= self.rows {
                    continue;
                }
                for &i in &self.cells[r as usize * self.cols + c as usize] {
                    if self.points[i as usize].distance_squared(center) <= r2 {
                        out.push(i as usize);
                    }
                }
            }
        }
        out
    }

    /// Index of the point nearest to `center`, or `None` if the index is
    /// empty. Ties resolve to the lowest index.
    #[must_use]
    pub fn nearest(&self, center: Point) -> Option<usize> {
        // Expanding-ring search: correct because once a candidate is found
        // at ring k, no point beyond ring k+1 can be closer.
        if self.points.is_empty() {
            return None;
        }
        let max_ring = self.cols.max(self.rows) as isize;
        let (cc, cr) = self.cell_of_clamped(center);
        let mut best: Option<(f64, usize)> = None;
        for ring in 0..=max_ring {
            for dr in -ring..=ring {
                for dc in -ring..=ring {
                    if dr.abs() != ring && dc.abs() != ring {
                        continue; // interior already scanned
                    }
                    let c = cc as isize + dc;
                    let r = cr as isize + dr;
                    if c < 0 || r < 0 || c as usize >= self.cols || r as usize >= self.rows {
                        continue;
                    }
                    for &i in &self.cells[r as usize * self.cols + c as usize] {
                        let d2 = self.points[i as usize].distance_squared(center);
                        let better = match best {
                            None => true,
                            Some((bd2, bi)) => d2 < bd2 || (d2 == bd2 && (i as usize) < bi),
                        };
                        if better {
                            best = Some((d2, i as usize));
                        }
                    }
                }
            }
            if let Some((bd2, _)) = best {
                // Safe stopping ring: everything within distance sqrt(bd2)
                // lies within ceil(sqrt(bd2)/cell) rings of the center cell.
                let safe = (bd2.sqrt() / self.cell_size).ceil() as isize;
                if ring >= safe {
                    break;
                }
            }
        }
        best.map(|(_, i)| i)
    }

    fn cell_of(&self, p: Point) -> (usize, usize) {
        let c = ((p.x - self.min.x) / self.cell_size).floor() as usize;
        let r = ((p.y - self.min.y) / self.cell_size).floor() as usize;
        (c.min(self.cols - 1), r.min(self.rows - 1))
    }

    fn cell_of_clamped(&self, p: Point) -> (usize, usize) {
        let c = ((p.x - self.min.x) / self.cell_size).floor().max(0.0) as usize;
        let r = ((p.y - self.min.y) / self.cell_size).floor().max(0.0) as usize;
        (c.min(self.cols - 1), r.min(self.rows - 1))
    }
}

fn bounding_box(points: &[Point]) -> (Point, Point) {
    let mut min = Point::new(0.0, 0.0);
    let mut max = Point::new(0.0, 0.0);
    if let Some(first) = points.first() {
        min = *first;
        max = *first;
        for p in points {
            min.x = min.x.min(p.x);
            min.y = min.y.min(p.y);
            max.x = max.x.max(p.x);
            max.y = max.y.max(p.y);
        }
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Field;

    fn brute_within(pts: &[Point], center: Point, radius: f64) -> Vec<usize> {
        let r2 = radius * radius;
        (0..pts.len())
            .filter(|&i| pts[i].distance_squared(center) <= r2)
            .collect()
    }

    #[test]
    fn within_matches_brute_force() {
        let f = Field::square(500.0);
        let pts = f.random_posts(300, 17);
        let idx = GridIndex::new(&pts, 75.0);
        for (qi, q) in pts.iter().step_by(13).enumerate() {
            let radius = 10.0 + (qi as f64) * 17.0 % 120.0;
            let mut got = idx.within(*q, radius);
            got.sort_unstable();
            assert_eq!(got, brute_within(&pts, *q, radius));
        }
    }

    #[test]
    fn nearest_matches_brute_force() {
        let f = Field::square(300.0);
        let pts = f.random_posts(150, 5);
        let idx = GridIndex::new(&pts, 40.0);
        let queries = f.random_posts(60, 6);
        for q in queries {
            let got = idx.nearest(q).unwrap();
            let want = (0..pts.len())
                .min_by(|&a, &b| {
                    pts[a]
                        .distance_squared(q)
                        .partial_cmp(&pts[b].distance_squared(q))
                        .unwrap()
                })
                .unwrap();
            assert_eq!(
                pts[got].distance_squared(q),
                pts[want].distance_squared(q),
                "query {q}"
            );
        }
    }

    #[test]
    fn empty_index() {
        let idx = GridIndex::new(&[], 10.0);
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        assert!(idx.within(Point::ORIGIN, 100.0).is_empty());
        assert_eq!(idx.nearest(Point::ORIGIN), None);
    }

    #[test]
    fn single_point() {
        let idx = GridIndex::new(&[Point::new(5.0, 5.0)], 1.0);
        assert_eq!(idx.nearest(Point::new(100.0, 100.0)), Some(0));
        assert_eq!(idx.within(Point::new(5.0, 5.0), 0.0), vec![0]);
    }

    #[test]
    fn radius_zero_includes_exact_hits_only() {
        let pts = vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)];
        let idx = GridIndex::new(&pts, 5.0);
        assert_eq!(idx.within(Point::new(1.0, 1.0), 0.0), vec![0]);
    }

    #[test]
    fn query_outside_bounding_box() {
        let pts = vec![Point::new(10.0, 10.0), Point::new(12.0, 10.0)];
        let idx = GridIndex::new(&pts, 3.0);
        assert_eq!(idx.nearest(Point::new(-50.0, -50.0)), Some(0));
        let mut hits = idx.within(Point::new(-50.0, -50.0), 200.0);
        hits.sort_unstable();
        assert_eq!(hits, vec![0, 1]);
    }

    #[test]
    #[should_panic(expected = "cell_size")]
    fn invalid_cell_size_rejected() {
        let _ = GridIndex::new(&[Point::ORIGIN], 0.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_point_rejected() {
        let _ = GridIndex::new(&[Point::new(f64::NAN, 0.0)], 1.0);
    }

    #[test]
    fn negative_radius_yields_empty() {
        let idx = GridIndex::new(&[Point::ORIGIN], 1.0);
        assert!(idx.within(Point::ORIGIN, -1.0).is_empty());
    }
}

//! # wrsn-geom — planar geometry for sensor-field modeling
//!
//! This crate provides the geometric substrate for the `wrsn` workspace:
//! points in the plane, deployment-field descriptions, deterministic random
//! post placement, and a uniform-grid spatial index for neighbor queries.
//!
//! The ICDCS 2010 evaluation deploys posts uniformly at random inside a
//! square field with the base station at the lower-left corner; [`Field`]
//! reproduces that setup, and a handful of structured layouts (grid, line,
//! clusters) back the domain examples.
//!
//! # Examples
//!
//! ```
//! use wrsn_geom::{Field, Point};
//!
//! let field = Field::square(500.0);
//! let posts = field.random_posts(100, 42);
//! assert_eq!(posts.len(), 100);
//! assert!(posts.iter().all(|p| field.contains(*p)));
//! assert_eq!(field.base_station(), Point::new(0.0, 0.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod field;
mod grid;
mod point;

pub use field::{Field, Layout};
pub use grid::GridIndex;
pub use point::Point;

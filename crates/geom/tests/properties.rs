//! Property tests for the geometry substrate.

use proptest::prelude::*;
use wrsn_geom::{Field, GridIndex, Point};

fn arb_points() -> impl Strategy<Value = Vec<Point>> {
    proptest::collection::vec((0.0f64..500.0, 0.0f64..500.0), 0..120)
        .prop_map(|pts| pts.into_iter().map(Point::from).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The triangle inequality holds for the distance metric.
    #[test]
    fn triangle_inequality(
        a in (0.0f64..1e3, 0.0f64..1e3),
        b in (0.0f64..1e3, 0.0f64..1e3),
        c in (0.0f64..1e3, 0.0f64..1e3),
    ) {
        let (a, b, c) = (Point::from(a), Point::from(b), Point::from(c));
        prop_assert!(a.distance(c) <= a.distance(b) + b.distance(c) + 1e-9);
        prop_assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
    }

    /// Radius queries on the grid index exactly match brute force, for
    /// arbitrary point sets, query centers, radii, and cell sizes.
    #[test]
    fn grid_within_matches_bruteforce(
        pts in arb_points(),
        q in (0.0f64..500.0, 0.0f64..500.0),
        radius in 0.0f64..300.0,
        cell in 1.0f64..150.0,
    ) {
        let q = Point::from(q);
        let idx = GridIndex::new(&pts, cell);
        let mut got = idx.within(q, radius);
        got.sort_unstable();
        let want: Vec<usize> = (0..pts.len())
            .filter(|&i| pts[i].distance(q) <= radius)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Nearest-neighbor queries return a point at the true minimum
    /// distance.
    #[test]
    fn grid_nearest_matches_bruteforce(
        pts in arb_points(),
        q in (-100.0f64..600.0, -100.0f64..600.0),
        cell in 1.0f64..150.0,
    ) {
        let q = Point::from(q);
        let idx = GridIndex::new(&pts, cell);
        match idx.nearest(q) {
            None => prop_assert!(pts.is_empty()),
            Some(i) => {
                let best = pts
                    .iter()
                    .map(|p| p.distance(q))
                    .fold(f64::INFINITY, f64::min);
                prop_assert!((pts[i].distance(q) - best).abs() < 1e-9);
            }
        }
    }

    /// Random posts always land inside the field and are seed-stable.
    #[test]
    fn random_posts_in_bounds(
        w in 10.0f64..800.0,
        h in 10.0f64..800.0,
        n in 0usize..200,
        seed in any::<u64>(),
    ) {
        let f = Field::new(w, h);
        let posts = f.random_posts(n, seed);
        prop_assert_eq!(posts.len(), n);
        prop_assert!(posts.iter().all(|p| f.contains(*p)));
        prop_assert_eq!(posts, f.random_posts(n, seed));
    }

    /// Separated sampling honors the pairwise minimum when it succeeds.
    #[test]
    fn separated_posts_honor_min_distance(
        n in 1usize..25,
        sep in 1.0f64..30.0,
        seed in any::<u64>(),
    ) {
        let f = Field::square(400.0);
        if let Some(posts) = f.random_posts_separated(n, sep, seed) {
            prop_assert_eq!(posts.len(), n);
            for i in 0..posts.len() {
                for j in 0..i {
                    prop_assert!(posts[i].distance(posts[j]) >= sep);
                }
            }
        }
    }
}

//! Charging-efficiency models consumed by the deployment optimizer.

use std::fmt;
use wrsn_energy::Energy;

/// A model of how charging efficiency scales with the number of co-located
/// nodes at a post.
///
/// When a charger spends one unit of energy at a post holding `m` nodes,
/// **each** node receives `efficiency(m) / m` units... more precisely the
/// paper's convention is: each of the `m` nodes receives `η` units per unit
/// spent, so the *post* as a whole receives `m·η = efficiency(m)` units.
/// [`ChargeModel::charger_energy`] inverts that: delivering `E` joules of
/// aggregate energy to the post costs the charger `E / efficiency(m)`.
///
/// Implementations must guarantee `0 < efficiency(m) <= gain_cap` for
/// `m >= 1` and that `efficiency` is non-decreasing in `m`; the solvers
/// rely on both (costs stay positive and adding a node never hurts).
pub trait ChargeModel {
    /// Network charging efficiency `η(m) = k(m)·η` for a post with `m`
    /// nodes.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `m == 0`: a post with no nodes
    /// cannot be charged.
    fn efficiency(&self, m: u32) -> f64;

    /// Energy the charger must radiate so the post (all `m` nodes
    /// together, rotation-averaged) receives `delivered`.
    fn charger_energy(&self, delivered: Energy, m: u32) -> Energy {
        delivered / self.efficiency(m)
    }

    /// The single-node base efficiency `η = efficiency(1)`.
    fn base_efficiency(&self) -> f64 {
        self.efficiency(1)
    }
}

fn assert_base_efficiency(eta: f64) {
    assert!(
        eta > 0.0 && eta <= 1.0 && eta.is_finite(),
        "base efficiency must lie in (0, 1], got {eta}"
    );
}

fn assert_m(m: u32) -> f64 {
    assert!(m >= 1, "cannot charge a post with zero nodes");
    f64::from(m)
}

/// The paper's working assumption: `k(m) = m`, i.e. network charging
/// efficiency grows linearly with the number of simultaneously charged
/// nodes (Section III: "we assume k(m) = m in this paper").
///
/// # Examples
///
/// ```
/// use wrsn_charging::{ChargeModel, LinearGain};
/// let model = LinearGain::new(0.01);
/// assert_eq!(model.efficiency(1), 0.01);
/// assert_eq!(model.efficiency(6), 0.06);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearGain {
    eta: f64,
}

impl LinearGain {
    /// Creates the model with single-node efficiency `eta ∈ (0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is outside `(0, 1]` or non-finite.
    #[must_use]
    pub fn new(eta: f64) -> Self {
        assert_base_efficiency(eta);
        LinearGain { eta }
    }

    /// The normalized model `η = 1` used by the paper's evaluation metric
    /// (costs are then expressed directly in consumed-energy units).
    #[must_use]
    pub fn normalized() -> Self {
        LinearGain::new(1.0)
    }
}

impl ChargeModel for LinearGain {
    fn efficiency(&self, m: u32) -> f64 {
        assert_m(m) * self.eta
    }
}

impl Default for LinearGain {
    /// The normalized model ([`LinearGain::normalized`]).
    fn default() -> Self {
        LinearGain::normalized()
    }
}

impl fmt::Display for LinearGain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "linear gain (eta={})", self.eta)
    }
}

/// A sub-linear gain `k(m) = m^p` with `p ∈ (0, 1]`, for sensitivity
/// studies of the paper's linearity assumption (its own measurements call
/// `k(m)` "linear or sub-linear").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturatingGain {
    eta: f64,
    exponent: f64,
}

impl SaturatingGain {
    /// Creates the model with single-node efficiency `eta` and gain
    /// exponent `exponent`.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is outside `(0, 1]` or `exponent` outside `(0, 1]`.
    #[must_use]
    pub fn new(eta: f64, exponent: f64) -> Self {
        assert_base_efficiency(eta);
        assert!(
            exponent > 0.0 && exponent <= 1.0,
            "gain exponent must lie in (0, 1], got {exponent}"
        );
        SaturatingGain { eta, exponent }
    }
}

impl ChargeModel for SaturatingGain {
    fn efficiency(&self, m: u32) -> f64 {
        assert_m(m).powf(self.exponent) * self.eta
    }
}

impl fmt::Display for SaturatingGain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "saturating gain (eta={}, p={})", self.eta, self.exponent)
    }
}

/// A gain curve tabulated from measurements (e.g. the output of the
/// [`FieldExperiment`](crate::FieldExperiment) simulator), linearly
/// interpolated between samples and extrapolated flat beyond the last one.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredGain {
    eta: f64,
    /// `k(m)` samples for `m = 1, 2, …`; `k(1)` is forced to `1.0`.
    gains: Vec<f64>,
}

impl MeasuredGain {
    /// Creates a measured-gain model from `k(m)` samples for
    /// `m = 1, 2, …, len`.
    ///
    /// # Panics
    ///
    /// Panics if `eta` is invalid, `gains` is empty, `gains[0]` is not
    /// `1.0`, or the samples are not non-decreasing and positive.
    #[must_use]
    pub fn new(eta: f64, gains: Vec<f64>) -> Self {
        assert_base_efficiency(eta);
        assert!(!gains.is_empty(), "at least one gain sample required");
        assert!(
            (gains[0] - 1.0).abs() < 1e-9,
            "k(1) must be 1.0 by definition, got {}",
            gains[0]
        );
        assert!(
            gains.windows(2).all(|w| w[1] >= w[0]) && gains.iter().all(|&g| g > 0.0),
            "gain samples must be positive and non-decreasing"
        );
        MeasuredGain { eta, gains }
    }

    /// The gain `k(m)`, flat-extrapolated past the last sample.
    #[must_use]
    pub fn gain(&self, m: u32) -> f64 {
        assert_m(m);
        let idx = (m as usize - 1).min(self.gains.len() - 1);
        self.gains[idx]
    }
}

impl ChargeModel for MeasuredGain {
    fn efficiency(&self, m: u32) -> f64 {
        self.gain(m) * self.eta
    }
}

impl fmt::Display for MeasuredGain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "measured gain (eta={}, {} samples)",
            self.eta,
            self.gains.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_gain_is_linear() {
        let m = LinearGain::new(0.01);
        for k in 1..=10u32 {
            assert!((m.efficiency(k) - 0.01 * f64::from(k)).abs() < 1e-12);
        }
        assert_eq!(m.base_efficiency(), 0.01);
    }

    #[test]
    fn charger_energy_inverts_efficiency() {
        let m = LinearGain::new(0.5);
        let delivered = Energy::from_njoules(100.0);
        assert_eq!(m.charger_energy(delivered, 1).as_njoules(), 200.0);
        assert_eq!(m.charger_energy(delivered, 2).as_njoules(), 100.0);
    }

    #[test]
    fn normalized_model_is_identity_for_single_node() {
        let m = LinearGain::normalized();
        assert_eq!(m.efficiency(1), 1.0);
        let e = Energy::from_njoules(42.0);
        assert_eq!(m.charger_energy(e, 1), e);
    }

    #[test]
    #[should_panic(expected = "zero nodes")]
    fn zero_nodes_panics() {
        let _ = LinearGain::normalized().efficiency(0);
    }

    #[test]
    #[should_panic(expected = "base efficiency")]
    fn eta_above_one_rejected() {
        let _ = LinearGain::new(1.5);
    }

    #[test]
    fn saturating_gain_is_sublinear_and_monotone() {
        let m = SaturatingGain::new(0.01, 0.8);
        let mut last = 0.0;
        for k in 1..=8u32 {
            let e = m.efficiency(k);
            assert!(e > last);
            assert!(e <= LinearGain::new(0.01).efficiency(k) + 1e-15);
            last = e;
        }
        // Exponent 1.0 degenerates to linear.
        let lin = SaturatingGain::new(0.01, 1.0);
        assert!((lin.efficiency(5) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn measured_gain_interpolates_and_extrapolates_flat() {
        let m = MeasuredGain::new(0.01, vec![1.0, 1.8, 2.7, 3.5]);
        assert_eq!(m.gain(1), 1.0);
        assert_eq!(m.gain(3), 2.7);
        assert_eq!(m.gain(4), 3.5);
        assert_eq!(m.gain(10), 3.5); // flat extrapolation
        assert!((m.efficiency(2) - 0.018).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "k(1)")]
    fn measured_gain_requires_unit_first_sample() {
        let _ = MeasuredGain::new(0.01, vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn measured_gain_rejects_decreasing_samples() {
        let _ = MeasuredGain::new(0.01, vec![1.0, 0.5]);
    }

    #[test]
    fn models_are_usable_as_trait_objects() {
        let models: Vec<Box<dyn ChargeModel>> = vec![
            Box::new(LinearGain::new(0.01)),
            Box::new(SaturatingGain::new(0.01, 0.9)),
            Box::new(MeasuredGain::new(0.01, vec![1.0, 2.0])),
        ];
        for m in &models {
            assert!(m.efficiency(2) > m.efficiency(1));
        }
    }

    #[test]
    fn displays_are_informative() {
        assert!(format!("{}", LinearGain::normalized()).contains("linear"));
        assert!(format!("{}", SaturatingGain::new(0.5, 0.5)).contains("p=0.5"));
        assert!(format!("{}", MeasuredGain::new(0.5, vec![1.0])).contains("samples"));
    }
}

//! A simulator for the paper's Section II field experiment.
//!
//! The original study charged Powercast-equipped sensor nodes over
//! 903–927 MHz RF and reported (a) single-node efficiency below 1 % at
//! 20 cm, decaying rapidly with distance, and (b) network-level efficiency
//! growing approximately linearly in the number of simultaneously charged
//! nodes, with a visible per-node dip from 1 to 2 receivers that shrinks as
//! receiver spacing grows from 5 cm to 10 cm.
//!
//! Lacking the RF hardware, [`FieldExperiment`] reproduces those anchors
//! with a calibrated propagation model: log-distance path loss with an
//! absorption term (so efficiency falls faster than the pure inverse-square
//! law, matching the paper's "decreases exponentially"), plus a mutual
//! shadowing factor between closely packed receivers. Trial-to-trial
//! measurement noise is multiplicative Gaussian, and observations average a
//! configurable number of trials exactly as the paper averages 40.

use crate::MeasuredGain;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// Propagation and calibration constants for the RF charging simulator.
///
/// The defaults are calibrated to the paper's published observations; they
/// are exposed so sensitivity studies can perturb them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RfParams {
    /// Charger radiated power in watts (Powercast TX91501-class: 3 W).
    pub tx_power_w: f64,
    /// Calibration distance in centimeters (the paper quotes 20 cm).
    pub reference_distance_cm: f64,
    /// Single-node efficiency at the calibration distance (paper: < 1 %).
    pub reference_efficiency: f64,
    /// Path-loss exponent of the inverse-power law.
    pub path_loss_exponent: f64,
    /// Additional absorption, nepers per centimeter beyond the reference
    /// distance; this is what makes efficiency fall off exponentially.
    pub absorption_per_cm: f64,
    /// Peak fractional per-node power loss from mutual shadowing when many
    /// receivers are packed arbitrarily close together.
    pub shadowing_peak: f64,
    /// Spacing scale (cm) over which mutual shadowing decays.
    pub shadowing_scale_cm: f64,
    /// Standard deviation of multiplicative per-trial measurement noise.
    pub noise_sd: f64,
}

impl Default for RfParams {
    fn default() -> Self {
        RfParams {
            tx_power_w: 3.0,
            reference_distance_cm: 20.0,
            reference_efficiency: 0.008,
            path_loss_exponent: 2.0,
            absorption_per_cm: 0.018,
            shadowing_peak: 0.35,
            shadowing_scale_cm: 7.0,
            noise_sd: 0.05,
        }
    }
}

impl fmt::Display for RfParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rf(tx={}W, eta0={:.3}% @ {}cm)",
            self.tx_power_w,
            self.reference_efficiency * 100.0,
            self.reference_distance_cm
        )
    }
}

/// One averaged observation of the simulated field experiment — the
/// quantity plotted in the paper's Fig. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FieldObservation {
    /// Number of sensors charged simultaneously.
    pub sensors: u32,
    /// Charger-to-sensor distance in centimeters.
    pub distance_cm: f64,
    /// Sensor-to-sensor spacing in centimeters.
    pub spacing_cm: f64,
    /// Average power received *per node*, in milliwatts.
    pub per_node_power_mw: f64,
    /// Network charging efficiency: total received power over radiated
    /// power.
    pub network_efficiency: f64,
    /// Number of trials averaged.
    pub trials: u32,
}

/// The Section II field-experiment simulator.
///
/// # Examples
///
/// ```
/// use wrsn_charging::FieldExperiment;
///
/// let exp = FieldExperiment::default();
/// let single = exp.observe(1, 20.0, 5.0, 40, 1);
/// assert!(single.network_efficiency < 0.01); // paper: below 1% at 20 cm
/// let six = exp.observe(6, 20.0, 10.0, 40, 1);
/// // Network efficiency grows roughly linearly with receiver count.
/// assert!(six.network_efficiency > 4.0 * single.network_efficiency);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FieldExperiment {
    params: RfParams,
}

impl FieldExperiment {
    /// Creates a simulator with explicit RF parameters.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is non-finite, if powers/distances are not
    /// positive, if `reference_efficiency` is outside `(0, 1)`, or if
    /// `shadowing_peak` is outside `[0, 1)`.
    #[must_use]
    pub fn new(params: RfParams) -> Self {
        assert!(params.tx_power_w > 0.0 && params.tx_power_w.is_finite());
        assert!(params.reference_distance_cm > 0.0 && params.reference_distance_cm.is_finite());
        assert!(
            params.reference_efficiency > 0.0 && params.reference_efficiency < 1.0,
            "reference efficiency must lie in (0, 1)"
        );
        assert!(params.path_loss_exponent >= 1.0 && params.path_loss_exponent <= 6.0);
        assert!(params.absorption_per_cm >= 0.0 && params.absorption_per_cm.is_finite());
        assert!(
            (0.0..1.0).contains(&params.shadowing_peak),
            "shadowing peak must lie in [0, 1)"
        );
        assert!(params.shadowing_scale_cm > 0.0);
        assert!(params.noise_sd >= 0.0 && params.noise_sd < 0.5);
        FieldExperiment { params }
    }

    /// The RF parameters in use.
    #[must_use]
    pub fn params(&self) -> &RfParams {
        &self.params
    }

    /// Expected (noise-free) per-node received power in milliwatts.
    ///
    /// # Panics
    ///
    /// Panics if `sensors == 0` or distances are not positive and finite.
    #[must_use]
    pub fn expected_per_node_power_mw(
        &self,
        sensors: u32,
        distance_cm: f64,
        spacing_cm: f64,
    ) -> f64 {
        assert!(sensors >= 1, "at least one sensor required");
        assert!(
            distance_cm > 0.0 && distance_cm.is_finite(),
            "charger distance must be positive"
        );
        assert!(
            spacing_cm > 0.0 && spacing_cm.is_finite(),
            "sensor spacing must be positive"
        );
        let p = &self.params;
        let d0 = p.reference_distance_cm;
        let path = (d0 / distance_cm).powf(p.path_loss_exponent)
            * (-p.absorption_per_cm * (distance_cm - d0)).exp();
        let single_node_w = p.tx_power_w * p.reference_efficiency * path;
        single_node_w * self.shadowing(sensors, spacing_cm) * 1e3
    }

    /// Mutual-shadowing factor in `(0, 1]`: `1` for a lone receiver,
    /// dipping when receivers pack closely and recovering with spacing.
    #[must_use]
    pub fn shadowing(&self, sensors: u32, spacing_cm: f64) -> f64 {
        if sensors <= 1 {
            return 1.0;
        }
        let p = &self.params;
        let peak = p.shadowing_peak * (-spacing_cm / p.shadowing_scale_cm).exp();
        // The loss saturates quickly with m: the bulk of it appears going
        // from 1 to 2 receivers (what Fig. 1 shows), with a mild residual
        // decline thereafter. Clamped away from zero so pathological
        // parameter choices still yield positive received power.
        (1.0 - 2.0 * peak * (1.0 - 1.0 / f64::from(sensors))).max(0.05)
    }

    /// Runs `trials` noisy trials and returns their average, mirroring the
    /// paper's 40-trial averages. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or the geometry arguments are invalid.
    #[must_use]
    pub fn observe(
        &self,
        sensors: u32,
        distance_cm: f64,
        spacing_cm: f64,
        trials: u32,
        seed: u64,
    ) -> FieldObservation {
        assert!(trials >= 1, "at least one trial required");
        let expected = self.expected_per_node_power_mw(sensors, distance_cm, spacing_cm);
        let mut rng = SmallRng::seed_from_u64(
            seed ^ (u64::from(sensors) << 32)
                ^ ((distance_cm * 10.0) as u64)
                ^ (((spacing_cm * 10.0) as u64) << 16),
        );
        let mut total = 0.0;
        for _ in 0..trials {
            let noise = 1.0 + self.params.noise_sd * gaussian(&mut rng);
            total += expected * noise.max(0.0);
        }
        let per_node = total / f64::from(trials);
        FieldObservation {
            sensors,
            distance_cm,
            spacing_cm,
            per_node_power_mw: per_node,
            network_efficiency: f64::from(sensors) * per_node * 1e-3 / self.params.tx_power_w,
            trials,
        }
    }

    /// The parameter grid of the paper's Table II:
    /// sensors × charger distances (cm) × spacings (cm).
    #[must_use]
    pub fn table_ii_grid() -> (Vec<u32>, Vec<f64>, Vec<f64>) {
        (
            vec![1, 2, 4, 6],
            vec![20.0, 40.0, 60.0, 80.0, 100.0],
            vec![5.0, 10.0],
        )
    }

    /// Runs the full Table II grid with the paper's 40 trials per cell.
    #[must_use]
    pub fn table_ii_observations(&self, seed: u64) -> Vec<FieldObservation> {
        let (sensors, distances, spacings) = Self::table_ii_grid();
        let mut out = Vec::new();
        for &sp in &spacings {
            for &d in &distances {
                for &m in &sensors {
                    out.push(self.observe(m, d, sp, 40, seed));
                }
            }
        }
        out
    }

    /// Derives a [`MeasuredGain`] curve `k(m)` for the optimizer from the
    /// noise-free model at the given geometry: `k(m)` is the network
    /// efficiency with `m` receivers relative to one receiver.
    ///
    /// # Panics
    ///
    /// Panics if `max_m == 0` or the geometry is invalid.
    #[must_use]
    pub fn measured_gain(&self, distance_cm: f64, spacing_cm: f64, max_m: u32) -> MeasuredGain {
        assert!(max_m >= 1, "need at least one receiver count");
        let single = self.expected_per_node_power_mw(1, distance_cm, spacing_cm);
        let eta = single * 1e-3 / self.params.tx_power_w;
        let gains = (1..=max_m)
            .map(|m| {
                f64::from(m) * self.expected_per_node_power_mw(m, distance_cm, spacing_cm) / single
            })
            .collect();
        MeasuredGain::new(eta, gains)
    }
}

/// A standard normal sample via Box–Muller (rand_distr is outside the
/// approved dependency set).
fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ChargeModel;

    #[test]
    fn single_node_efficiency_below_one_percent_at_20cm() {
        let exp = FieldExperiment::default();
        let obs = exp.observe(1, 20.0, 5.0, 40, 7);
        assert!(obs.network_efficiency < 0.01, "{}", obs.network_efficiency);
        assert!(obs.network_efficiency > 0.001);
    }

    #[test]
    fn efficiency_decays_faster_than_inverse_square() {
        let exp = FieldExperiment::default();
        let p20 = exp.expected_per_node_power_mw(1, 20.0, 5.0);
        let p40 = exp.expected_per_node_power_mw(1, 40.0, 5.0);
        let p80 = exp.expected_per_node_power_mw(1, 80.0, 5.0);
        // Pure inverse-square would give p40 = p20/4; absorption makes it
        // strictly worse, and the decay compounds with distance.
        assert!(p40 < p20 / 4.0);
        assert!(p80 < p40 / 4.0);
    }

    #[test]
    fn network_efficiency_grows_approximately_linearly() {
        let exp = FieldExperiment::default();
        for spacing in [5.0, 10.0] {
            let base = exp.expected_per_node_power_mw(1, 20.0, spacing);
            for m in 2..=6u32 {
                let per_node = exp.expected_per_node_power_mw(m, 20.0, spacing);
                let k = f64::from(m) * per_node / base;
                // Within 35% of perfectly linear (the paper's own data has
                // a comparable single-to-multi dip).
                assert!(k > 0.65 * f64::from(m), "k({m})={k} at spacing {spacing}");
                assert!(k <= f64::from(m) + 1e-9);
            }
        }
    }

    #[test]
    fn one_to_two_dip_shrinks_with_spacing() {
        let exp = FieldExperiment::default();
        let dip = |spacing: f64| {
            let p1 = exp.expected_per_node_power_mw(1, 20.0, spacing);
            let p2 = exp.expected_per_node_power_mw(2, 20.0, spacing);
            (p1 - p2) / p1
        };
        assert!(dip(5.0) > dip(10.0), "dip should shrink with spacing");
        assert!(dip(5.0) > 0.05, "dip at 5cm should be noticeable");
    }

    #[test]
    fn per_node_power_roughly_flat_from_two_to_six() {
        let exp = FieldExperiment::default();
        let p2 = exp.expected_per_node_power_mw(2, 20.0, 10.0);
        let p6 = exp.expected_per_node_power_mw(6, 20.0, 10.0);
        assert!((p2 - p6) / p2 < 0.10, "2->6 drop should be mild");
        assert!(p6 <= p2);
    }

    #[test]
    fn observation_averages_are_stable_and_deterministic() {
        let exp = FieldExperiment::default();
        let a = exp.observe(4, 60.0, 10.0, 40, 3);
        let b = exp.observe(4, 60.0, 10.0, 40, 3);
        assert_eq!(a, b);
        let expected = exp.expected_per_node_power_mw(4, 60.0, 10.0);
        assert!((a.per_node_power_mw - expected).abs() / expected < 0.1);
    }

    #[test]
    fn table_ii_grid_shape() {
        let obs = FieldExperiment::default().table_ii_observations(1);
        assert_eq!(obs.len(), 4 * 5 * 2);
        assert!(obs.iter().all(|o| o.trials == 40));
    }

    #[test]
    fn measured_gain_feeds_the_optimizer() {
        let exp = FieldExperiment::default();
        let gain = exp.measured_gain(20.0, 10.0, 6);
        assert!(gain.base_efficiency() < 0.01);
        // Efficiency at 6 nodes is much larger than at 1 but at most 6x.
        let ratio = gain.efficiency(6) / gain.efficiency(1);
        assert!(ratio > 4.0 && ratio <= 6.0);
    }

    #[test]
    #[should_panic(expected = "at least one sensor")]
    fn zero_sensors_panics() {
        let _ = FieldExperiment::default().expected_per_node_power_mw(0, 20.0, 5.0);
    }

    #[test]
    #[should_panic(expected = "reference efficiency")]
    fn invalid_reference_efficiency_rejected() {
        let _ = FieldExperiment::new(RfParams {
            reference_efficiency: 1.5,
            ..RfParams::default()
        });
    }

    #[test]
    fn gaussian_noise_has_roughly_zero_mean() {
        let mut rng = SmallRng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| gaussian(&mut rng)).sum::<f64>() / f64::from(n);
        assert!(mean.abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn shadowing_bounds() {
        let exp = FieldExperiment::default();
        for m in 1..=8 {
            for sp in [2.0, 5.0, 10.0, 50.0] {
                let s = exp.shadowing(m, sp);
                assert!(s > 0.0 && s <= 1.0, "shadowing({m},{sp}) = {s}");
            }
        }
        assert_eq!(exp.shadowing(1, 5.0), 1.0);
    }
}

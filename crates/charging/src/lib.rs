//! # wrsn-charging — wireless power-transfer models
//!
//! Two layers of charging model back the `wrsn` workspace:
//!
//! 1. **Network-design layer** ([`ChargeModel`] and its implementations):
//!    the abstraction the deployment/routing optimizer consumes. Charging a
//!    post holding `m` co-located nodes has efficiency `η(m) = k(m)·η`; the
//!    paper's field experiments justify the linear gain `k(m) = m`
//!    ([`LinearGain`]), and [`SaturatingGain`]/[`MeasuredGain`] provide
//!    sub-linear alternatives for sensitivity studies.
//! 2. **RF-propagation layer** ([`FieldExperiment`]): a simulator standing
//!    in for the paper's Powercast hardware testbed (Section II). It models
//!    free-space path loss with an absorption term plus mutual shadowing
//!    between closely packed receivers, calibrated to the paper's published
//!    anchors: ≈1 % single-node efficiency at 20 cm, efficiency decaying
//!    rapidly with distance, and network-level efficiency growing
//!    approximately linearly with the number of simultaneous receivers
//!    (more cleanly at 10 cm spacing than at 5 cm).
//!
//! # Examples
//!
//! ```
//! use wrsn_charging::{ChargeModel, LinearGain};
//! use wrsn_energy::Energy;
//!
//! let model = LinearGain::new(0.01); // 1% single-node efficiency
//! // Delivering 1 uJ to a post with 4 nodes costs the charger 25 uJ.
//! let cost = model.charger_energy(Energy::from_ujoules(1.0), 4);
//! assert_eq!(cost.as_ujoules(), 25.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod efficiency;
mod fieldsim;

pub use efficiency::{ChargeModel, LinearGain, MeasuredGain, SaturatingGain};
pub use fieldsim::{FieldExperiment, FieldObservation, RfParams};

//! Property tests for charging models and the RF field simulator.

use proptest::prelude::*;
use wrsn_charging::{ChargeModel, FieldExperiment, LinearGain, MeasuredGain, SaturatingGain};
use wrsn_energy::Energy;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every gain model is positive and non-decreasing in the node count
    /// (the invariant the solvers rely on).
    #[test]
    fn efficiency_monotone_in_node_count(
        eta in 0.001f64..1.0,
        p in 0.1f64..1.0,
    ) {
        let models: Vec<Box<dyn ChargeModel>> = vec![
            Box::new(LinearGain::new(eta)),
            Box::new(SaturatingGain::new(eta, p)),
            Box::new(MeasuredGain::new(eta, vec![1.0, 1.5, 1.5, 2.0])),
        ];
        for model in &models {
            let mut last = 0.0;
            for m in 1..=12u32 {
                let e = model.efficiency(m);
                prop_assert!(e > 0.0);
                prop_assert!(e >= last - 1e-12);
                last = e;
            }
        }
    }

    /// Charger energy inverts delivery: delivering what the charger's
    /// output would deliver costs exactly the charger's output.
    #[test]
    fn charger_energy_is_inverse(
        eta in 0.001f64..1.0,
        m in 1u32..10,
        nj in 0.0f64..1e6,
    ) {
        let model = LinearGain::new(eta);
        let radiated = Energy::from_njoules(nj);
        let delivered = radiated * model.efficiency(m);
        let back = model.charger_energy(delivered, m);
        prop_assert!((back.as_njoules() - nj).abs() <= 1e-9 * nj.max(1.0));
    }

    /// Received power decays monotonically with charger distance.
    #[test]
    fn power_decays_with_distance(
        sensors in 1u32..7,
        spacing in 2.0f64..20.0,
    ) {
        let exp = FieldExperiment::default();
        let mut last = f64::INFINITY;
        for d in [10.0, 20.0, 40.0, 60.0, 80.0, 100.0, 150.0] {
            let p = exp.expected_per_node_power_mw(sensors, d, spacing);
            prop_assert!(p > 0.0);
            prop_assert!(p < last);
            last = p;
        }
    }

    /// More receivers never *increase* per-node power, and never push
    /// network efficiency above the per-receiver linear bound.
    #[test]
    fn network_efficiency_bounded_by_linear(
        distance in 10.0f64..120.0,
        spacing in 2.0f64..20.0,
    ) {
        let exp = FieldExperiment::default();
        let single = exp.expected_per_node_power_mw(1, distance, spacing);
        let mut last_per_node = f64::INFINITY;
        for m in 1..=8u32 {
            let per_node = exp.expected_per_node_power_mw(m, distance, spacing);
            prop_assert!(per_node <= last_per_node + 1e-12);
            prop_assert!(per_node <= single + 1e-12);
            last_per_node = per_node;
            let k = f64::from(m) * per_node / single;
            prop_assert!(k <= f64::from(m) + 1e-9);
        }
    }

    /// Wider spacing always helps (or is neutral) once multiple
    /// receivers share the field.
    #[test]
    fn spacing_relieves_shadowing(
        sensors in 2u32..7,
        distance in 10.0f64..100.0,
    ) {
        let exp = FieldExperiment::default();
        let tight = exp.expected_per_node_power_mw(sensors, distance, 3.0);
        let loose = exp.expected_per_node_power_mw(sensors, distance, 15.0);
        prop_assert!(loose >= tight);
    }

    /// Observations average noisy trials around the expectation, and the
    /// derived measured-gain curve is a valid model (monotone, k(1)=1).
    #[test]
    fn observations_and_gain_curves_consistent(
        seed in any::<u64>(),
        distance in 15.0f64..60.0,
    ) {
        let exp = FieldExperiment::default();
        let obs = exp.observe(4, distance, 10.0, 200, seed);
        let expected = exp.expected_per_node_power_mw(4, distance, 10.0);
        prop_assert!((obs.per_node_power_mw - expected).abs() / expected < 0.05);
        let gain = exp.measured_gain(distance, 10.0, 8);
        prop_assert!(gain.gain(1) == 1.0);
        for m in 1..8u32 {
            prop_assert!(gain.gain(m + 1) >= gain.gain(m));
        }
    }
}

//! The network simulator: rounds, rotation, batteries, charger.

use crate::{EventQueue, FaultPlan, NodeDeath, PatrolTour};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use wrsn_core::{Instance, Solution};
use wrsn_energy::{Battery, Energy};

/// When and how the wireless charger tops up posts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChargerPolicy {
    /// No charger: the network runs until batteries die (lifetime
    /// experiments).
    None,
    /// Every `interval_s` seconds the charger inspects all posts and
    /// refills any whose pooled state of charge is below `trigger_soc`
    /// back to full. Travel time is abstracted away (the paper's
    /// "recharged in time" assumption).
    Threshold {
        /// Patrol interval in seconds.
        interval_s: f64,
        /// Pooled state-of-charge fraction that triggers a refill.
        trigger_soc: f64,
    },
    /// A fleet of `chargers` mobile chargers physically cycle planned
    /// [`PatrolTour`]s (nearest-neighbor + 2-opt over the instance
    /// geometry, split into balanced sub-tours) at `speed_mps`, topping
    /// up each post they reach if its pooled state of charge is below
    /// `trigger_soc`. Requires a geometric instance.
    PatrolTour {
        /// Charger travel speed in meters per second.
        speed_mps: f64,
        /// Pooled state-of-charge fraction that triggers a refill.
        trigger_soc: f64,
        /// Number of chargers sharing the patrol (≥ 1).
        chargers: u32,
    },
}

impl Default for ChargerPolicy {
    /// Patrol every 10 rounds, refill below 50 %.
    fn default() -> Self {
        ChargerPolicy::Threshold {
            interval_s: 10.0,
            trigger_soc: 0.5,
        }
    }
}

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Seconds between reporting rounds (also the patrol time unit).
    pub round_interval_s: f64,
    /// Bits per report.
    pub bits_per_report: u64,
    /// Battery capacity of every node.
    pub battery_capacity: Energy,
    /// The charger policy.
    pub charger: ChargerPolicy,
    /// Record a state-of-charge sample every this many rounds
    /// (`None` = no timeline).
    pub record_soc_every: Option<u64>,
    /// Charger radiated power in watts; a patrol charger refilling a
    /// post dwells for `radiated / power` seconds, delaying the rest of
    /// its tour. `f64::INFINITY` (the default) means instant refills.
    pub charger_power_w: f64,
    /// Deterministic failure injection (`None` = fault-free run).
    pub faults: Option<FaultPlan>,
    /// An explicit patrol visit order (a permutation of post indices)
    /// that overrides [`ChargerPolicy::PatrolTour`]'s own planning —
    /// used to simulate a tour produced by the scheduling solvers, so
    /// fault-plan charger axes (skips, delays, breakdowns) interact with
    /// the planned tour rather than a re-planned one. Ignored by the
    /// non-spatial policies.
    pub tour_order: Option<Vec<usize>>,
}

impl Default for SimConfig {
    /// One report per second of 4000 bits (a ~500-byte reading), 100 mJ
    /// batteries, default threshold charger, no faults.
    fn default() -> Self {
        SimConfig {
            round_interval_s: 1.0,
            bits_per_report: 4000,
            battery_capacity: Energy::from_joules(0.1),
            charger: ChargerPolicy::default(),
            record_soc_every: None,
            charger_power_w: f64::INFINITY,
            faults: None,
            tour_order: None,
        }
    }
}

/// What happened during a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Rounds fully simulated.
    pub rounds_completed: u64,
    /// Reports that reached the base station.
    pub reports_delivered: u64,
    /// Reports lost because a post on their path was dead.
    pub reports_lost: u64,
    /// Total energy radiated by the charger.
    pub charger_energy: Energy,
    /// Total energy actually consumed by nodes.
    pub consumed_energy: Energy,
    /// Per-post consumed energy.
    pub per_post_consumed: Vec<Energy>,
    /// Time and post of the first battery death, if any.
    pub first_death: Option<(f64, usize)>,
    /// Largest intra-post residual-energy spread observed at the end
    /// (fraction of capacity) — small values confirm rotation works.
    pub max_rotation_imbalance: f64,
    /// Periodic state-of-charge samples, if
    /// [`SimConfig::record_soc_every`] was set: `(time, min SoC across
    /// posts, mean SoC)`.
    pub soc_timeline: Vec<(f64, f64, f64)>,
    /// Total distance traveled by patrol chargers, in meters (zero for
    /// the non-spatial policies).
    pub charger_travel_m: f64,
    /// First round at which an injected fault manifested (a node death,
    /// an outage round, or a charger skip/delay), if any.
    pub first_fault_round: Option<u64>,
    /// Rounds the network kept running past the first injected fault
    /// (graceful-degradation horizon; zero when no fault fired).
    pub rounds_after_first_fault: u64,
    /// Due refills the faulty charger skipped.
    pub charger_skips: u64,
    /// Patrol legs the faulty charger delayed.
    pub charger_delays: u64,
    /// Hop transmissions dropped by injected link loss (the carried
    /// reports count toward `reports_lost`, hence `delivery_ratio`).
    pub link_losses: u64,
    /// Worst pooled energy deficit observed at any round boundary while
    /// faults were enabled: `1 − min post state-of-charge`, in `[0, 1]`
    /// (zero for fault-free runs, which skip the audit).
    pub max_energy_deficit: f64,
    /// Cells that reached their end-of-life capacity floor under
    /// injected battery fade (counted once per cell, at the refill that
    /// pinned it).
    pub capacity_floor_hits: u64,
    /// Rounds that began while the charger sat inside an injected
    /// breakdown window (no refills anywhere).
    pub charger_downtime_rounds: u64,
    /// Posts whose batteries first ran empty while the charger was
    /// broken down — deaths attributable to the breakdown.
    pub breakdown_deaths: u64,
    /// Posts whose pooled battery window is shorter than their patrol
    /// charger's full cycle time — they can run dry before the charger
    /// returns, so the tour cannot keep them alive indefinitely.
    /// Computed at setup from the planned routes (sorted, empty for the
    /// non-spatial policies).
    pub tour_infeasible_posts: Vec<usize>,
}

impl SimReport {
    /// Charger energy averaged per completed round.
    #[must_use]
    pub fn charger_energy_per_round(&self) -> Energy {
        if self.rounds_completed == 0 {
            Energy::ZERO
        } else {
            self.charger_energy / self.rounds_completed as f64
        }
    }

    /// Fraction of generated reports that reached the base station —
    /// the headline graceful-degradation metric under faults (`1.0` for
    /// a run that generated no reports).
    #[must_use]
    pub fn delivery_ratio(&self) -> f64 {
        let generated = self.reports_delivered + self.reports_lost;
        if generated == 0 {
            1.0
        } else {
            self.reports_delivered as f64 / generated as f64
        }
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sim: {} rounds, {} delivered / {} lost, charger {}, consumed {}",
            self.rounds_completed,
            self.reports_delivered,
            self.reports_lost,
            self.charger_energy,
            self.consumed_energy
        )
    }
}

#[derive(Debug, PartialEq)]
enum Event {
    Round,
    Patrol,
    /// Patrol charger `charger` arrives at the `stop`-th post of its
    /// route.
    Visit {
        charger: usize,
        stop: usize,
    },
}

/// Executes a [`Solution`] as a live network.
///
/// See the [crate docs](crate) for the modeling assumptions. Constructed
/// per `(instance, solution)` pair, then driven with [`Simulator::run`].
#[derive(Debug)]
pub struct Simulator<'a> {
    instance: &'a Instance,
    solution: &'a Solution,
    config: SimConfig,
    /// One battery per node, grouped by post.
    batteries: Vec<Vec<Battery>>,
    /// Round-robin duty pointer per post.
    duty: Vec<usize>,
    /// Per patrol charger: visited posts, inbound leg lengths (meters),
    /// and the return-to-depot leg.
    patrol_routes: Vec<PatrolRoute>,
    /// Scheduled node deaths sorted by round, consumed front to back.
    pending_deaths: Vec<NodeDeath>,
    next_death: usize,
    /// Random stream for the fault plan's probabilistic faults, rolled
    /// in deterministic event order.
    fault_rng: Option<SmallRng>,
    /// Whether each post has already run a battery empty (used to
    /// attribute at most one death per post to a charger breakdown).
    post_dead: Vec<bool>,
}

#[derive(Debug, Clone)]
struct PatrolRoute {
    posts: Vec<usize>,
    legs_m: Vec<f64>,
    home_leg_m: f64,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator with every battery full.
    ///
    /// # Panics
    ///
    /// Panics if the solution does not belong to the instance or the
    /// config is degenerate (non-positive round interval, zero-capacity
    /// batteries, invalid charger fractions, or a fault plan that fails
    /// [`FaultPlan::validate`]).
    #[must_use]
    pub fn new(instance: &'a Instance, solution: &'a Solution, config: SimConfig) -> Self {
        assert!(
            solution.deployment().is_valid_for(instance),
            "solution does not match instance"
        );
        assert!(
            config.round_interval_s > 0.0 && config.round_interval_s.is_finite(),
            "round interval must be positive"
        );
        assert!(
            config.battery_capacity > Energy::ZERO,
            "batteries need positive capacity"
        );
        assert!(
            config.charger_power_w > 0.0,
            "charger power must be positive (use INFINITY for instant refills)"
        );
        match config.charger {
            ChargerPolicy::Threshold {
                interval_s,
                trigger_soc,
            } => {
                assert!(interval_s > 0.0, "patrol interval must be positive");
                assert!(
                    (0.0..=1.0).contains(&trigger_soc),
                    "trigger SoC must lie in [0, 1]"
                );
            }
            ChargerPolicy::PatrolTour {
                speed_mps,
                trigger_soc,
                chargers,
            } => {
                assert!(speed_mps > 0.0, "charger speed must be positive");
                assert!(
                    (0.0..=1.0).contains(&trigger_soc),
                    "trigger SoC must lie in [0, 1]"
                );
                assert!(chargers >= 1, "need at least one charger");
                assert!(
                    instance.geometry().is_some(),
                    "PatrolTour needs a geometric instance"
                );
            }
            ChargerPolicy::None => {}
        }
        if let Some(order) = &config.tour_order {
            let n = instance.num_posts();
            assert_eq!(order.len(), n, "tour order must visit every post once");
            let mut seen = vec![false; n];
            for &p in order {
                assert!(p < n, "tour order references post {p} of {n}");
                assert!(!seen[p], "tour order visits post {p} twice");
                seen[p] = true;
            }
        }
        let mut pending_deaths = Vec::new();
        let mut fault_rng = None;
        if let Some(plan) = &config.faults {
            if let Err(why) = plan.validate(instance.num_posts()) {
                panic!("invalid fault plan: {why}");
            }
            pending_deaths = plan.node_deaths.clone();
            pending_deaths.sort_by_key(|d| (d.round, d.post));
            fault_rng = Some(SmallRng::seed_from_u64(plan.seed));
        }
        let batteries = solution
            .deployment()
            .counts()
            .iter()
            .map(|&m| vec![Battery::full(config.battery_capacity); m as usize])
            .collect();
        Simulator {
            instance,
            solution,
            config,
            batteries,
            duty: vec![0; instance.num_posts()],
            patrol_routes: Vec::new(),
            pending_deaths,
            next_death: 0,
            fault_rng,
            post_dead: vec![false; instance.num_posts()],
        }
    }

    /// Runs `rounds` reporting rounds and returns the tally.
    #[must_use]
    pub fn run(mut self, rounds: u64) -> SimReport {
        let n = self.instance.num_posts();
        let mut queue: EventQueue<Event> = EventQueue::new();
        for r in 0..rounds {
            queue.schedule(r as f64 * self.config.round_interval_s, Event::Round);
        }
        let end = rounds as f64 * self.config.round_interval_s;
        let mut tour_infeasible_posts: Vec<usize> = Vec::new();
        match self.config.charger {
            ChargerPolicy::Threshold { interval_s, .. } => {
                let mut t = interval_s;
                while t <= end {
                    queue.schedule(t, Event::Patrol);
                    t += interval_s;
                }
            }
            ChargerPolicy::PatrolTour {
                speed_mps,
                chargers,
                ..
            } => {
                let geo = self.instance.geometry().expect("validated in new");
                // Bit-exact coordinate -> post index lookup (points pass
                // through tour planning unmodified).
                let index_of = |pt: wrsn_geom::Point| -> usize {
                    geo.posts
                        .iter()
                        .position(|p| {
                            p.x.to_bits() == pt.x.to_bits() && p.y.to_bits() == pt.y.to_bits()
                        })
                        .expect("tour stops are instance posts")
                };
                // An explicit tour order (from the scheduling solvers)
                // overrides the simulator's own planning; it is split
                // into near-even contiguous chunks, one per charger.
                let routes: Vec<Vec<usize>> = if let Some(order) = &self.config.tour_order {
                    let k = chargers as usize;
                    let base = order.len() / k;
                    let rem = order.len() % k;
                    let mut routes = Vec::with_capacity(k);
                    let mut at = 0;
                    for c in 0..k {
                        let len = base + usize::from(c < rem);
                        routes.push(order[at..at + len].to_vec());
                        at += len;
                    }
                    routes
                } else {
                    let full = PatrolTour::plan(geo.base_station, geo.posts.clone());
                    full.split(chargers as usize)
                        .iter()
                        .map(|tour| {
                            tour.stops_in_order()
                                .iter()
                                .copied()
                                .map(index_of)
                                .collect()
                        })
                        .collect()
                };
                for posts in routes {
                    if posts.is_empty() {
                        continue;
                    }
                    let legs_m: Vec<f64> = posts
                        .iter()
                        .enumerate()
                        .map(|(k, &p)| {
                            if k == 0 {
                                geo.base_station.distance(geo.posts[p])
                            } else {
                                geo.posts[posts[k - 1]].distance(geo.posts[p])
                            }
                        })
                        .collect();
                    let home_leg_m =
                        geo.posts[*posts.last().expect("non-empty")].distance(geo.base_station);
                    let charger = self.patrol_routes.len();
                    let first = legs_m[0] / speed_mps;
                    self.patrol_routes.push(PatrolRoute {
                        posts,
                        legs_m,
                        home_leg_m,
                    });
                    if first <= end {
                        queue.schedule(first, Event::Visit { charger, stop: 0 });
                    }
                }
                tour_infeasible_posts = self.tour_feasibility_audit(speed_mps);
            }
            ChargerPolicy::None => {}
        }

        let mut report = SimReport {
            rounds_completed: 0,
            reports_delivered: 0,
            reports_lost: 0,
            charger_energy: Energy::ZERO,
            consumed_energy: Energy::ZERO,
            per_post_consumed: vec![Energy::ZERO; n],
            first_death: None,
            max_rotation_imbalance: 0.0,
            soc_timeline: Vec::new(),
            charger_travel_m: 0.0,
            first_fault_round: None,
            rounds_after_first_fault: 0,
            charger_skips: 0,
            charger_delays: 0,
            link_losses: 0,
            max_energy_deficit: 0.0,
            capacity_floor_hits: 0,
            charger_downtime_rounds: 0,
            breakdown_deaths: 0,
            tour_infeasible_posts,
        };

        // Hop order: process posts farthest-first so a report traverses
        // its whole path within one round.
        let tree = self.solution.tree();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| tree.depth(b).cmp(&tree.depth(a)).then_with(|| a.cmp(&b)));

        while let Some(ev) = queue.pop() {
            match ev.event {
                Event::Round => {
                    let round = report.rounds_completed;
                    if let Some(plan) = &self.config.faults {
                        if plan.charger_down(round) {
                            report.charger_downtime_rounds += 1;
                            report.first_fault_round.get_or_insert(round);
                        }
                    }
                    self.apply_scheduled_deaths(round, &mut report);
                    self.simulate_round(&order, round, ev.time, &mut report);
                    report.rounds_completed += 1;
                    if self.config.faults.is_some() {
                        if let Some(soc) = self.min_pooled_soc() {
                            report.max_energy_deficit = report.max_energy_deficit.max(1.0 - soc);
                        }
                    }
                    if let Some(every) = self.config.record_soc_every {
                        if every > 0 && report.rounds_completed.is_multiple_of(every) {
                            report.soc_timeline.push(self.soc_sample(ev.time));
                        }
                    }
                }
                Event::Patrol => self.patrol(&mut report),
                Event::Visit { charger, stop } => {
                    let ChargerPolicy::PatrolTour {
                        trigger_soc,
                        speed_mps,
                        ..
                    } = self.config.charger
                    else {
                        unreachable!("visits only exist under the patrol policy")
                    };
                    let route = &self.patrol_routes[charger];
                    let post = route.posts[stop];
                    report.charger_travel_m += route.legs_m[stop];
                    let radiated = self.refill_if_below(post, trigger_soc, &mut report);
                    // Finite charger power makes refills take time,
                    // delaying the rest of the tour.
                    let dwell = if self.config.charger_power_w.is_finite() {
                        radiated.as_joules() / self.config.charger_power_w
                    } else {
                        0.0
                    };
                    let route = &self.patrol_routes[charger];
                    let (next_stop, travel_m) = if stop + 1 < route.posts.len() {
                        (stop + 1, route.legs_m[stop + 1])
                    } else {
                        (0, route.home_leg_m + route.legs_m[0])
                    };
                    // A faulty charger may dawdle before its next leg.
                    let lateness = self.roll_charger_delay(&mut report);
                    let t = queue.now() + dwell + lateness + travel_m / speed_mps;
                    if t <= end {
                        queue.schedule(
                            t,
                            Event::Visit {
                                charger,
                                stop: next_stop,
                            },
                        );
                    }
                }
            }
        }

        // Final rotation-imbalance audit.
        for cells in &self.batteries {
            let max = cells
                .iter()
                .map(|b| b.state_of_charge())
                .fold(0.0, f64::max);
            let min = cells
                .iter()
                .map(|b| b.state_of_charge())
                .fold(1.0, f64::min);
            report.max_rotation_imbalance = report.max_rotation_imbalance.max(max - min);
        }
        if let Some(first) = report.first_fault_round {
            report.rounds_after_first_fault = report.rounds_completed.saturating_sub(first);
        }
        report
    }

    /// First-order patrol feasibility: a post is flagged when its pooled
    /// battery window (full pool divided by per-round drain, in seconds)
    /// is shorter than its charger's full cycle time — the charger
    /// cannot come back before the post runs dry, whatever the trigger
    /// threshold. Dwell and fault delays are ignored (they only make
    /// cycles longer), so this is an optimistic audit: flagged posts are
    /// genuinely unsustainable.
    fn tour_feasibility_audit(&self, speed_mps: f64) -> Vec<usize> {
        let per_bit = self.solution.tree().per_post_energy(self.instance);
        let bits = self.config.bits_per_report as f64;
        let mut flagged = Vec::new();
        for route in &self.patrol_routes {
            let cycle_m: f64 = route.legs_m.iter().sum::<f64>() + route.home_leg_m;
            let cycle_s = cycle_m / speed_mps;
            for &p in &route.posts {
                let per_round = (per_bit[p] * bits + self.instance.sensing_energy(p)).as_njoules();
                if per_round <= 0.0 {
                    continue;
                }
                let pool =
                    self.config.battery_capacity.as_njoules() * self.batteries[p].len() as f64;
                let window_s = pool / per_round * self.config.round_interval_s;
                if window_s < cycle_s {
                    flagged.push(p);
                }
            }
        }
        flagged.sort_unstable();
        flagged
    }

    /// Removes one node per scheduled [`NodeDeath`] due at `round` (its
    /// residual charge dies with it); a post whose last node dies goes
    /// permanently dark.
    fn apply_scheduled_deaths(&mut self, round: u64, report: &mut SimReport) {
        while let Some(death) = self.pending_deaths.get(self.next_death) {
            if death.round > round {
                break;
            }
            let p = death.post;
            self.next_death += 1;
            if self.batteries[p].pop().is_some() {
                report.first_fault_round.get_or_insert(round);
                let m = self.batteries[p].len();
                if m > 0 {
                    self.duty[p] %= m;
                }
            }
        }
    }

    /// Rolls the fault plan's charger-skip die (only called once a
    /// refill is actually due).
    fn roll_charger_skip(&mut self, report: &mut SimReport) -> bool {
        let Some(plan) = &self.config.faults else {
            return false;
        };
        if plan.charger_skip_prob <= 0.0 {
            return false;
        }
        let prob = plan.charger_skip_prob;
        let rng = self.fault_rng.as_mut().expect("rng set alongside plan");
        if rng.random::<f64>() < prob {
            report.charger_skips += 1;
            report
                .first_fault_round
                .get_or_insert(report.rounds_completed);
            true
        } else {
            false
        }
    }

    /// Rolls the fault plan's patrol-delay die, returning the extra
    /// seconds added to the charger's next leg.
    fn roll_charger_delay(&mut self, report: &mut SimReport) -> f64 {
        let Some(plan) = &self.config.faults else {
            return 0.0;
        };
        if plan.charger_delay_prob <= 0.0 {
            return 0.0;
        }
        let prob = plan.charger_delay_prob;
        let delay_s = plan.charger_delay_s;
        let rng = self.fault_rng.as_mut().expect("rng set alongside plan");
        if rng.random::<f64>() < prob {
            report.charger_delays += 1;
            report
                .first_fault_round
                .get_or_insert(report.rounds_completed);
            delay_s
        } else {
            0.0
        }
    }

    /// Rolls the fault plan's per-hop link-loss die for one transmitting
    /// post (only called after the transmit energy was actually paid).
    fn roll_link_loss(&mut self, round: u64, report: &mut SimReport) -> bool {
        let Some(plan) = &self.config.faults else {
            return false;
        };
        if plan.link_loss_prob <= 0.0 {
            return false;
        }
        let prob = plan.link_loss_prob;
        let rng = self.fault_rng.as_mut().expect("rng set alongside plan");
        if rng.random::<f64>() < prob {
            report.link_losses += 1;
            report.first_fault_round.get_or_insert(round);
            true
        } else {
            false
        }
    }

    /// The lowest pooled state of charge across posts that still have
    /// nodes (`None` once every post has lost all its nodes).
    fn min_pooled_soc(&self) -> Option<f64> {
        self.batteries
            .iter()
            .filter(|cells| !cells.is_empty())
            .map(|cells| {
                let level: Energy = cells.iter().map(|b| b.level()).sum();
                let capacity: Energy = cells.iter().map(|b| b.capacity()).sum();
                level / capacity
            })
            .reduce(f64::min)
    }

    /// One reporting round: every live post pays its sensing budget and
    /// originates a report of `rate_p · bits_per_report` bits; dead or
    /// offline posts on a path kill the reports they carry (tallied as
    /// lost).
    #[allow(clippy::needless_range_loop)] // walks several parallel per-post arrays
    fn simulate_round(&mut self, order: &[usize], round: u64, time: f64, report: &mut SimReport) {
        let n = self.instance.num_posts();
        let bits = self.config.bits_per_report as f64;
        let bs = self.instance.bs();
        let tree = self.solution.tree();
        // Posts inside an injected outage window neither sense nor relay
        // this round (their batteries are untouched).
        let mut offline = vec![false; n];
        if let Some(plan) = &self.config.faults {
            for p in 0..n {
                if plan.offline(p, round) {
                    offline[p] = true;
                }
            }
        }
        if offline.iter().any(|&o| o) {
            report.first_fault_round.get_or_insert(round);
        }
        // Deployment-independent (sensing/computation) consumption.
        let mut sensing_dead = vec![false; n];
        for p in 0..n {
            if offline[p] {
                continue;
            }
            let sensing = self.instance.sensing_energy(p);
            if sensing > Energy::ZERO && !self.drain(p, sensing, time, report) {
                sensing_dead[p] = true;
            }
        }
        // Packets (for delivery stats) and bits (for energy) in flight.
        let mut packets = vec![0u64; n];
        let mut bits_inflight = vec![0f64; n];
        for p in 0..n {
            packets[p] = 1;
            bits_inflight[p] = self.instance.report_rate(p) * bits;
        }
        for &p in order {
            if packets[p] == 0 {
                continue;
            }
            if offline[p] || sensing_dead[p] {
                report.reports_lost += packets[p];
                continue;
            }
            let parent = tree.parent(p);
            let tx = tree.tx_energy(self.instance, p) * bits_inflight[p];
            // Reception for forwarded traffic was already billed when it
            // arrived (below); here bill the transmission, then deliver.
            if !self.drain(p, tx, time, report) {
                report.reports_lost += packets[p];
                continue;
            }
            if self.roll_link_loss(round, report) {
                // The link dropped the frame after the sender paid to
                // transmit it; everything it carried is gone.
                report.reports_lost += packets[p];
            } else if parent == bs {
                report.reports_delivered += packets[p];
            } else if offline[parent] {
                // The sender paid to transmit, but nobody was listening.
                report.reports_lost += packets[p];
            } else {
                let rx = self.instance.rx_energy() * bits_inflight[p];
                if self.drain(parent, rx, time, report) {
                    packets[parent] += packets[p];
                    bits_inflight[parent] += bits_inflight[p];
                } else {
                    report.reports_lost += packets[p];
                }
            }
            // Rotate duty for the next round.
            let m = self.batteries[p].len();
            self.duty[p] = (self.duty[p] + 1) % m;
        }
    }

    /// Drains `amount` from post `p`'s duty node; on failure the post is
    /// considered dead for this round. A post with no nodes left (all
    /// killed by the fault plan) is permanently dead.
    fn drain(&mut self, p: usize, amount: Energy, time: f64, report: &mut SimReport) -> bool {
        if self.batteries[p].is_empty() {
            report.first_death.get_or_insert((time, p));
            // Losing every node is kill-attributable, not a battery
            // death; mark the post so breakdowns do not claim it later.
            self.post_dead[p] = true;
            return false;
        }
        let duty = self.duty[p];
        let cell = &mut self.batteries[p][duty];
        match cell.drain(amount) {
            Ok(()) => {
                report.consumed_energy += amount;
                report.per_post_consumed[p] += amount;
                true
            }
            Err(_) => {
                report.first_death.get_or_insert((time, p));
                if !self.post_dead[p] {
                    self.post_dead[p] = true;
                    let down = self
                        .config
                        .faults
                        .as_ref()
                        .is_some_and(|plan| plan.charger_down(report.rounds_completed));
                    if down {
                        report.breakdown_deaths += 1;
                    }
                }
                false
            }
        }
    }

    /// The charger visits every post below the trigger and refills it,
    /// paying `delivered / η(m)`.
    fn patrol(&mut self, report: &mut SimReport) {
        let ChargerPolicy::Threshold { trigger_soc, .. } = self.config.charger else {
            return;
        };
        for p in 0..self.batteries.len() {
            let _ = self.refill_if_below(p, trigger_soc, report);
        }
    }

    /// A `(time, min, mean)` pooled state-of-charge sample across posts.
    /// A post with no nodes left counts as zero charge.
    fn soc_sample(&self, time: f64) -> (f64, f64, f64) {
        let mut min = 1.0f64;
        let mut total = 0.0;
        for cells in &self.batteries {
            let soc = if cells.is_empty() {
                0.0
            } else {
                let level: Energy = cells.iter().map(|b| b.level()).sum();
                let capacity: Energy = cells.iter().map(|b| b.capacity()).sum();
                level / capacity
            };
            min = min.min(soc);
            total += soc;
        }
        (time, min, total / self.batteries.len() as f64)
    }

    /// Tops post `p` up to full if its pooled state of charge is below
    /// `trigger_soc`, billing the charger `delivered / η(m)`. Returns the
    /// charger energy radiated (zero when the post did not need a top-up).
    fn refill_if_below(&mut self, p: usize, trigger_soc: f64, report: &mut SimReport) -> Energy {
        // A broken-down charger services nobody — no skip die is rolled
        // (the charger is absent, not misbehaving), so the rng stream
        // stays aligned across runs that differ only in window phase.
        if self
            .config
            .faults
            .as_ref()
            .is_some_and(|plan| plan.charger_down(report.rounds_completed))
        {
            return Energy::ZERO;
        }
        let cells = &self.batteries[p];
        if cells.is_empty() {
            // All nodes at this post are dead; nothing left to charge.
            return Energy::ZERO;
        }
        let m = cells.len() as u32;
        let level: Energy = cells.iter().map(|b| b.level()).sum();
        let capacity: Energy = cells.iter().map(|b| b.capacity()).sum();
        if level / capacity >= trigger_soc {
            return Energy::ZERO;
        }
        // The refill is due — a faulty charger may skip it anyway.
        if self.roll_charger_skip(report) {
            return Energy::ZERO;
        }
        // Each top-up ages the cells by one charge cycle before they are
        // refilled, so faded capacity bounds what the charger delivers.
        let fade = self
            .config
            .faults
            .as_ref()
            .filter(|plan| plan.battery_fade_frac > 0.0)
            .map(|plan| {
                let floor = self.config.battery_capacity * plan.battery_fade_floor;
                (plan.battery_fade_frac, floor)
            });
        // Simultaneous charging: every node in the post is topped up in
        // one pass of the charger.
        let mut delivered = Energy::ZERO;
        let cells = &mut self.batteries[p];
        for cell in cells.iter_mut() {
            if let Some((frac, floor)) = fade {
                let fresh = cell.capacity() > floor;
                if cell.fade(frac, floor) && fresh {
                    report.capacity_floor_hits += 1;
                }
            }
            let need = cell.capacity() - cell.level();
            let overflow = cell.charge(need);
            debug_assert_eq!(overflow, Energy::ZERO);
            delivered += need;
        }
        let radiated = delivered / self.instance.charge_efficiency(m.max(1));
        report.charger_energy += radiated;
        radiated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrsn_core::{Idb, InstanceSampler, Solver};
    use wrsn_geom::Field;

    fn small_solution() -> (Instance, Solution) {
        let inst = InstanceSampler::new(Field::square(150.0), 5, 15).sample(3);
        let sol = Idb::new(1).solve(&inst).unwrap();
        (inst, sol)
    }

    #[test]
    fn all_reports_delivered_with_charger() {
        let (inst, sol) = small_solution();
        let report = Simulator::new(&inst, &sol, SimConfig::default()).run(200);
        assert_eq!(report.rounds_completed, 200);
        assert_eq!(report.reports_delivered, 200 * 5);
        assert_eq!(report.reports_lost, 0);
        assert!(report.first_death.is_none());
    }

    #[test]
    fn charger_energy_matches_analytic_cost() {
        let (inst, sol) = small_solution();
        let rounds = 3000;
        // Small batteries and frequent patrols shrink the end-of-run
        // accounting lag (energy consumed but not yet re-charged).
        let config = SimConfig {
            battery_capacity: Energy::from_joules(0.02),
            charger: ChargerPolicy::Threshold {
                interval_s: 2.0,
                trigger_soc: 0.5,
            },
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config.clone()).run(rounds);
        // Analytic: cost is per bit; per round each post reports
        // bits_per_report bits.
        let analytic_per_round = sol.total_cost() * config.bits_per_report as f64;
        let simulated = report.charger_energy_per_round();
        // The charger lags the drain by up to the battery capacity, so
        // compare with a tolerance that shrinks with run length.
        let rel = (simulated.as_njoules() - analytic_per_round.as_njoules()).abs()
            / analytic_per_round.as_njoules();
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn no_charger_leads_to_death() {
        let (inst, sol) = small_solution();
        let config = SimConfig {
            charger: ChargerPolicy::None,
            battery_capacity: Energy::from_ujoules(2000.0),
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config).run(3000);
        assert!(report.first_death.is_some(), "{report}");
        assert!(report.reports_lost > 0);
        assert_eq!(report.charger_energy, Energy::ZERO);
    }

    #[test]
    fn rotation_keeps_residual_energy_level() {
        let (inst, sol) = small_solution();
        let report = Simulator::new(&inst, &sol, SimConfig::default()).run(500);
        // After many rounds with rotation + refills, intra-post spread
        // stays a small fraction of capacity.
        assert!(
            report.max_rotation_imbalance < 0.25,
            "imbalance {}",
            report.max_rotation_imbalance
        );
    }

    #[test]
    fn consumed_energy_matches_tree_accounting() {
        let (inst, sol) = small_solution();
        let config = SimConfig::default();
        let rounds = 100;
        let report = Simulator::new(&inst, &sol, config.clone()).run(rounds);
        let per_round_expected: Energy = sol
            .tree()
            .per_post_energy(&inst)
            .iter()
            .copied()
            .sum::<Energy>()
            * config.bits_per_report as f64;
        let expected = per_round_expected * rounds as f64;
        let rel = (report.consumed_energy.as_njoules() - expected.as_njoules()).abs()
            / expected.as_njoules();
        assert!(rel < 1e-9, "relative error {rel}");
    }

    #[test]
    fn per_post_consumption_profile_matches() {
        let (inst, sol) = small_solution();
        let config = SimConfig::default();
        let report = Simulator::new(&inst, &sol, config.clone()).run(50);
        let expected = sol.tree().per_post_energy(&inst);
        for (p, (&got, &want)) in report
            .per_post_consumed
            .iter()
            .zip(expected.iter())
            .enumerate()
        {
            let want = want * config.bits_per_report as f64 * 50.0;
            assert!(
                (got.as_njoules() - want.as_njoules()).abs() < 1e-3,
                "post {p}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn zero_rounds_is_a_noop() {
        let (inst, sol) = small_solution();
        let report = Simulator::new(&inst, &sol, SimConfig::default()).run(0);
        assert_eq!(report.rounds_completed, 0);
        assert_eq!(report.charger_energy_per_round(), Energy::ZERO);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn mismatched_solution_rejected() {
        let (inst, _) = small_solution();
        let other_inst = InstanceSampler::new(Field::square(150.0), 6, 15).sample(9);
        let other_sol = Idb::new(1).solve(&other_inst).unwrap();
        let _ = Simulator::new(&inst, &other_sol, SimConfig::default());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_round_interval_rejected() {
        let (inst, sol) = small_solution();
        let config = SimConfig {
            round_interval_s: 0.0,
            ..SimConfig::default()
        };
        let _ = Simulator::new(&inst, &sol, config);
    }

    #[test]
    fn patrol_tour_keeps_network_alive_at_sufficient_speed() {
        let (inst, sol) = small_solution();
        let geo = inst.geometry().unwrap();
        let tour = crate::PatrolTour::plan(geo.base_station, geo.posts.clone());
        let capacity = Energy::from_joules(0.05);
        let min_speed = crate::min_patrol_speed(
            &inst,
            &sol,
            &tour,
            capacity,
            SimConfig::default().bits_per_report,
            1.0,
            2.0,
        )
        .unwrap();
        let config = SimConfig {
            battery_capacity: capacity,
            charger: ChargerPolicy::PatrolTour {
                speed_mps: min_speed.max(0.5),
                trigger_soc: 0.9,
                chargers: 1,
            },
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config).run(1000);
        assert!(report.first_death.is_none(), "{report}");
        assert_eq!(report.reports_lost, 0);
        assert!(report.charger_energy > Energy::ZERO);
    }

    #[test]
    fn patrol_tour_too_slow_starves_the_network() {
        // Failure injection: a crawling charger cannot keep up with a
        // heavy reporting load on small batteries.
        let (inst, sol) = small_solution();
        let config = SimConfig {
            battery_capacity: Energy::from_ujoules(3000.0),
            charger: ChargerPolicy::PatrolTour {
                speed_mps: 0.001,
                trigger_soc: 0.9,
                chargers: 1,
            },
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config).run(3000);
        assert!(report.first_death.is_some());
        assert!(report.reports_lost > 0);
        // The setup audit predicts the starvation: a crawling charger's
        // cycle dwarfs every battery window, so all posts are flagged.
        assert_eq!(
            report.tour_infeasible_posts,
            (0..inst.num_posts()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn fast_patrol_flags_no_posts_as_infeasible() {
        let (inst, sol) = small_solution();
        let config = SimConfig {
            charger: ChargerPolicy::PatrolTour {
                speed_mps: 1000.0,
                trigger_soc: 0.9,
                chargers: 1,
            },
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config).run(100);
        assert!(report.tour_infeasible_posts.is_empty());
        // Non-spatial policies never flag anything.
        let report = Simulator::new(&inst, &sol, SimConfig::default()).run(10);
        assert!(report.tour_infeasible_posts.is_empty());
    }

    #[test]
    fn explicit_tour_order_is_followed_verbatim() {
        let (inst, sol) = small_solution();
        let n = inst.num_posts();
        let geo = inst.geometry().unwrap();
        // Visit posts in reverse index order — almost surely different
        // from the planner's 2-opt tour — and check the travel distance
        // matches the prescribed route exactly over one cycle.
        let order: Vec<usize> = (0..n).rev().collect();
        let mut expected_first_cycle = geo.base_station.distance(geo.posts[order[0]]);
        for w in order.windows(2) {
            expected_first_cycle += geo.posts[w[0]].distance(geo.posts[w[1]]);
        }
        let cycle_with_home =
            expected_first_cycle + geo.posts[*order.last().unwrap()].distance(geo.base_station);
        let speed = 1000.0;
        let rounds = 2; // long enough for exactly one pass, instant refills
        let config = SimConfig {
            charger: ChargerPolicy::PatrolTour {
                speed_mps: speed,
                trigger_soc: 1.0,
                chargers: 1,
            },
            tour_order: Some(order.clone()),
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config).run(rounds);
        // Travel accrues per visited leg; with a fast charger the tour
        // wraps, so the total is a whole number of prescribed cycles
        // plus a prefix of the prescribed legs — in particular the first
        // cycle's distance must be consistent with the order given.
        assert!(report.charger_travel_m >= expected_first_cycle - 1e-9);
        let cycles = report.charger_travel_m / cycle_with_home;
        assert!(cycles > 1.0, "expected multiple cycles, got {cycles}");
    }

    #[test]
    fn explicit_tour_order_splits_across_chargers() {
        let (inst, sol) = small_solution();
        let n = inst.num_posts();
        let order: Vec<usize> = (0..n).collect();
        let config = SimConfig {
            charger: ChargerPolicy::PatrolTour {
                speed_mps: 50.0,
                trigger_soc: 0.9,
                chargers: 2,
            },
            tour_order: Some(order),
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config).run(200);
        assert!(report.charger_travel_m > 0.0);
        assert!(report.first_death.is_none());
    }

    #[test]
    #[should_panic(expected = "visits post 1 twice")]
    fn duplicate_tour_order_rejected() {
        let (inst, sol) = small_solution();
        let config = SimConfig {
            charger: ChargerPolicy::PatrolTour {
                speed_mps: 1.0,
                trigger_soc: 0.5,
                chargers: 1,
            },
            tour_order: Some(vec![0, 1, 1, 2, 3]),
            ..SimConfig::default()
        };
        let _ = Simulator::new(&inst, &sol, config);
    }

    #[test]
    #[should_panic(expected = "every post once")]
    fn short_tour_order_rejected() {
        let (inst, sol) = small_solution();
        let config = SimConfig {
            charger: ChargerPolicy::PatrolTour {
                speed_mps: 1.0,
                trigger_soc: 0.5,
                chargers: 1,
            },
            tour_order: Some(vec![0, 1]),
            ..SimConfig::default()
        };
        let _ = Simulator::new(&inst, &sol, config);
    }

    #[test]
    #[should_panic(expected = "geometric")]
    fn patrol_tour_requires_geometry() {
        use wrsn_core::InstanceBuilder;
        let e = Energy::from_njoules(4.0);
        let inst = InstanceBuilder::new(2, 2)
            .uplink(0, 2, e)
            .uplink(1, 0, e)
            .build()
            .unwrap();
        let sol = Idb::new(1).solve(&inst).unwrap();
        let config = SimConfig {
            charger: ChargerPolicy::PatrolTour {
                speed_mps: 1.0,
                trigger_soc: 0.5,
                chargers: 1,
            },
            ..SimConfig::default()
        };
        let _ = Simulator::new(&inst, &sol, config);
    }

    #[test]
    fn profiled_instance_consumption_matches_accounting() {
        use wrsn_core::InstanceBuilder;
        let nj = Energy::from_njoules;
        // Chain 1 -> 0 -> BS with a heavy reporter and sensing load.
        let inst = InstanceBuilder::new(2, 4)
            .rx_energy(nj(2.0))
            .uplink(0, 2, nj(4.0))
            .uplink(1, 0, nj(4.0))
            .report_rates(vec![1.0, 3.0])
            .sensing_energies(vec![nj(50.0), Energy::ZERO])
            .build()
            .unwrap();
        let sol = Idb::new(1).solve(&inst).unwrap();
        let config = SimConfig {
            bits_per_report: 100,
            ..SimConfig::default()
        };
        let rounds = 40;
        let report = Simulator::new(&inst, &sol, config.clone()).run(rounds);
        // Expected per round: traffic (per_post_energy * bits) + sensing.
        let expected_traffic: Energy = sol
            .tree()
            .per_post_energy(&inst)
            .iter()
            .copied()
            .sum::<Energy>()
            * 100.0;
        let expected = (expected_traffic + nj(50.0)) * rounds as f64;
        let rel = (report.consumed_energy.as_njoules() - expected.as_njoules()).abs()
            / expected.as_njoules();
        assert!(
            rel < 1e-9,
            "consumed {} vs expected {expected}",
            report.consumed_energy
        );
        assert_eq!(report.reports_delivered, 2 * rounds);
    }

    #[test]
    fn sensing_only_death_loses_reports() {
        use wrsn_core::InstanceBuilder;
        let nj = Energy::from_njoules;
        // Post 1 burns its battery on sensing alone; no charger.
        let inst = InstanceBuilder::new(2, 2)
            .uplink(0, 2, nj(1.0))
            .uplink(1, 0, nj(1.0))
            .sensing_energies(vec![Energy::ZERO, Energy::from_ujoules(1.0)])
            .build()
            .unwrap();
        let sol = Idb::new(1).solve(&inst).unwrap();
        let config = SimConfig {
            bits_per_report: 1,
            battery_capacity: Energy::from_ujoules(5.0),
            charger: ChargerPolicy::None,
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config.clone()).run(50);
        let (_, dead_post) = report.first_death.unwrap();
        assert_eq!(dead_post, 1);
        assert!(report.reports_lost > 0);
        // Post 0 keeps delivering its own reports.
        assert!(report.reports_delivered >= 50);
    }

    #[test]
    fn more_chargers_keep_the_soc_floor_higher() {
        // Splitting the patrol across chargers shortens every post's
        // revisit interval, so the worst observed state of charge can
        // only improve.
        let (inst, sol) = small_solution();
        let mk = |chargers: u32| SimConfig {
            battery_capacity: Energy::from_joules(0.09),
            charger: ChargerPolicy::PatrolTour {
                speed_mps: 4.0,
                trigger_soc: 0.95,
                chargers,
            },
            record_soc_every: Some(5),
            ..SimConfig::default()
        };
        let floor = |report: &SimReport| {
            report
                .soc_timeline
                .iter()
                .map(|&(_, min, _)| min)
                .fold(1.0f64, f64::min)
        };
        let one = Simulator::new(&inst, &sol, mk(1)).run(1500);
        let three = Simulator::new(&inst, &sol, mk(3)).run(1500);
        assert!(one.first_death.is_none() && three.first_death.is_none());
        assert!(
            floor(&three) >= floor(&one) - 0.02,
            "3-charger floor {} vs 1-charger floor {}",
            floor(&three),
            floor(&one)
        );
    }

    #[test]
    fn patrol_travel_distance_tracks_cycles() {
        let (inst, sol) = small_solution();
        let geo = inst.geometry().unwrap();
        let tour = crate::PatrolTour::plan(geo.base_station, geo.posts.clone());
        let speed = 5.0;
        let rounds = 600u64;
        let config = SimConfig {
            charger: ChargerPolicy::PatrolTour {
                speed_mps: speed,
                trigger_soc: 0.5,
                chargers: 1,
            },
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config.clone()).run(rounds);
        // Visits only count outbound+inter-stop legs; distance must lie
        // within one cycle of cycles-completed * full length.
        let cycles = rounds as f64 / tour.cycle_s(speed);
        assert!(report.charger_travel_m > (cycles - 1.5) * tour.length() * 0.8);
        assert!(report.charger_travel_m < (cycles + 1.0) * tour.length());
        // No travel for the teleporting threshold policy.
        let report2 = Simulator::new(&inst, &sol, SimConfig::default()).run(100);
        assert_eq!(report2.charger_travel_m, 0.0);
    }

    #[test]
    fn finite_charger_power_slows_the_patrol() {
        // With a weak charger, refills dominate the cycle: fewer posts
        // get topped up in the same horizon, so less distance is covered
        // and less energy delivered than with an instant charger.
        let (inst, sol) = small_solution();
        let mk = |power: f64| SimConfig {
            charger: ChargerPolicy::PatrolTour {
                speed_mps: 5.0,
                trigger_soc: 0.9,
                chargers: 1,
            },
            charger_power_w: power,
            ..SimConfig::default()
        };
        let instant = Simulator::new(&inst, &sol, mk(f64::INFINITY)).run(800);
        let weak = Simulator::new(&inst, &sol, mk(0.05)).run(800);
        assert!(
            weak.charger_travel_m < instant.charger_travel_m,
            "weak {} vs instant {}",
            weak.charger_travel_m,
            instant.charger_travel_m
        );
    }

    #[test]
    #[should_panic(expected = "charger power")]
    fn zero_charger_power_rejected() {
        let (inst, sol) = small_solution();
        let config = SimConfig {
            charger_power_w: 0.0,
            ..SimConfig::default()
        };
        let _ = Simulator::new(&inst, &sol, config);
    }

    #[test]
    fn soc_timeline_records_samples() {
        let (inst, sol) = small_solution();
        let config = SimConfig {
            record_soc_every: Some(10),
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config).run(100);
        assert_eq!(report.soc_timeline.len(), 10);
        for &(t, min, mean) in &report.soc_timeline {
            assert!(t >= 0.0);
            assert!((0.0..=1.0).contains(&min));
            assert!(min <= mean && mean <= 1.0);
        }
        // Times strictly increase.
        for w in report.soc_timeline.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn report_display() {
        let (inst, sol) = small_solution();
        let report = Simulator::new(&inst, &sol, SimConfig::default()).run(3);
        assert!(format!("{report}").contains("3 rounds"));
    }

    #[test]
    fn fault_free_runs_report_no_degradation() {
        let (inst, sol) = small_solution();
        let report = Simulator::new(&inst, &sol, SimConfig::default()).run(100);
        assert_eq!(report.first_fault_round, None);
        assert_eq!(report.rounds_after_first_fault, 0);
        assert_eq!(report.charger_skips, 0);
        assert_eq!(report.charger_delays, 0);
        assert_eq!(report.link_losses, 0);
        assert_eq!(report.max_energy_deficit, 0.0);
        assert_eq!(report.capacity_floor_hits, 0);
        assert_eq!(report.charger_downtime_rounds, 0);
        assert_eq!(report.breakdown_deaths, 0);
        assert_eq!(report.delivery_ratio(), 1.0);
    }

    #[test]
    fn total_link_loss_delivers_nothing() {
        let (inst, sol) = small_solution();
        let n = inst.num_posts() as u64;
        let config = SimConfig {
            faults: Some(FaultPlan::seeded(3).link_loss(1.0)),
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config).run(100);
        assert_eq!(report.reports_delivered, 0);
        assert_eq!(report.reports_lost, 100 * n, "every report is lost");
        assert!(report.link_losses > 0);
        assert_eq!(report.delivery_ratio(), 0.0);
        assert_eq!(report.first_fault_round, Some(0));
        // The senders still paid to transmit into the void.
        assert!(report.consumed_energy > Energy::ZERO);
    }

    #[test]
    fn partial_link_loss_degrades_delivery_ratio() {
        let (inst, sol) = small_solution();
        let n = inst.num_posts() as u64;
        let config = SimConfig {
            faults: Some(FaultPlan::seeded(9).link_loss(0.2)),
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config).run(200);
        assert!(report.link_losses > 0);
        assert!(report.reports_delivered > 0);
        assert!(report.reports_lost > 0);
        assert_eq!(report.reports_delivered + report.reports_lost, 200 * n);
        let ratio = report.delivery_ratio();
        assert!(ratio > 0.0 && ratio < 1.0, "ratio {ratio}");
    }

    #[test]
    fn same_link_loss_seed_replays_identically() {
        let (inst, sol) = small_solution();
        let config = SimConfig {
            faults: Some(FaultPlan::seeded(11).link_loss(0.3)),
            ..SimConfig::default()
        };
        let a = Simulator::new(&inst, &sol, config.clone()).run(300);
        let b = Simulator::new(&inst, &sol, config).run(300);
        assert_eq!(a, b, "seeded link loss must replay bit-identically");
        assert!(a.link_losses > 0);
    }

    #[test]
    fn scheduled_node_deaths_kill_a_post_and_its_reports() {
        let (inst, sol) = small_solution();
        // Kill every node post 0 could possibly have: the post goes
        // permanently dark at round 50 (extra deaths are no-ops).
        let mut plan = FaultPlan::seeded(0);
        for _ in 0..sol.deployment().counts()[0] {
            plan = plan.kill_node(50, 0);
        }
        let config = SimConfig {
            faults: Some(plan),
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config).run(200);
        assert_eq!(report.first_fault_round, Some(50));
        assert_eq!(report.rounds_after_first_fault, 150);
        // Post 0 stops delivering; everything routed through it is lost.
        assert!(report.reports_lost >= 150);
        assert!(report.delivery_ratio() < 1.0);
        assert!(report.first_death.is_some());
        // The network as a whole keeps running.
        assert_eq!(report.rounds_completed, 200);
        assert!(report.reports_delivered > 0);
    }

    #[test]
    fn outage_losses_are_confined_to_the_window() {
        let (inst, sol) = small_solution();
        let n = inst.num_posts() as u64;
        let config = SimConfig {
            faults: Some(FaultPlan::seeded(0).outage(0, 10, 20)),
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config).run(100);
        assert_eq!(report.first_fault_round, Some(10));
        assert_eq!(report.rounds_after_first_fault, 90);
        // At least the post's own ten reports die; at most every post
        // loses its report for each of the ten dark rounds.
        assert!(report.reports_lost >= 10);
        assert!(report.reports_lost <= 10 * n);
        // The post rejoins: total delivery beats an all-run outage.
        assert_eq!(
            report.reports_delivered + report.reports_lost,
            100 * n,
            "every generated report is accounted for"
        );
        assert!(report.delivery_ratio() > 0.8);
    }

    #[test]
    fn same_fault_seed_replays_the_exact_same_run() {
        let (inst, sol) = small_solution();
        let config = SimConfig {
            battery_capacity: Energy::from_joules(0.02),
            charger: ChargerPolicy::Threshold {
                interval_s: 2.0,
                trigger_soc: 0.5,
            },
            faults: Some(FaultPlan::seeded(42).charger_skips(0.5)),
            ..SimConfig::default()
        };
        let a = Simulator::new(&inst, &sol, config.clone()).run(500);
        let b = Simulator::new(&inst, &sol, config).run(500);
        assert_eq!(a, b, "seeded fault injection must replay bit-identically");
        assert!(a.charger_skips > 0, "the skip die was rolled {a}");
    }

    #[test]
    fn always_skipping_charger_behaves_like_no_charger() {
        let (inst, sol) = small_solution();
        let config = SimConfig {
            battery_capacity: Energy::from_ujoules(2000.0),
            faults: Some(FaultPlan::seeded(1).charger_skips(1.0)),
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config).run(3000);
        assert!(report.charger_skips > 0);
        assert!(report.first_death.is_some(), "{report}");
        assert!(report.reports_lost > 0);
        assert_eq!(report.charger_energy, Energy::ZERO);
        // Batteries ran dry: the worst pooled deficit approaches 1.
        assert!(
            report.max_energy_deficit > 0.5,
            "deficit {}",
            report.max_energy_deficit
        );
    }

    #[test]
    fn delayed_patrol_chargers_cover_less_ground() {
        let (inst, sol) = small_solution();
        let mk = |faults: Option<FaultPlan>| SimConfig {
            charger: ChargerPolicy::PatrolTour {
                speed_mps: 5.0,
                trigger_soc: 0.5,
                chargers: 1,
            },
            faults,
            ..SimConfig::default()
        };
        let clean = Simulator::new(&inst, &sol, mk(None)).run(600);
        let faulty = Simulator::new(
            &inst,
            &sol,
            mk(Some(FaultPlan::seeded(5).charger_delays(1.0, 10.0))),
        )
        .run(600);
        assert!(faulty.charger_delays > 0);
        assert!(
            faulty.charger_travel_m < clean.charger_travel_m,
            "delayed {} vs clean {}",
            faulty.charger_travel_m,
            clean.charger_travel_m
        );
    }

    #[test]
    fn battery_fade_pins_cells_at_the_floor() {
        let (inst, sol) = small_solution();
        let total_cells: u32 = sol.deployment().counts().iter().sum();
        let config = SimConfig {
            battery_capacity: Energy::from_joules(0.02),
            charger: ChargerPolicy::Threshold {
                interval_s: 2.0,
                trigger_soc: 0.5,
            },
            faults: Some(FaultPlan::seeded(4).battery_fade(0.25)),
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config).run(1000);
        assert!(report.capacity_floor_hits > 0, "{report}");
        // Each cell is counted once, at the refill that pinned it.
        assert!(report.capacity_floor_hits <= u64::from(total_cells));
        assert!(report.charger_energy > Energy::ZERO);
        // Fade is degradation, not a discrete fault event.
        assert_eq!(report.first_fault_round, None);
    }

    #[test]
    fn charger_downtime_covers_exactly_the_breakdown_window() {
        let (inst, sol) = small_solution();
        let config = SimConfig {
            faults: Some(FaultPlan::seeded(0).charger_breakdown(10, 60)),
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config).run(100);
        assert_eq!(report.charger_downtime_rounds, 50);
        assert_eq!(report.first_fault_round, Some(10));
        assert_eq!(report.rounds_after_first_fault, 90);
        // Default batteries ride out a 50-round gap without dying.
        assert!(report.first_death.is_none(), "{report}");
        assert_eq!(report.breakdown_deaths, 0);
    }

    #[test]
    fn long_breakdown_starves_posts_and_attributes_their_deaths() {
        let (inst, sol) = small_solution();
        let config = SimConfig {
            battery_capacity: Energy::from_ujoules(2000.0),
            // The window outlasts the horizon: the final patrol (which
            // fires at the round-3000 boundary) is still covered.
            faults: Some(FaultPlan::seeded(2).charger_breakdown(0, 4000)),
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config).run(3000);
        assert_eq!(report.charger_downtime_rounds, 3000);
        assert_eq!(report.charger_energy, Energy::ZERO, "charger was absent");
        assert!(report.first_death.is_some(), "{report}");
        assert!(report.breakdown_deaths > 0);
        assert!(report.breakdown_deaths <= inst.num_posts() as u64);
        assert!(report.reports_lost > 0);
    }

    #[test]
    fn degradation_axes_replay_identically_under_one_seed() {
        let (inst, sol) = small_solution();
        let config = SimConfig {
            battery_capacity: Energy::from_joules(0.01),
            charger: ChargerPolicy::Threshold {
                interval_s: 2.0,
                trigger_soc: 0.6,
            },
            faults: Some(
                FaultPlan::seeded(77)
                    .charger_skips(0.3)
                    .link_loss(0.1)
                    .battery_fade(0.1)
                    .charger_breakdown(40, 90),
            ),
            ..SimConfig::default()
        };
        let a = Simulator::new(&inst, &sol, config.clone()).run(600);
        let b = Simulator::new(&inst, &sol, config).run(600);
        assert_eq!(a, b, "degradation axes must replay bit-identically");
        assert!(a.capacity_floor_hits > 0, "{a}");
        assert_eq!(a.charger_downtime_rounds, 50);
        assert!(a.charger_skips > 0 && a.link_losses > 0);
    }

    #[test]
    #[should_panic(expected = "invalid fault plan")]
    fn out_of_range_fault_plan_rejected() {
        let (inst, sol) = small_solution();
        let config = SimConfig {
            faults: Some(FaultPlan::seeded(0).kill_node(1, 999)),
            ..SimConfig::default()
        };
        let _ = Simulator::new(&inst, &sol, config);
    }
}

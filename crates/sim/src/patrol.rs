//! Charger patrol-tour planning.
//!
//! The paper assumes "sensor nodes can always be recharged in time" and
//! explicitly leaves charger scheduling out of scope. This module fills
//! that gap for the simulator: a mobile charger starts at the base
//! station, must visit every post, and should travel as little as
//! possible — a Euclidean TSP. We provide the standard heuristic pair
//! (nearest-neighbor construction + 2-opt improvement), which is plenty
//! for patrol planning, plus a feasibility check: the slowest-charging
//! post must be revisited before it can run dry.

use wrsn_core::{Instance, Solution};
use wrsn_energy::Energy;
use wrsn_geom::Point;

/// A cyclic charger tour: leave the depot, visit every post once, return.
///
/// # Examples
///
/// ```
/// use wrsn_geom::Point;
/// use wrsn_sim::PatrolTour;
///
/// let stops = vec![Point::new(10.0, 0.0), Point::new(10.0, 10.0), Point::new(0.0, 10.0)];
/// let tour = PatrolTour::plan(Point::ORIGIN, stops);
/// assert_eq!(tour.length(), 40.0); // the square's perimeter
/// assert_eq!(tour.cycle_s(2.0), 20.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PatrolTour {
    depot: Point,
    stops: Vec<Point>,
    /// Visit order as indices into `stops`.
    order: Vec<usize>,
}

impl PatrolTour {
    /// Plans a tour over `stops` starting and ending at `depot`:
    /// nearest-neighbor construction refined by 2-opt until no
    /// improving exchange remains.
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is non-finite.
    #[must_use]
    pub fn plan(depot: Point, stops: Vec<Point>) -> Self {
        assert!(
            depot.is_finite() && stops.iter().all(|p| p.is_finite()),
            "tour points must be finite"
        );
        let order = nearest_neighbor(depot, &stops);
        let mut tour = PatrolTour {
            depot,
            stops,
            order,
        };
        tour.two_opt();
        tour
    }

    /// The planned visit order, as indices into the stop list handed to
    /// [`PatrolTour::plan`].
    #[must_use]
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// The depot (base-station) location.
    #[must_use]
    pub fn depot(&self) -> Point {
        self.depot
    }

    /// Total cycle length in meters: depot → stops in order → depot.
    #[must_use]
    pub fn length(&self) -> f64 {
        if self.order.is_empty() {
            return 0.0;
        }
        let mut len = self.depot.distance(self.stops[self.order[0]]);
        for w in self.order.windows(2) {
            len += self.stops[w[0]].distance(self.stops[w[1]]);
        }
        len + self.stops[*self.order.last().expect("non-empty")].distance(self.depot)
    }

    /// Time of the `k`-th visit (0-based, in visit order) within one
    /// cycle, for a charger moving at `speed_mps`, ignoring dwell time.
    ///
    /// # Panics
    ///
    /// Panics if `speed_mps` is not strictly positive or `k` is out of
    /// range.
    #[must_use]
    pub fn visit_offset_s(&self, k: usize, speed_mps: f64) -> f64 {
        assert!(speed_mps > 0.0, "charger speed must be positive");
        assert!(k < self.order.len(), "visit index out of range");
        let mut dist = self.depot.distance(self.stops[self.order[0]]);
        for w in self.order.windows(2).take(k) {
            dist += self.stops[w[0]].distance(self.stops[w[1]]);
        }
        dist / speed_mps
    }

    /// Full cycle duration in seconds at `speed_mps`.
    ///
    /// # Panics
    ///
    /// Panics if `speed_mps` is not strictly positive.
    #[must_use]
    pub fn cycle_s(&self, speed_mps: f64) -> f64 {
        assert!(speed_mps > 0.0, "charger speed must be positive");
        self.length() / speed_mps
    }

    /// Splits the tour among `k` chargers: the visit order is cut into
    /// `k` contiguous runs, greedily balanced so no run's depot-anchored
    /// cycle greatly exceeds the others. Returns fewer than `k` tours
    /// when there are fewer stops.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn split(&self, k: usize) -> Vec<PatrolTour> {
        assert!(k >= 1, "need at least one charger");
        let n = self.order.len();
        if n == 0 {
            return Vec::new();
        }
        let k = k.min(n);
        // Greedy cut at ~1/k of the inter-stop path per charger; each
        // sub-tour re-plans (2-opt) over its own stops.
        let target = self.length() / k as f64;
        let mut tours = Vec::with_capacity(k);
        let mut segment: Vec<Point> = Vec::new();
        let mut seg_len = 0.0;
        let mut prev = self.depot;
        let mut remaining_cuts = k - 1;
        for (i, &stop) in self.order.iter().enumerate() {
            let pt = self.stops[stop];
            seg_len += prev.distance(pt);
            segment.push(pt);
            prev = pt;
            let stops_left = n - i - 1;
            if remaining_cuts > 0
                && stops_left >= remaining_cuts
                && seg_len + pt.distance(self.depot) >= target
            {
                tours.push(PatrolTour::plan(self.depot, std::mem::take(&mut segment)));
                seg_len = 0.0;
                prev = self.depot;
                remaining_cuts -= 1;
            }
        }
        if !segment.is_empty() {
            tours.push(PatrolTour::plan(self.depot, segment));
        }
        tours
    }

    /// The stop coordinates this tour visits, in visit order.
    #[must_use]
    pub fn stops_in_order(&self) -> Vec<Point> {
        self.order.iter().map(|&i| self.stops[i]).collect()
    }

    /// 2-opt local search: repeatedly reverse segments while that
    /// shortens the tour.
    fn two_opt(&mut self) {
        let n = self.order.len();
        if n < 3 {
            return;
        }
        let pos = |tour: &PatrolTour, i: isize| -> Point {
            if i < 0 || i as usize >= n {
                tour.depot
            } else {
                tour.stops[tour.order[i as usize]]
            }
        };
        let mut improved = true;
        while improved {
            improved = false;
            for i in 0..n - 1 {
                for j in i + 1..n {
                    // Reversing order[i..=j] replaces edges
                    // (i-1, i) and (j, j+1) with (i-1, j) and (i, j+1).
                    let a = pos(self, i as isize - 1);
                    let b = pos(self, i as isize);
                    let c = pos(self, j as isize);
                    let d = pos(self, j as isize + 1);
                    let before = a.distance(b) + c.distance(d);
                    let after = a.distance(c) + b.distance(d);
                    if after + 1e-9 < before {
                        self.order[i..=j].reverse();
                        improved = true;
                    }
                }
            }
        }
    }
}

fn nearest_neighbor(depot: Point, stops: &[Point]) -> Vec<usize> {
    let n = stops.len();
    let mut order = Vec::with_capacity(n);
    let mut visited = vec![false; n];
    let mut cur = depot;
    for _ in 0..n {
        let next = (0..n)
            .filter(|&i| !visited[i])
            .min_by(|&a, &b| {
                stops[a]
                    .distance(cur)
                    .total_cmp(&stops[b].distance(cur))
                    .then_with(|| a.cmp(&b))
            })
            .expect("unvisited stop remains");
        visited[next] = true;
        order.push(next);
        cur = stops[next];
    }
    order
}

/// Per-post recharge demand of a solution: energy drawn from the charger
/// per reporting round (consumed energy scaled by the post's charging
/// efficiency), used to size patrol frequency.
///
/// # Examples
///
/// ```
/// use wrsn_core::{Idb, InstanceSampler, Solver};
/// use wrsn_geom::Field;
/// use wrsn_sim::charger_demand_per_round;
///
/// let inst = InstanceSampler::new(Field::square(150.0), 5, 10).sample(1);
/// let sol = Idb::new(1).solve(&inst)?;
/// let demand = charger_demand_per_round(&inst, &sol, 4000);
/// assert_eq!(demand.len(), 5);
/// # Ok::<(), wrsn_core::SolveError>(())
/// ```
#[must_use]
pub fn charger_demand_per_round(
    instance: &Instance,
    solution: &Solution,
    bits_per_report: u64,
) -> Vec<Energy> {
    solution
        .tree()
        .per_post_energy(instance)
        .iter()
        .zip(solution.deployment().counts())
        .map(|(&e, &m)| e * bits_per_report as f64 / instance.charge_efficiency(m))
        .collect()
}

/// The minimum charger speed (m/s) that keeps every post alive under a
/// cyclic patrol: each post's pooled battery must outlast one full tour
/// cycle plus a safety factor.
///
/// Returns `None` if the instance has no geometry (explicit instances
/// cannot be patrolled spatially).
///
/// # Panics
///
/// Panics if `safety` is less than 1 or the round interval is not
/// positive.
#[must_use]
pub fn min_patrol_speed(
    instance: &Instance,
    solution: &Solution,
    tour: &PatrolTour,
    battery_capacity: Energy,
    bits_per_report: u64,
    round_interval_s: f64,
    safety: f64,
) -> Option<f64> {
    assert!(safety >= 1.0, "safety factor must be at least 1");
    assert!(round_interval_s > 0.0, "round interval must be positive");
    instance.geometry()?;
    // Per-round consumed energy per post vs pooled storage.
    let consumed = solution.tree().per_post_energy(instance);
    let mut worst_cycle_s = f64::INFINITY;
    for (p, &e_round) in consumed.iter().enumerate() {
        let e_round = e_round * bits_per_report as f64;
        if e_round == Energy::ZERO {
            continue;
        }
        let pool = battery_capacity * f64::from(solution.deployment().count(p));
        let survivable_rounds = pool / e_round;
        worst_cycle_s = worst_cycle_s.min(survivable_rounds * round_interval_s);
    }
    if worst_cycle_s.is_infinite() {
        return Some(0.0);
    }
    Some(tour.length() * safety / worst_cycle_s)
}

/// The minimum charger-fleet size that keeps every post alive at
/// `speed_mps`: the smallest `k` such that after splitting the full tour
/// among `k` chargers, every sub-tour's cycle (times `safety`) fits
/// within the most fragile post's survivable window. Returns `None` when
/// the instance has no geometry or even one charger per post would be
/// too slow.
///
/// # Panics
///
/// Panics if `speed_mps` is not positive, `safety < 1`, or the round
/// interval is not positive.
///
/// # Examples
///
/// ```
/// use wrsn_core::{Idb, InstanceSampler, Solver};
/// use wrsn_energy::Energy;
/// use wrsn_geom::Field;
/// use wrsn_sim::required_chargers;
///
/// let inst = InstanceSampler::new(Field::square(200.0), 8, 24).sample(1);
/// let sol = Idb::new(1).solve(&inst)?;
/// let k = required_chargers(
///     &inst, &sol, Energy::from_joules(0.5), 4000, 1.0, 5.0, 1.2,
/// ).expect("feasible");
/// assert!(k >= 1);
/// # Ok::<(), wrsn_core::SolveError>(())
/// ```
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn required_chargers(
    instance: &Instance,
    solution: &Solution,
    battery_capacity: Energy,
    bits_per_report: u64,
    round_interval_s: f64,
    speed_mps: f64,
    safety: f64,
) -> Option<u32> {
    assert!(speed_mps > 0.0, "charger speed must be positive");
    assert!(safety >= 1.0, "safety factor must be at least 1");
    assert!(round_interval_s > 0.0, "round interval must be positive");
    let geo = instance.geometry()?;
    // Survivable window of the most fragile post.
    let consumed = solution.tree().per_post_energy(instance);
    let mut window_s = f64::INFINITY;
    for (p, &e) in consumed.iter().enumerate() {
        let per_round = e * bits_per_report as f64 + instance.sensing_energy(p);
        if per_round == Energy::ZERO {
            continue;
        }
        let pool = battery_capacity * f64::from(solution.deployment().count(p));
        window_s = window_s.min(pool / per_round * round_interval_s);
    }
    if window_s.is_infinite() {
        return Some(1);
    }
    let full = PatrolTour::plan(geo.base_station, geo.posts.clone());
    let n = geo.posts.len();
    for k in 1..=n {
        let worst_cycle = full
            .split(k)
            .iter()
            .map(PatrolTour::length)
            .fold(0.0, f64::max)
            / speed_mps;
        if worst_cycle * safety <= window_s {
            return Some(k as u32);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use wrsn_core::{Idb, InstanceSampler, Solver};
    use wrsn_geom::Field;

    fn square_stops() -> Vec<Point> {
        vec![
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
            Point::new(5.0, 5.0),
        ]
    }

    #[test]
    fn tour_visits_every_stop_once() {
        let tour = PatrolTour::plan(Point::ORIGIN, square_stops());
        let mut order = tour.order().to_vec();
        order.sort_unstable();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_opt_never_longer_than_nearest_neighbor() {
        let field = Field::square(200.0);
        for seed in 0..5 {
            let stops = field.random_posts(25, seed);
            let nn_len = {
                let order = nearest_neighbor(Point::ORIGIN, &stops);
                let t = PatrolTour {
                    depot: Point::ORIGIN,
                    stops: stops.clone(),
                    order,
                };
                t.length()
            };
            let planned = PatrolTour::plan(Point::ORIGIN, stops);
            assert!(planned.length() <= nn_len + 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn square_tour_is_optimal() {
        // Depot at origin + 3 square corners: the optimal cycle is the
        // square perimeter of length 40.
        let stops = vec![
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
        ];
        let tour = PatrolTour::plan(Point::ORIGIN, stops);
        assert!((tour.length() - 40.0).abs() < 1e-9, "{}", tour.length());
    }

    #[test]
    fn visit_offsets_increase_along_the_tour() {
        let tour = PatrolTour::plan(Point::ORIGIN, square_stops());
        let speed = 2.0;
        let mut last = -1.0;
        for k in 0..tour.order().len() {
            let t = tour.visit_offset_s(k, speed);
            assert!(t > last);
            last = t;
        }
        assert!(tour.cycle_s(speed) > last);
    }

    #[test]
    fn empty_tour() {
        let tour = PatrolTour::plan(Point::ORIGIN, vec![]);
        assert_eq!(tour.length(), 0.0);
        assert!(tour.order().is_empty());
    }

    #[test]
    fn single_stop_tour_is_out_and_back() {
        let tour = PatrolTour::plan(Point::ORIGIN, vec![Point::new(7.0, 0.0)]);
        assert_eq!(tour.length(), 14.0);
        assert_eq!(tour.visit_offset_s(0, 7.0), 1.0);
    }

    #[test]
    #[should_panic(expected = "speed")]
    fn zero_speed_rejected() {
        let tour = PatrolTour::plan(Point::ORIGIN, square_stops());
        let _ = tour.cycle_s(0.0);
    }

    #[test]
    fn split_partitions_all_stops() {
        let field = Field::square(300.0);
        let stops = field.random_posts(30, 4);
        let tour = PatrolTour::plan(Point::ORIGIN, stops.clone());
        for k in [1usize, 2, 3, 5] {
            let subs = tour.split(k);
            assert_eq!(subs.len(), k);
            let mut visited: Vec<Point> = subs.iter().flat_map(|t| t.stops_in_order()).collect();
            assert_eq!(visited.len(), 30);
            // Every original stop appears exactly once across sub-tours.
            for s in &stops {
                let found = visited
                    .iter()
                    .position(|v| v.distance(*s) < 1e-9)
                    .expect("stop covered");
                visited.swap_remove(found);
            }
            assert!(visited.is_empty());
            // More chargers => the worst cycle shrinks (or at least never
            // exceeds the single-charger cycle).
            let worst = subs.iter().map(PatrolTour::length).fold(0.0, f64::max);
            assert!(worst <= tour.length() + 1e-9);
        }
    }

    #[test]
    fn split_more_chargers_than_stops() {
        let tour = PatrolTour::plan(Point::ORIGIN, vec![Point::new(5.0, 0.0)]);
        let subs = tour.split(4);
        assert_eq!(subs.len(), 1);
        assert_eq!(tour.split(1).len(), 1);
        assert!(PatrolTour::plan(Point::ORIGIN, vec![]).split(3).is_empty());
    }

    #[test]
    fn split_helps_on_two_arms() {
        // Two arms out of the depot: one charger per arm beats one
        // charger covering both.
        let mut stops: Vec<Point> = (1..=5).map(|i| Point::new(i as f64 * 10.0, 0.0)).collect();
        stops.extend((1..=5).map(|i| Point::new(0.0, i as f64 * 10.0)));
        let tour = PatrolTour::plan(Point::ORIGIN, stops);
        let subs = tour.split(2);
        let worst = subs.iter().map(PatrolTour::length).fold(0.0, f64::max);
        assert!(
            worst < tour.length() * 0.8,
            "worst sub-cycle {worst} vs full {}",
            tour.length()
        );
    }

    #[test]
    fn required_chargers_shrinks_with_bigger_batteries() {
        let inst = InstanceSampler::new(Field::square(300.0), 20, 60).sample(7);
        let sol = Idb::new(1).solve(&inst).unwrap();
        let fleet = |capacity_j: f64| {
            required_chargers(
                &inst,
                &sol,
                Energy::from_joules(capacity_j),
                4000,
                1.0,
                1.0, // a slow walking charger
                1.5,
            )
        };
        let small = fleet(0.02);
        let big = fleet(50.0);
        assert_eq!(big, Some(1), "huge batteries need one charger");
        if let Some(k) = small {
            assert!(k >= 1); // None (infeasible at walking pace) is fine
        }
        if let (Some(s), Some(b)) = (small, big) {
            assert!(s >= b);
        }
    }

    #[test]
    fn required_chargers_none_for_explicit_instances() {
        use wrsn_core::InstanceBuilder;
        let e = Energy::from_njoules(4.0);
        let inst = InstanceBuilder::new(2, 2)
            .uplink(0, 2, e)
            .uplink(1, 0, e)
            .build()
            .unwrap();
        let sol = Idb::new(1).solve(&inst).unwrap();
        assert_eq!(
            required_chargers(&inst, &sol, Energy::from_joules(0.1), 100, 1.0, 1.0, 1.0),
            None
        );
    }

    #[test]
    fn demand_and_min_speed_are_consistent() {
        let inst = InstanceSampler::new(Field::square(200.0), 8, 24).sample(3);
        let sol = Idb::new(1).solve(&inst).unwrap();
        let demand = charger_demand_per_round(&inst, &sol, 1000);
        assert_eq!(demand.len(), 8);
        assert!(demand.iter().all(|&d| d > Energy::ZERO));

        let geo = inst.geometry().unwrap();
        let tour = PatrolTour::plan(geo.base_station, geo.posts.clone());
        let speed = min_patrol_speed(
            &inst,
            &sol,
            &tour,
            Energy::from_joules(0.05),
            1000,
            1.0,
            1.5,
        )
        .expect("geometric instance");
        assert!(speed > 0.0 && speed.is_finite());
        // Bigger batteries allow a slower charger.
        let relaxed =
            min_patrol_speed(&inst, &sol, &tour, Energy::from_joules(0.5), 1000, 1.0, 1.5).unwrap();
        assert!(relaxed < speed);
    }
}

//! # wrsn-sim — discrete-event simulation of rechargeable WSNs
//!
//! The paper's evaluation metric — total recharging cost — is an analytic
//! steady-state quantity. This crate executes a deployment/routing
//! [`Solution`](wrsn_core::Solution) as an actual network over time and
//! checks that the analytic story holds dynamically:
//!
//! - every reporting round, each post generates a report that is forwarded
//!   hop-by-hop along the routing tree, draining per-node batteries for
//!   transmission and reception;
//! - nodes co-located at a post **rotate** duty per round so their
//!   residual energies stay level (the paper's rotation assumption);
//! - a wireless charger tops posts up with efficiency `η(m) = k(m)·η`,
//!   under a visit policy ([`ChargerPolicy`]);
//! - the report tallies charger energy, consumed energy, deaths, and
//!   battery spreads, so tests can assert e.g. *charger energy per round →
//!   analytic total recharging cost*;
//! - an optional seed-driven [`FaultPlan`] injects node deaths, post
//!   outages, and charger misbehavior, and the report's degradation
//!   metrics ([`SimReport::delivery_ratio`], rounds survived past the
//!   first fault, worst energy deficit) quantify how gracefully the
//!   deployment absorbs them.
//!
//! # Examples
//!
//! ```
//! use wrsn_core::{InstanceSampler, Rfh, Solver};
//! use wrsn_geom::Field;
//! use wrsn_sim::{ChargerPolicy, SimConfig, Simulator};
//!
//! let inst = InstanceSampler::new(Field::square(200.0), 8, 24).sample(1);
//! let sol = Rfh::default().solve(&inst)?;
//! let report = Simulator::new(&inst, &sol, SimConfig::default()).run(500);
//! assert_eq!(report.rounds_completed, 500);
//! assert!(report.first_death.is_none(), "charger kept everyone alive");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod fault;
mod patrol;
mod sim;

pub use event::{EventQueue, ScheduledEvent};
pub use fault::{BreakdownWindow, FaultPlan, NodeDeath, OutageWindow, DEFAULT_FADE_FLOOR};
pub use patrol::{charger_demand_per_round, min_patrol_speed, required_chargers, PatrolTour};
pub use sim::{ChargerPolicy, SimConfig, SimReport, Simulator};

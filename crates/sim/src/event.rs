//! A generic discrete-event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled at a simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduledEvent<E> {
    /// Simulated time in seconds.
    pub time: f64,
    /// Tie-break sequence number: events at equal times fire in
    /// scheduling order (FIFO), keeping runs deterministic.
    pub seq: u64,
    /// The payload.
    pub event: E,
}

impl<E> Eq for ScheduledEvent<E> where E: PartialEq {}

impl<E: PartialEq> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop the earliest time.
        other
            .time
            .total_cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E: PartialEq> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A time-ordered event queue: the core of the discrete-event simulator.
///
/// Events pop in non-decreasing time order; equal times pop in insertion
/// order, so simulations are reproducible.
///
/// # Examples
///
/// ```
/// use wrsn_sim::EventQueue;
///
/// let mut q = EventQueue::new();
/// q.schedule(5.0, "b");
/// q.schedule(1.0, "a");
/// q.schedule(5.0, "c");
/// assert_eq!(q.pop().map(|e| e.event), Some("a"));
/// assert_eq!(q.pop().map(|e| e.event), Some("b"));
/// assert_eq!(q.pop().map(|e| e.event), Some("c"));
/// assert!(q.is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventQueue<E: PartialEq> {
    heap: BinaryHeap<ScheduledEvent<E>>,
    next_seq: u64,
    now: f64,
}

impl<E: PartialEq> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }

    /// The time of the most recently popped event (zero before the first
    /// pop).
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Schedules `event` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite or lies in the past (before
    /// [`EventQueue::now`]).
    pub fn schedule(&mut self, time: f64, event: E) {
        assert!(time.is_finite(), "event time must be finite");
        assert!(
            time >= self.now,
            "cannot schedule into the past: {time} < {}",
            self.now
        );
        self.heap.push(ScheduledEvent {
            time,
            seq: self.next_seq,
            event,
        });
        self.next_seq += 1;
    }

    /// Schedules `event` at `now() + delay`.
    ///
    /// # Panics
    ///
    /// Panics if `delay` is negative or non-finite.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        assert!(delay >= 0.0, "delay must be non-negative, got {delay}");
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing [`EventQueue::now`].
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let e = self.heap.pop();
        if let Some(ev) = &e {
            self.now = ev.time;
        }
        e
    }

    /// The time of the next event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, 3);
        q.schedule(1.0, 1);
        q.schedule(2.0, 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(7.0, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.event)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn now_tracks_popped_time() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule(2.5, ());
        q.pop();
        assert_eq!(q.now(), 2.5);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(10.0, "first");
        q.pop();
        q.schedule_in(5.0, "second");
        assert_eq!(q.peek_time(), Some(15.0));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10.0, ());
        q.pop();
        q.schedule(5.0, ());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_panics() {
        EventQueue::new().schedule(f64::NAN, ());
    }

    #[test]
    fn len_and_empty() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(1.0, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }
}

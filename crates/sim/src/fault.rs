//! Deterministic, seed-driven failure injection for the simulator.
//!
//! A [`FaultPlan`] describes *what goes wrong* during a run: scheduled
//! node deaths, post outage windows, and probabilistic charger
//! misbehavior (skipped or delayed refills). The probabilistic faults
//! are driven by a [`rand::rngs::SmallRng`] seeded from the plan, and
//! the simulator consumes rolls in deterministic event order, so two
//! runs of the same `(instance, solution, config)` triple replay the
//! exact same fault sequence — degradation experiments stay
//! reproducible per seed.

/// A scheduled hardware death: one node at `post` is permanently removed
/// at the start of round `round` (its remaining charge dies with it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeDeath {
    /// Zero-based round index at whose start the node disappears.
    pub round: u64,
    /// The post losing a node.
    pub post: usize,
}

/// A transient post outage: the post neither senses, originates, nor
/// forwards during rounds `from_round..until_round` (reports routed
/// through it are lost), but its batteries survive and it rejoins
/// afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// The post going dark.
    pub post: usize,
    /// First affected round (inclusive, zero-based).
    pub from_round: u64,
    /// First round back online (exclusive end).
    pub until_round: u64,
}

/// A deterministic, seed-driven failure-injection schedule.
///
/// Construct with [`FaultPlan::seeded`] and layer faults on with the
/// builder methods:
///
/// ```
/// use wrsn_sim::FaultPlan;
///
/// let plan = FaultPlan::seeded(7)
///     .kill_node(50, 2)         // post 2 loses a node at round 50
///     .outage(0, 100, 120)      // post 0 dark for rounds 100..120
///     .charger_skips(0.25)      // a quarter of due refills skipped
///     .charger_delays(0.5, 3.0); // half of patrol visits arrive 3 s late
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the probabilistic faults' random stream.
    pub seed: u64,
    /// Scheduled node deaths.
    pub node_deaths: Vec<NodeDeath>,
    /// Transient post outages.
    pub outages: Vec<OutageWindow>,
    /// Probability that a due refill is skipped by the charger
    /// (per serviced post, in `[0, 1]`).
    pub charger_skip_prob: f64,
    /// Probability that a patrol charger's next leg is delayed
    /// (per visit, in `[0, 1]`).
    pub charger_delay_prob: f64,
    /// Extra travel delay in seconds when a delay fires.
    pub charger_delay_s: f64,
    /// Probability that any single hop transmission is dropped by the
    /// link (per transmitting post per round, in `[0, 1]`). The sender
    /// still pays the transmit energy; the carried reports are lost.
    pub link_loss_prob: f64,
}

impl FaultPlan {
    /// An empty plan (no faults) whose probabilistic stream is seeded
    /// with `seed`.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            node_deaths: Vec::new(),
            outages: Vec::new(),
            charger_skip_prob: 0.0,
            charger_delay_prob: 0.0,
            charger_delay_s: 0.0,
            link_loss_prob: 0.0,
        }
    }

    /// Schedules one node at `post` to die at the start of `round`.
    #[must_use]
    pub fn kill_node(mut self, round: u64, post: usize) -> Self {
        self.node_deaths.push(NodeDeath { round, post });
        self
    }

    /// Takes `post` offline for rounds `from_round..until_round`.
    #[must_use]
    pub fn outage(mut self, post: usize, from_round: u64, until_round: u64) -> Self {
        self.outages.push(OutageWindow {
            post,
            from_round,
            until_round,
        });
        self
    }

    /// Sets the probability that the charger skips a due refill.
    #[must_use]
    pub fn charger_skips(mut self, prob: f64) -> Self {
        self.charger_skip_prob = prob;
        self
    }

    /// Sets the probability (and added seconds) of a patrol-leg delay.
    #[must_use]
    pub fn charger_delays(mut self, prob: f64, delay_s: f64) -> Self {
        self.charger_delay_prob = prob;
        self.charger_delay_s = delay_s;
        self
    }

    /// Sets the per-hop link-loss probability: each transmitting post's
    /// uplink drops everything it carries that round with this chance.
    #[must_use]
    pub fn link_loss(mut self, prob: f64) -> Self {
        self.link_loss_prob = prob;
        self
    }

    /// `true` when the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node_deaths.is_empty()
            && self.outages.is_empty()
            && self.charger_skip_prob == 0.0
            && self.charger_delay_prob == 0.0
            && self.link_loss_prob == 0.0
    }

    /// Whether `post` is inside any outage window at `round`.
    #[must_use]
    pub fn offline(&self, post: usize, round: u64) -> bool {
        self.outages
            .iter()
            .any(|w| w.post == post && (w.from_round..w.until_round).contains(&round))
    }

    /// The earliest round at which any *scheduled* fault manifests
    /// (deaths and outages; probabilistic charger faults are recorded by
    /// the simulator as they fire).
    #[must_use]
    pub fn first_scheduled_round(&self) -> Option<u64> {
        let death = self.node_deaths.iter().map(|d| d.round).min();
        let outage = self.outages.iter().map(|w| w.from_round).min();
        match (death, outage) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Validates the plan against an instance with `num_posts` posts.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first invalid entry: a post
    /// index out of range, a probability outside `[0, 1]`, an empty
    /// outage window, or a non-finite/negative delay.
    pub fn validate(&self, num_posts: usize) -> Result<(), String> {
        for d in &self.node_deaths {
            if d.post >= num_posts {
                return Err(format!(
                    "node death at round {} names post {} (instance has {num_posts})",
                    d.round, d.post
                ));
            }
        }
        for w in &self.outages {
            if w.post >= num_posts {
                return Err(format!(
                    "outage names post {} (instance has {num_posts})",
                    w.post
                ));
            }
            if w.from_round >= w.until_round {
                return Err(format!(
                    "outage window {}..{} for post {} is empty",
                    w.from_round, w.until_round, w.post
                ));
            }
        }
        for (name, prob) in [
            ("charger skip", self.charger_skip_prob),
            ("charger delay", self.charger_delay_prob),
            ("link loss", self.link_loss_prob),
        ] {
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!("{name} probability {prob} must lie in [0, 1]"));
            }
        }
        if !self.charger_delay_s.is_finite() || self.charger_delay_s < 0.0 {
            return Err(format!(
                "charger delay of {} s must be finite and non-negative",
                self.charger_delay_s
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_layers_faults() {
        let plan = FaultPlan::seeded(3)
            .kill_node(10, 1)
            .outage(0, 5, 8)
            .charger_skips(0.5)
            .charger_delays(0.25, 2.0);
        assert_eq!(plan.seed, 3);
        assert_eq!(plan.node_deaths, vec![NodeDeath { round: 10, post: 1 }]);
        assert_eq!(
            plan.outages,
            vec![OutageWindow {
                post: 0,
                from_round: 5,
                until_round: 8
            }]
        );
        assert_eq!(plan.charger_skip_prob, 0.5);
        assert_eq!(plan.charger_delay_prob, 0.25);
        assert_eq!(plan.charger_delay_s, 2.0);
        assert!(!plan.is_empty());
        assert!(FaultPlan::seeded(0).is_empty());
    }

    #[test]
    fn outage_membership_is_half_open() {
        let plan = FaultPlan::seeded(0).outage(2, 5, 8);
        assert!(!plan.offline(2, 4));
        assert!(plan.offline(2, 5));
        assert!(plan.offline(2, 7));
        assert!(!plan.offline(2, 8));
        assert!(!plan.offline(1, 6));
    }

    #[test]
    fn first_scheduled_round_takes_the_minimum() {
        assert_eq!(FaultPlan::seeded(0).first_scheduled_round(), None);
        let plan = FaultPlan::seeded(0).kill_node(30, 0).outage(1, 12, 20);
        assert_eq!(plan.first_scheduled_round(), Some(12));
        let deaths_only = FaultPlan::seeded(0).kill_node(7, 0);
        assert_eq!(deaths_only.first_scheduled_round(), Some(7));
    }

    #[test]
    fn validation_rejects_bad_entries() {
        assert!(FaultPlan::seeded(0).validate(3).is_ok());
        assert!(FaultPlan::seeded(0).kill_node(1, 5).validate(3).is_err());
        assert!(FaultPlan::seeded(0).outage(5, 0, 1).validate(3).is_err());
        assert!(FaultPlan::seeded(0).outage(0, 4, 4).validate(3).is_err());
        assert!(FaultPlan::seeded(0).charger_skips(1.5).validate(3).is_err());
        assert!(FaultPlan::seeded(0)
            .charger_delays(-0.1, 1.0)
            .validate(3)
            .is_err());
        assert!(FaultPlan::seeded(0)
            .charger_delays(0.1, f64::NAN)
            .validate(3)
            .is_err());
        assert!(FaultPlan::seeded(0)
            .charger_delays(0.1, -1.0)
            .validate(3)
            .is_err());
        assert!(FaultPlan::seeded(0).link_loss(1.5).validate(3).is_err());
        assert!(FaultPlan::seeded(0).link_loss(-0.1).validate(3).is_err());
        assert!(FaultPlan::seeded(0).link_loss(0.3).validate(3).is_ok());
    }

    #[test]
    fn link_loss_makes_the_plan_nonempty() {
        assert!(FaultPlan::seeded(0).is_empty());
        let plan = FaultPlan::seeded(0).link_loss(0.1);
        assert_eq!(plan.link_loss_prob, 0.1);
        assert!(!plan.is_empty());
        assert_eq!(plan.first_scheduled_round(), None);
    }
}

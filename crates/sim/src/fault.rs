//! Deterministic, seed-driven failure injection for the simulator.
//!
//! A [`FaultPlan`] describes *what goes wrong* during a run: scheduled
//! node deaths, post outage windows, and probabilistic charger
//! misbehavior (skipped or delayed refills). The probabilistic faults
//! are driven by a [`rand::rngs::SmallRng`] seeded from the plan, and
//! the simulator consumes rolls in deterministic event order, so two
//! runs of the same `(instance, solution, config)` triple replay the
//! exact same fault sequence — degradation experiments stay
//! reproducible per seed.

/// A scheduled hardware death: one node at `post` is permanently removed
/// at the start of round `round` (its remaining charge dies with it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeDeath {
    /// Zero-based round index at whose start the node disappears.
    pub round: u64,
    /// The post losing a node.
    pub post: usize,
}

/// A transient post outage: the post neither senses, originates, nor
/// forwards during rounds `from_round..until_round` (reports routed
/// through it are lost), but its batteries survive and it rejoins
/// afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutageWindow {
    /// The post going dark.
    pub post: usize,
    /// First affected round (inclusive, zero-based).
    pub from_round: u64,
    /// First round back online (exclusive end).
    pub until_round: u64,
}

/// A window of rounds during which the charger itself — not a post —
/// is broken down: no refills happen anywhere, so posts drain and may
/// die. The charger resumes service when the window ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakdownWindow {
    /// First affected round (inclusive, zero-based).
    pub from_round: u64,
    /// First round back in service (exclusive end).
    pub until_round: u64,
}

/// Default end-of-life capacity floor for [`FaultPlan::battery_fade`],
/// as a fraction of the original capacity (overridable with
/// [`FaultPlan::battery_fade_floor`]).
pub const DEFAULT_FADE_FLOOR: f64 = 0.2;

/// A deterministic, seed-driven failure-injection schedule.
///
/// Construct with [`FaultPlan::seeded`] and layer faults on with the
/// builder methods:
///
/// ```
/// use wrsn_sim::FaultPlan;
///
/// let plan = FaultPlan::seeded(7)
///     .kill_node(50, 2)         // post 2 loses a node at round 50
///     .outage(0, 100, 120)      // post 0 dark for rounds 100..120
///     .charger_skips(0.25)      // a quarter of due refills skipped
///     .charger_delays(0.5, 3.0) // half of patrol visits arrive 3 s late
///     .battery_fade(0.01)       // every charge cycle costs 1% capacity
///     .charger_breakdown(200, 260); // the charger itself offline
/// assert!(!plan.is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the probabilistic faults' random stream.
    pub seed: u64,
    /// Scheduled node deaths.
    pub node_deaths: Vec<NodeDeath>,
    /// Transient post outages.
    pub outages: Vec<OutageWindow>,
    /// Probability that a due refill is skipped by the charger
    /// (per serviced post, in `[0, 1]`).
    pub charger_skip_prob: f64,
    /// Probability that a patrol charger's next leg is delayed
    /// (per visit, in `[0, 1]`).
    pub charger_delay_prob: f64,
    /// Extra travel delay in seconds when a delay fires.
    pub charger_delay_s: f64,
    /// Probability that any single hop transmission is dropped by the
    /// link (per transmitting post per round, in `[0, 1]`). The sender
    /// still pays the transmit energy; the carried reports are lost.
    pub link_loss_prob: f64,
    /// Fraction of its current capacity a battery loses per charge
    /// cycle (in `[0, 1]`; zero disables fade).
    pub battery_fade_frac: f64,
    /// End-of-life capacity floor as a fraction of the original
    /// capacity (in `[0, 1]`); fade clamps here instead of shrinking
    /// cells to nothing.
    pub battery_fade_floor: f64,
    /// Windows of rounds during which the charger is broken down.
    pub charger_breakdowns: Vec<BreakdownWindow>,
}

impl FaultPlan {
    /// An empty plan (no faults) whose probabilistic stream is seeded
    /// with `seed`.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            node_deaths: Vec::new(),
            outages: Vec::new(),
            charger_skip_prob: 0.0,
            charger_delay_prob: 0.0,
            charger_delay_s: 0.0,
            link_loss_prob: 0.0,
            battery_fade_frac: 0.0,
            battery_fade_floor: DEFAULT_FADE_FLOOR,
            charger_breakdowns: Vec::new(),
        }
    }

    /// Schedules one node at `post` to die at the start of `round`.
    #[must_use]
    pub fn kill_node(mut self, round: u64, post: usize) -> Self {
        self.node_deaths.push(NodeDeath { round, post });
        self
    }

    /// Takes `post` offline for rounds `from_round..until_round`.
    #[must_use]
    pub fn outage(mut self, post: usize, from_round: u64, until_round: u64) -> Self {
        self.outages.push(OutageWindow {
            post,
            from_round,
            until_round,
        });
        self
    }

    /// Sets the probability that the charger skips a due refill.
    #[must_use]
    pub fn charger_skips(mut self, prob: f64) -> Self {
        self.charger_skip_prob = prob;
        self
    }

    /// Sets the probability (and added seconds) of a patrol-leg delay.
    #[must_use]
    pub fn charger_delays(mut self, prob: f64, delay_s: f64) -> Self {
        self.charger_delay_prob = prob;
        self.charger_delay_s = delay_s;
        self
    }

    /// Sets the per-hop link-loss probability: each transmitting post's
    /// uplink drops everything it carries that round with this chance.
    #[must_use]
    pub fn link_loss(mut self, prob: f64) -> Self {
        self.link_loss_prob = prob;
        self
    }

    /// Sets the per-charge-cycle capacity fade fraction: every top-up
    /// costs each serviced cell this fraction of its current capacity,
    /// clamped at the configured floor.
    #[must_use]
    pub fn battery_fade(mut self, frac: f64) -> Self {
        self.battery_fade_frac = frac;
        self
    }

    /// Sets the end-of-life capacity floor for battery fade, as a
    /// fraction of the original capacity (default
    /// [`DEFAULT_FADE_FLOOR`]).
    #[must_use]
    pub fn battery_fade_floor(mut self, floor: f64) -> Self {
        self.battery_fade_floor = floor;
        self
    }

    /// Takes the charger out of service for rounds
    /// `from_round..until_round`: no refills anywhere during the window.
    #[must_use]
    pub fn charger_breakdown(mut self, from_round: u64, until_round: u64) -> Self {
        self.charger_breakdowns.push(BreakdownWindow {
            from_round,
            until_round,
        });
        self
    }

    /// `true` when the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.node_deaths.is_empty()
            && self.outages.is_empty()
            && self.charger_skip_prob == 0.0
            && self.charger_delay_prob == 0.0
            && self.link_loss_prob == 0.0
            && self.battery_fade_frac == 0.0
            && self.charger_breakdowns.is_empty()
    }

    /// Whether the charger is broken down at `round`.
    #[must_use]
    pub fn charger_down(&self, round: u64) -> bool {
        self.charger_breakdowns
            .iter()
            .any(|w| (w.from_round..w.until_round).contains(&round))
    }

    /// Whether `post` is inside any outage window at `round`.
    #[must_use]
    pub fn offline(&self, post: usize, round: u64) -> bool {
        self.outages
            .iter()
            .any(|w| w.post == post && (w.from_round..w.until_round).contains(&round))
    }

    /// The earliest round at which any *scheduled* fault manifests
    /// (deaths, outages, and charger breakdowns; probabilistic charger
    /// faults are recorded by the simulator as they fire, and battery
    /// fade is continuous degradation rather than a discrete fault).
    #[must_use]
    pub fn first_scheduled_round(&self) -> Option<u64> {
        let death = self.node_deaths.iter().map(|d| d.round).min();
        let outage = self.outages.iter().map(|w| w.from_round).min();
        let breakdown = self.charger_breakdowns.iter().map(|w| w.from_round).min();
        [death, outage, breakdown].into_iter().flatten().min()
    }

    /// Validates the plan against an instance with `num_posts` posts.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first invalid entry: a post
    /// index out of range, a probability outside `[0, 1]`, an empty
    /// outage window, or a non-finite/negative delay.
    pub fn validate(&self, num_posts: usize) -> Result<(), String> {
        for d in &self.node_deaths {
            if d.post >= num_posts {
                return Err(format!(
                    "node death at round {} names post {} (instance has {num_posts})",
                    d.round, d.post
                ));
            }
        }
        for w in &self.outages {
            if w.post >= num_posts {
                return Err(format!(
                    "outage names post {} (instance has {num_posts})",
                    w.post
                ));
            }
            if w.from_round >= w.until_round {
                return Err(format!(
                    "outage window {}..{} for post {} is empty",
                    w.from_round, w.until_round, w.post
                ));
            }
        }
        for (name, prob) in [
            ("charger skip", self.charger_skip_prob),
            ("charger delay", self.charger_delay_prob),
            ("link loss", self.link_loss_prob),
        ] {
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!("{name} probability {prob} must lie in [0, 1]"));
            }
        }
        if !self.charger_delay_s.is_finite() || self.charger_delay_s < 0.0 {
            return Err(format!(
                "charger delay of {} s must be finite and non-negative",
                self.charger_delay_s
            ));
        }
        for (name, frac) in [
            ("battery fade", self.battery_fade_frac),
            ("battery fade floor", self.battery_fade_floor),
        ] {
            if !(0.0..=1.0).contains(&frac) {
                return Err(format!("{name} fraction {frac} must lie in [0, 1]"));
            }
        }
        for w in &self.charger_breakdowns {
            if w.from_round >= w.until_round {
                return Err(format!(
                    "charger breakdown window {}..{} is empty",
                    w.from_round, w.until_round
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_layers_faults() {
        let plan = FaultPlan::seeded(3)
            .kill_node(10, 1)
            .outage(0, 5, 8)
            .charger_skips(0.5)
            .charger_delays(0.25, 2.0);
        assert_eq!(plan.seed, 3);
        assert_eq!(plan.node_deaths, vec![NodeDeath { round: 10, post: 1 }]);
        assert_eq!(
            plan.outages,
            vec![OutageWindow {
                post: 0,
                from_round: 5,
                until_round: 8
            }]
        );
        assert_eq!(plan.charger_skip_prob, 0.5);
        assert_eq!(plan.charger_delay_prob, 0.25);
        assert_eq!(plan.charger_delay_s, 2.0);
        assert!(!plan.is_empty());
        assert!(FaultPlan::seeded(0).is_empty());
    }

    #[test]
    fn outage_membership_is_half_open() {
        let plan = FaultPlan::seeded(0).outage(2, 5, 8);
        assert!(!plan.offline(2, 4));
        assert!(plan.offline(2, 5));
        assert!(plan.offline(2, 7));
        assert!(!plan.offline(2, 8));
        assert!(!plan.offline(1, 6));
    }

    #[test]
    fn first_scheduled_round_takes_the_minimum() {
        assert_eq!(FaultPlan::seeded(0).first_scheduled_round(), None);
        let plan = FaultPlan::seeded(0).kill_node(30, 0).outage(1, 12, 20);
        assert_eq!(plan.first_scheduled_round(), Some(12));
        let deaths_only = FaultPlan::seeded(0).kill_node(7, 0);
        assert_eq!(deaths_only.first_scheduled_round(), Some(7));
        let with_breakdown = plan.charger_breakdown(4, 9);
        assert_eq!(with_breakdown.first_scheduled_round(), Some(4));
    }

    #[test]
    fn breakdown_membership_is_half_open() {
        let plan = FaultPlan::seeded(0).charger_breakdown(5, 8);
        assert!(!plan.charger_down(4));
        assert!(plan.charger_down(5));
        assert!(plan.charger_down(7));
        assert!(!plan.charger_down(8));
        assert!(!plan.is_empty());
    }

    #[test]
    fn battery_fade_defaults_and_builders() {
        let plan = FaultPlan::seeded(0);
        assert_eq!(plan.battery_fade_frac, 0.0);
        assert_eq!(plan.battery_fade_floor, DEFAULT_FADE_FLOOR);
        assert!(plan.is_empty());
        let faded = plan.battery_fade(0.02).battery_fade_floor(0.4);
        assert_eq!(faded.battery_fade_frac, 0.02);
        assert_eq!(faded.battery_fade_floor, 0.4);
        assert!(!faded.is_empty());
        assert_eq!(faded.first_scheduled_round(), None);
    }

    #[test]
    fn validation_rejects_bad_degradation_entries() {
        assert!(FaultPlan::seeded(0).battery_fade(1.5).validate(3).is_err());
        assert!(FaultPlan::seeded(0).battery_fade(-0.1).validate(3).is_err());
        assert!(FaultPlan::seeded(0)
            .battery_fade_floor(2.0)
            .validate(3)
            .is_err());
        assert!(FaultPlan::seeded(0)
            .charger_breakdown(9, 9)
            .validate(3)
            .is_err());
        assert!(FaultPlan::seeded(0)
            .battery_fade(0.05)
            .charger_breakdown(10, 20)
            .validate(3)
            .is_ok());
    }

    #[test]
    fn validation_rejects_bad_entries() {
        assert!(FaultPlan::seeded(0).validate(3).is_ok());
        assert!(FaultPlan::seeded(0).kill_node(1, 5).validate(3).is_err());
        assert!(FaultPlan::seeded(0).outage(5, 0, 1).validate(3).is_err());
        assert!(FaultPlan::seeded(0).outage(0, 4, 4).validate(3).is_err());
        assert!(FaultPlan::seeded(0).charger_skips(1.5).validate(3).is_err());
        assert!(FaultPlan::seeded(0)
            .charger_delays(-0.1, 1.0)
            .validate(3)
            .is_err());
        assert!(FaultPlan::seeded(0)
            .charger_delays(0.1, f64::NAN)
            .validate(3)
            .is_err());
        assert!(FaultPlan::seeded(0)
            .charger_delays(0.1, -1.0)
            .validate(3)
            .is_err());
        assert!(FaultPlan::seeded(0).link_loss(1.5).validate(3).is_err());
        assert!(FaultPlan::seeded(0).link_loss(-0.1).validate(3).is_err());
        assert!(FaultPlan::seeded(0).link_loss(0.3).validate(3).is_ok());
    }

    #[test]
    fn link_loss_makes_the_plan_nonempty() {
        assert!(FaultPlan::seeded(0).is_empty());
        let plan = FaultPlan::seeded(0).link_loss(0.1);
        assert_eq!(plan.link_loss_prob, 0.1);
        assert!(!plan.is_empty());
        assert_eq!(plan.first_scheduled_round(), None);
    }
}

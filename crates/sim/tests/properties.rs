//! Property tests for the discrete-event substrate and the simulator's
//! conservation laws.

use proptest::prelude::*;
use wrsn_core::{Idb, InstanceSampler, Solver};
use wrsn_energy::Energy;
use wrsn_geom::{Field, Point};
use wrsn_sim::{ChargerPolicy, EventQueue, FaultPlan, PatrolTour, SimConfig, Simulator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The event queue is a stable priority queue: pops are sorted by
    /// time, FIFO within a time.
    #[test]
    fn event_queue_is_stable_priority_queue(
        times in proptest::collection::vec(0.0f64..1e6, 0..60)
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(t, i);
        }
        let mut popped = Vec::new();
        while let Some(e) = q.pop() {
            popped.push((e.time, e.event));
        }
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO violated at t={}", w[0].0);
            }
        }
    }

    /// Patrol tours are permutations whose 2-opt length never beats the
    /// trivial lower bound (twice the farthest stop, out and back).
    #[test]
    fn tours_are_valid_permutations(seed in any::<u64>(), n in 1usize..30) {
        let stops = Field::square(100.0).random_posts(n, seed);
        let tour = PatrolTour::plan(Point::ORIGIN, stops.clone());
        let mut order = tour.order().to_vec();
        order.sort_unstable();
        prop_assert_eq!(order, (0..n).collect::<Vec<_>>());
        let farthest = stops
            .iter()
            .map(|p| p.distance(Point::ORIGIN))
            .fold(0.0, f64::max);
        prop_assert!(tour.length() >= 2.0 * farthest - 1e-9);
    }

    /// Energy conservation: whatever the (valid) configuration, consumed
    /// energy equals the tree-accounting prediction for rounds survived,
    /// and charger energy is consistent with the efficiency model
    /// (delivered energy never exceeds charger energy times max gain).
    #[test]
    fn simulator_conserves_energy(seed in 0u64..50, rounds in 1u64..400) {
        let inst = InstanceSampler::new(Field::square(150.0), 5, 15).sample(seed % 5);
        let sol = Idb::new(1).solve(&inst).unwrap();
        let config = SimConfig {
            bits_per_report: 500,
            battery_capacity: Energy::from_joules(0.01),
            charger: ChargerPolicy::Threshold { interval_s: 3.0, trigger_soc: 0.6 },
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config).run(rounds);
        prop_assert_eq!(report.rounds_completed, rounds);
        prop_assert!(report.first_death.is_none());
        let per_round: Energy = sol
            .tree()
            .per_post_energy(&inst)
            .iter()
            .copied()
            .sum::<Energy>() * 500.0;
        let expected = per_round * rounds as f64;
        let rel = (report.consumed_energy.as_njoules() - expected.as_njoules()).abs()
            / expected.as_njoules();
        prop_assert!(rel < 1e-9, "consumed mismatch: {}", rel);
        // Charger radiates at least delivered / max-efficiency.
        let max_eff = sol
            .deployment()
            .counts()
            .iter()
            .map(|&m| inst.charge_efficiency(m))
            .fold(0.0, f64::max);
        prop_assert!(
            report.charger_energy.as_njoules() * max_eff + 1e-6
                >= (report.consumed_energy
                    - Energy::from_joules(0.01) * sol.deployment().total() as f64)
                    .as_njoules()
        );
    }

    /// Delivered + lost always equals generated, under any charger.
    #[test]
    fn report_conservation(seed in 0u64..20, charged in any::<bool>()) {
        let inst = InstanceSampler::new(Field::square(150.0), 5, 10).sample(seed % 4);
        let sol = Idb::new(1).solve(&inst).unwrap();
        let rounds = 300u64;
        let config = SimConfig {
            bits_per_report: 2000,
            battery_capacity: Energy::from_ujoules(4000.0),
            charger: if charged {
                ChargerPolicy::Threshold { interval_s: 1.0, trigger_soc: 0.9 }
            } else {
                ChargerPolicy::None
            },
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config).run(rounds);
        prop_assert_eq!(
            report.reports_delivered + report.reports_lost,
            rounds * 5,
            "conservation: {} + {}",
            report.reports_delivered,
            report.reports_lost
        );
    }

    /// Fault injection preserves report conservation, stays within the
    /// metric's bounds, and replays bit-identically for the same plan.
    #[test]
    fn faulty_runs_conserve_reports_and_replay(
        seed in 0u64..20,
        fault_seed in any::<u64>(),
        skip in 0.0f64..=1.0,
        dark_post in 0usize..5,
        dark_from in 0u64..100,
        dark_len in 1u64..50,
    ) {
        let inst = InstanceSampler::new(Field::square(150.0), 5, 10).sample(seed % 4);
        let sol = Idb::new(1).solve(&inst).unwrap();
        let rounds = 200u64;
        let plan = FaultPlan::seeded(fault_seed)
            .charger_skips(skip)
            .outage(dark_post, dark_from, dark_from + dark_len)
            .kill_node(dark_from, (dark_post + 1) % 5);
        let config = SimConfig {
            bits_per_report: 2000,
            battery_capacity: Energy::from_ujoules(4000.0),
            charger: ChargerPolicy::Threshold { interval_s: 1.0, trigger_soc: 0.9 },
            faults: Some(plan),
            ..SimConfig::default()
        };
        let report = Simulator::new(&inst, &sol, config.clone()).run(rounds);
        prop_assert_eq!(
            report.reports_delivered + report.reports_lost,
            rounds * 5,
            "conservation under faults: {} + {}",
            report.reports_delivered,
            report.reports_lost
        );
        let ratio = report.delivery_ratio();
        prop_assert!((0.0..=1.0).contains(&ratio));
        prop_assert!((0.0..=1.0).contains(&report.max_energy_deficit));
        prop_assert!(report.first_fault_round.is_some(), "an outage always fires");
        let replay = Simulator::new(&inst, &sol, config).run(rounds);
        prop_assert_eq!(report, replay, "same plan must replay identically");
    }
}

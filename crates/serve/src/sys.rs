//! Safe wrappers over the raw `epoll(7)`/`eventfd(2)` FFI from the
//! vendored `libc` shim: an [`Epoll`] readiness set and an eventfd
//! [`Waker`] for cross-thread reactor wakeups.
//!
//! Together with `signal.rs` this is one of the two places in the
//! workspace that touch `unsafe` — each call site wraps exactly one
//! syscall whose arguments are owned, correctly-sized buffers, and
//! both types close their file descriptor on drop.

#![allow(unsafe_code)]

use std::io;
use std::os::fd::RawFd;

/// Readiness interest / event bits re-exported as a plain mask.
pub mod event {
    /// The fd has data to read (or a pending accept).
    pub const READ: u32 = libc::EPOLLIN | libc::EPOLLRDHUP;
    /// The fd can accept more written bytes.
    pub const WRITE: u32 = libc::EPOLLOUT;

    /// Whether a readiness mask signals readable data, a peer hangup,
    /// or an error condition — all of which a read must observe.
    #[must_use]
    pub fn readable(mask: u32) -> bool {
        mask & (libc::EPOLLIN | libc::EPOLLRDHUP | libc::EPOLLERR | libc::EPOLLHUP) != 0
    }

    /// Whether a readiness mask signals writability (or an error the
    /// write path must observe).
    #[must_use]
    pub fn writable(mask: u32) -> bool {
        mask & (libc::EPOLLOUT | libc::EPOLLERR | libc::EPOLLHUP) != 0
    }
}

fn check(ret: libc::c_int) -> io::Result<libc::c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// An owned `epoll` instance: register fds with a `u64` token and an
/// interest mask, then [`wait`](Epoll::wait) for readiness events.
#[derive(Debug)]
pub struct Epoll {
    fd: RawFd,
}

impl Epoll {
    /// Creates a fresh epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// The `epoll_create1` failure, as an [`io::Error`].
    pub fn new() -> io::Result<Self> {
        // SAFETY: no pointers; returns an owned fd we close on drop.
        let fd = check(unsafe { libc::epoll_create1(libc::EPOLL_CLOEXEC) })?;
        Ok(Epoll { fd })
    }

    fn ctl(&self, op: libc::c_int, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        let mut ev = libc::epoll_event {
            events: interest,
            u64: token,
        };
        // SAFETY: `ev` is a live, correctly-typed epoll_event for the
        // duration of the call; the kernel copies it before returning.
        check(unsafe { libc::epoll_ctl(self.fd, op, fd, &mut ev) })?;
        Ok(())
    }

    /// Registers `fd` with the given token and interest mask.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure, as an [`io::Error`].
    pub fn add(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_ADD, fd, token, interest)
    }

    /// Replaces the interest mask of an already-registered `fd`.
    ///
    /// # Errors
    ///
    /// The `epoll_ctl` failure, as an [`io::Error`].
    pub fn modify(&self, fd: RawFd, token: u64, interest: u32) -> io::Result<()> {
        self.ctl(libc::EPOLL_CTL_MOD, fd, token, interest)
    }

    /// Deregisters `fd`. Harmless to call for an fd the kernel already
    /// dropped from the set (closing an fd deregisters it implicitly).
    pub fn delete(&self, fd: RawFd) {
        let _ = self.ctl(libc::EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Blocks up to `timeout_ms` for readiness, appending `(token,
    /// readiness-mask)` pairs to `out`. Interrupted waits (`EINTR`, e.g.
    /// a signal landing on this thread) return cleanly with no events.
    ///
    /// # Errors
    ///
    /// The `epoll_wait` failure, as an [`io::Error`].
    pub fn wait(&self, out: &mut Vec<(u64, u32)>, timeout_ms: i32) -> io::Result<()> {
        const CAPACITY: usize = 1024;
        let mut events = [libc::epoll_event { events: 0, u64: 0 }; CAPACITY];
        // SAFETY: the buffer outlives the call and its length is passed
        // alongside it; the kernel fills at most `CAPACITY` entries.
        let n = unsafe {
            libc::epoll_wait(
                self.fd,
                events.as_mut_ptr(),
                CAPACITY as libc::c_int,
                timeout_ms,
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(());
            }
            return Err(err);
        }
        for ev in events.iter().take(n as usize) {
            // Copy out of the (possibly packed) struct before use.
            let token = ev.u64;
            let mask = ev.events;
            out.push((token, mask));
        }
        Ok(())
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        // SAFETY: `fd` is owned by this instance and closed once.
        unsafe { libc::close(self.fd) };
    }
}

/// A cross-thread reactor wakeup built on `eventfd`: workers call
/// [`wake`](Waker::wake) after queuing a completion, the reactor
/// registers [`fd`](Waker::fd) for readiness and [`drain`](Waker::drain)s
/// the counter when it fires.
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates a nonblocking, close-on-exec eventfd.
    ///
    /// # Errors
    ///
    /// The `eventfd` failure, as an [`io::Error`].
    pub fn new() -> io::Result<Self> {
        // SAFETY: no pointers; returns an owned fd we close on drop.
        let fd = check(unsafe { libc::eventfd(0, libc::EFD_CLOEXEC | libc::EFD_NONBLOCK) })?;
        Ok(Waker { fd })
    }

    /// The fd to register with the reactor's [`Epoll`].
    #[must_use]
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Signals the reactor. Safe to call from any thread; failures are
    /// ignored (the reactor also wakes on its poll timeout).
    pub fn wake(&self) {
        let one: u64 = 1;
        // SAFETY: writes 8 owned bytes, the eventfd wire format.
        unsafe {
            libc::write(
                self.fd,
                std::ptr::addr_of!(one).cast::<libc::c_void>(),
                std::mem::size_of::<u64>(),
            );
        }
    }

    /// Resets the counter so the next [`wake`](Waker::wake) re-arms the
    /// readiness edge.
    pub fn drain(&self) {
        let mut counter: u64 = 0;
        // SAFETY: reads 8 bytes into an owned, correctly-sized buffer.
        unsafe {
            libc::read(
                self.fd,
                std::ptr::addr_of_mut!(counter).cast::<libc::c_void>(),
                std::mem::size_of::<u64>(),
            );
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        // SAFETY: `fd` is owned by this instance and closed once.
        unsafe { libc::close(self.fd) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn waker_readiness_round_trips_through_epoll() {
        let epoll = Epoll::new().unwrap();
        let waker = Waker::new().unwrap();
        epoll.add(waker.fd(), 7, event::READ).unwrap();
        let mut events = Vec::new();
        epoll.wait(&mut events, 0).unwrap();
        assert!(events.is_empty(), "nothing signalled yet");
        waker.wake();
        waker.wake();
        epoll.wait(&mut events, 1000).unwrap();
        assert_eq!(events.len(), 1, "coalesced into one readiness event");
        assert_eq!(events[0].0, 7);
        assert!(event::readable(events[0].1));
        // Draining re-arms the edge.
        waker.drain();
        events.clear();
        epoll.wait(&mut events, 0).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn socket_readiness_is_reported_with_its_token() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let epoll = Epoll::new().unwrap();
        epoll.add(listener.as_raw_fd(), 1, event::READ).unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        epoll.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|&(t, m)| t == 1 && event::readable(m)));
        let (peer, _) = listener.accept().unwrap();
        peer.set_nonblocking(true).unwrap();
        epoll.add(peer.as_raw_fd(), 2, event::READ).unwrap();
        client.write_all(b"ping").unwrap();
        events.clear();
        epoll.wait(&mut events, 1000).unwrap();
        assert!(events.iter().any(|&(t, m)| t == 2 && event::readable(m)));
        epoll.delete(peer.as_raw_fd());
    }
}

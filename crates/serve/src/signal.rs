//! Minimal SIGINT/SIGTERM notification without external crates.
//!
//! Installing the handler flips a process-global [`AtomicBool`]; the
//! server's reactor polls it between readiness waits. Together with
//! the epoll/eventfd wrappers in `sys.rs` this is one of the two
//! places in the workspace that touch `unsafe` — one `libc`
//! `signal(2)` registration per signal, with a handler that does
//! nothing but an atomic swap (async-signal-safe).
//!
//! A second SIGINT/SIGTERM while the graceful drain is already in
//! flight escalates to an immediate `_exit(128 + signal)` — the
//! conventional "killed by signal" exit status — so an operator whose
//! drain is wedged (a stuck job, a full disk) is never forced to reach
//! for `kill -9`. Skipping the drain is safe by design: segment
//! appends and job journals are crash-consistent, so the next startup
//! recovers exactly the committed state.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether SIGINT or SIGTERM has been received (or
/// [`request_shutdown`] was called).
#[must_use]
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Flips the shutdown flag by hand — how tests and the CLI trigger a
/// graceful stop without raising a real signal.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Clears the flag (tests only; the flag is process-global).
pub fn reset() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod unix {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(sig: i32) {
        // Only async-signal-safe work here: one atomic swap, and on
        // escalation `_exit(2)` (also async-signal-safe — no atexit
        // handlers, no unwinding, no allocation).
        if SHUTDOWN.swap(true, Ordering::SeqCst) {
            // Second signal during the drain: force immediate exit
            // with the conventional fatal-signal status.
            unsafe { libc::_exit(128 + sig) };
        }
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    pub fn install() {
        // SAFETY: `signal(2)` with a handler that performs a single
        // atomic store. Errors (SIG_ERR) are ignored — the server then
        // simply cannot be stopped by that signal, which is harmless.
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

/// Installs the SIGINT/SIGTERM handlers (no-op on non-Unix platforms,
/// where only [`request_shutdown`] stops the server).
pub fn install_handlers() {
    #[cfg(unix)]
    unix::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_request_flips_the_flag() {
        reset();
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        reset();
        assert!(!shutdown_requested());
    }
}

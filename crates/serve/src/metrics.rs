//! Lock-free serving metrics: per-endpoint request counters and
//! latency histograms, admission rejections, and cumulative cache
//! stats, all rendered into the `/statusz` JSON.

use serde::{Serialize as _, Value};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;
use wrsn_engine::{CacheStats, IoSnapshot};

/// Upper bounds (microseconds) of the latency histogram buckets; one
/// final overflow bucket catches everything slower.
const BOUNDS_US: [u64; 15] = [
    100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000,
    1_000_000, 2_000_000, 5_000_000,
];

/// A fixed-bucket latency histogram with atomic counters — recording
/// from many worker threads never takes a lock.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BOUNDS_US.len() + 1],
    count: AtomicU64,
    sum_us: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation of `micros` microseconds.
    pub fn record(&self, micros: u64) {
        let idx = BOUNDS_US
            .iter()
            .position(|&b| micros <= b)
            .unwrap_or(BOUNDS_US.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(micros, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (zero when empty).
    #[must_use]
    pub fn mean_us(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum_us.load(Ordering::Relaxed) as f64 / count as f64
        }
    }

    /// The `q`-quantile (`0 < q <= 1`) estimated as the upper bound of
    /// the first bucket whose cumulative count covers it. Zero when
    /// empty; the overflow bucket reports `10_000_000` (10 s).
    #[must_use]
    pub fn quantile_us(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = (q * count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            cumulative += bucket.load(Ordering::Relaxed);
            if cumulative >= target {
                return BOUNDS_US.get(i).copied().unwrap_or(10_000_000);
            }
        }
        10_000_000
    }

    /// The histogram as JSON: count, mean, p50/p95/p99 estimates, and
    /// the non-empty buckets as `[upper_bound_us, count]` pairs.
    #[must_use]
    pub fn to_value(&self) -> Value {
        let mut buckets = Vec::new();
        for (i, bucket) in self.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                let le = BOUNDS_US.get(i).copied().unwrap_or(10_000_000);
                buckets.push(Value::Array(vec![le.to_value(), n.to_value()]));
            }
        }
        Value::Object(vec![
            ("count".to_string(), self.count().to_value()),
            ("mean_us".to_string(), self.mean_us().to_value()),
            ("p50_us".to_string(), self.quantile_us(0.50).to_value()),
            ("p95_us".to_string(), self.quantile_us(0.95).to_value()),
            ("p99_us".to_string(), self.quantile_us(0.99).to_value()),
            ("buckets_us".to_string(), Value::Array(buckets)),
        ])
    }
}

/// Counters for one endpoint.
#[derive(Debug, Default)]
pub struct EndpointStats {
    /// Requests handled (any status).
    pub requests: AtomicU64,
    /// Requests answered with a 4xx/5xx status.
    pub errors: AtomicU64,
    /// Handling latency.
    pub latency: Histogram,
}

/// All serving metrics, shared across worker threads.
#[derive(Debug)]
pub struct Metrics {
    start: Instant,
    endpoints: Vec<(&'static str, EndpointStats)>,
    /// Connections rejected by admission control (503).
    pub rejected: AtomicU64,
    /// Requests whose handler overran the deadline (504).
    pub timeouts: AtomicU64,
    /// Chaos injections served (faults + truncations).
    pub chaos_faults: AtomicU64,
    /// Extra requests served over reused keep-alive connections.
    pub keepalive_reuses: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    cache_appended: AtomicU64,
}

/// The endpoints tracked individually; anything else lands under
/// `"other"`.
const ENDPOINTS: [&str; 9] = [
    "/v1/solve",
    "/v1/simulate",
    "/v1/sweep",
    "/v1/jobs",
    "/v1/cluster",
    "/v1/solvers",
    "/healthz",
    "/statusz",
    "other",
];

/// Point-in-time occupancy gauges sampled by the caller for
/// [`Metrics::to_statusz`] — they live in the server's shared state,
/// not in the cumulative metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct StatusGauges {
    /// Worker threads in the pool.
    pub workers_total: usize,
    /// Workers currently executing a request.
    pub workers_busy: usize,
    /// Dispatch jobs waiting in the admission queue.
    pub queue_len: usize,
    /// Admission queue capacity.
    pub queue_capacity: usize,
    /// Connections currently registered with the reactor.
    pub conns_open: usize,
    /// Connection cap (accepts beyond it are rejected with 503).
    pub conns_max: usize,
    /// Async jobs currently running.
    pub jobs_active: usize,
    /// Async jobs accepted since startup.
    pub jobs_submitted: u64,
    /// Concurrent async job cap.
    pub jobs_max: usize,
    /// Result-store entry count, when a store is attached.
    pub store_entries: Option<usize>,
    /// Result-store I/O health (fsyncs, errors, quarantines), when a
    /// store is attached; gates the `io` section of `/statusz`.
    pub io: Option<IoSnapshot>,
    /// The store's fsync discipline (`"flush"` or `"fsync"`).
    pub durability: Option<&'static str>,
    /// Jobs resumed from their journals at the last startup.
    pub jobs_resumed: u64,
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

impl Metrics {
    /// Fresh metrics; uptime starts now.
    #[must_use]
    pub fn new() -> Self {
        Metrics {
            start: Instant::now(),
            endpoints: ENDPOINTS
                .iter()
                .map(|&name| (name, EndpointStats::default()))
                .collect(),
            rejected: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            chaos_faults: AtomicU64::new(0),
            keepalive_reuses: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_appended: AtomicU64::new(0),
        }
    }

    /// The stats bucket for `path` (unknown paths share `"other"`).
    /// Job paths carry an id (`/v1/jobs/3/events`) and cluster paths a
    /// segment name, so each family folds into one bucket.
    #[must_use]
    pub fn endpoint(&self, path: &str) -> &EndpointStats {
        let name = if path.starts_with("/v1/jobs") {
            "/v1/jobs"
        } else if path.starts_with("/v1/cluster") {
            "/v1/cluster"
        } else {
            path
        };
        self.endpoints
            .iter()
            .find(|(n, _)| *n == name)
            .or_else(|| self.endpoints.iter().find(|(n, _)| *n == "other"))
            .map(|(_, stats)| stats)
            .expect("\"other\" is always present")
    }

    /// Records one handled request.
    pub fn record(&self, path: &str, status: u16, micros: u64) {
        let stats = self.endpoint(path);
        stats.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        stats.latency.record(micros);
    }

    /// Folds one experiment's cache stats into the cumulative tallies.
    pub fn add_cache(&self, stats: &CacheStats) {
        self.cache_hits.fetch_add(stats.hits, Ordering::Relaxed);
        self.cache_misses.fetch_add(stats.misses, Ordering::Relaxed);
        self.cache_appended
            .fetch_add(stats.appended, Ordering::Relaxed);
    }

    /// Cumulative cache stats across every request served.
    #[must_use]
    pub fn cache_totals(&self) -> CacheStats {
        CacheStats {
            hits: self.cache_hits.load(Ordering::Relaxed),
            misses: self.cache_misses.load(Ordering::Relaxed),
            appended: self.cache_appended.load(Ordering::Relaxed),
        }
    }

    /// Seconds since the metrics were created.
    #[must_use]
    pub fn uptime_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// The full `/statusz` document. Occupancy gauges (workers, queue,
    /// connections, jobs, store size) are sampled by the caller — they
    /// live outside the metrics.
    #[must_use]
    pub fn to_statusz(&self, gauges: &StatusGauges) -> Value {
        let endpoints: Vec<(String, Value)> = self
            .endpoints
            .iter()
            .filter(|(_, stats)| stats.requests.load(Ordering::Relaxed) > 0)
            .map(|(name, stats)| {
                (
                    (*name).to_string(),
                    Value::Object(vec![
                        (
                            "requests".to_string(),
                            stats.requests.load(Ordering::Relaxed).to_value(),
                        ),
                        (
                            "errors".to_string(),
                            stats.errors.load(Ordering::Relaxed).to_value(),
                        ),
                        ("latency".to_string(), stats.latency.to_value()),
                    ]),
                )
            })
            .collect();
        let cache = self.cache_totals();
        let mut cache_fields = vec![
            ("hits".to_string(), cache.hits.to_value()),
            ("misses".to_string(), cache.misses.to_value()),
            ("appended".to_string(), cache.appended.to_value()),
        ];
        if let Some(entries) = gauges.store_entries {
            cache_fields.push(("entries".to_string(), entries.to_value()));
        }
        // The `io` section reports durability health and only exists
        // when a store is attached — a storeless server has no disk.
        let io = gauges.io.map(|io| {
            let mut fields = vec![
                ("fsyncs".to_string(), io.fsyncs.to_value()),
                ("io_errors_real".to_string(), io.real_errors.to_value()),
                (
                    "io_errors_injected".to_string(),
                    io.injected_errors.to_value(),
                ),
                (
                    "quarantined_segments".to_string(),
                    io.quarantined.to_value(),
                ),
                ("jobs_resumed".to_string(), gauges.jobs_resumed.to_value()),
            ];
            if let Some(durability) = gauges.durability {
                fields.push((
                    "durability".to_string(),
                    Value::String(durability.to_string()),
                ));
            }
            Value::Object(fields)
        });
        let mut doc = Value::Object(vec![
            ("status".to_string(), Value::String("ok".to_string())),
            (
                "engine_version".to_string(),
                Value::String(wrsn_engine::ENGINE_VERSION.to_string()),
            ),
            ("uptime_s".to_string(), self.uptime_s().to_value()),
            (
                "workers".to_string(),
                Value::Object(vec![
                    ("total".to_string(), gauges.workers_total.to_value()),
                    ("busy".to_string(), gauges.workers_busy.to_value()),
                ]),
            ),
            (
                "queue".to_string(),
                Value::Object(vec![
                    ("depth".to_string(), gauges.queue_len.to_value()),
                    ("capacity".to_string(), gauges.queue_capacity.to_value()),
                ]),
            ),
            (
                "conns".to_string(),
                Value::Object(vec![
                    ("open".to_string(), gauges.conns_open.to_value()),
                    ("max".to_string(), gauges.conns_max.to_value()),
                ]),
            ),
            (
                "jobs".to_string(),
                Value::Object(vec![
                    ("active".to_string(), gauges.jobs_active.to_value()),
                    ("submitted".to_string(), gauges.jobs_submitted.to_value()),
                    ("max".to_string(), gauges.jobs_max.to_value()),
                ]),
            ),
            (
                "rejected".to_string(),
                self.rejected.load(Ordering::Relaxed).to_value(),
            ),
            (
                "timeouts".to_string(),
                self.timeouts.load(Ordering::Relaxed).to_value(),
            ),
            (
                "chaos_faults".to_string(),
                self.chaos_faults.load(Ordering::Relaxed).to_value(),
            ),
            (
                "keepalive_reuses".to_string(),
                self.keepalive_reuses.load(Ordering::Relaxed).to_value(),
            ),
            ("cache".to_string(), Value::Object(cache_fields)),
            ("endpoints".to_string(), Value::Object(endpoints)),
        ]);
        if let (Value::Object(pairs), Some(io)) = (&mut doc, io) {
            let at = pairs.iter().position(|(k, _)| k == "endpoints");
            match at {
                Some(at) => pairs.insert(at, ("io".to_string(), io)),
                None => pairs.push(("io".to_string(), io)),
            }
        }
        doc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_records_and_estimates_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile_us(0.5), 0, "empty histogram");
        for _ in 0..90 {
            h.record(80); // <= 100 us bucket
        }
        for _ in 0..10 {
            h.record(40_000); // <= 50 ms bucket
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_us(0.5), 100);
        assert_eq!(h.quantile_us(0.95), 50_000);
        assert!(h.mean_us() > 80.0 && h.mean_us() < 40_000.0);
    }

    #[test]
    fn histogram_overflow_bucket_saturates() {
        let h = Histogram::new();
        h.record(60_000_000);
        assert_eq!(h.quantile_us(0.5), 10_000_000);
        let v = h.to_value();
        assert_eq!(v.get("count").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn metrics_track_endpoints_and_errors() {
        let m = Metrics::new();
        m.record("/v1/solve", 200, 1_000);
        m.record("/v1/solve", 400, 500);
        m.record("/unknown", 404, 10);
        let solve = m.endpoint("/v1/solve");
        assert_eq!(solve.requests.load(Ordering::Relaxed), 2);
        assert_eq!(solve.errors.load(Ordering::Relaxed), 1);
        assert_eq!(m.endpoint("/unknown").requests.load(Ordering::Relaxed), 1);
        // Job paths carry ids but share one bucket.
        m.record("/v1/jobs", 202, 10);
        m.record("/v1/jobs/3", 200, 10);
        m.record("/v1/jobs/3/events?since=2", 200, 10);
        assert_eq!(m.endpoint("/v1/jobs").requests.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn statusz_includes_occupancy_and_cache() {
        let m = Metrics::new();
        m.record("/v1/sweep", 200, 2_000);
        m.add_cache(&CacheStats {
            hits: 4,
            misses: 1,
            appended: 1,
        });
        m.add_cache(&CacheStats {
            hits: 5,
            misses: 0,
            appended: 0,
        });
        m.timeouts.fetch_add(2, Ordering::Relaxed);
        m.keepalive_reuses.fetch_add(3, Ordering::Relaxed);
        let v = m.to_statusz(&StatusGauges {
            workers_total: 4,
            workers_busy: 2,
            queue_len: 1,
            queue_capacity: 64,
            conns_open: 17,
            conns_max: 4096,
            jobs_active: 1,
            jobs_submitted: 3,
            jobs_max: 8,
            store_entries: Some(5),
            io: None,
            durability: None,
            jobs_resumed: 0,
        });
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(v.get("timeouts").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get("chaos_faults").and_then(Value::as_u64), Some(0));
        assert_eq!(v.get("keepalive_reuses").and_then(Value::as_u64), Some(3));
        let workers = v.get("workers").unwrap();
        assert_eq!(workers.get("total").and_then(Value::as_u64), Some(4));
        assert_eq!(workers.get("busy").and_then(Value::as_u64), Some(2));
        let conns = v.get("conns").unwrap();
        assert_eq!(conns.get("open").and_then(Value::as_u64), Some(17));
        assert_eq!(conns.get("max").and_then(Value::as_u64), Some(4096));
        let jobs = v.get("jobs").unwrap();
        assert_eq!(jobs.get("active").and_then(Value::as_u64), Some(1));
        assert_eq!(jobs.get("submitted").and_then(Value::as_u64), Some(3));
        let cache = v.get("cache").unwrap();
        assert_eq!(cache.get("hits").and_then(Value::as_u64), Some(9));
        assert_eq!(cache.get("entries").and_then(Value::as_u64), Some(5));
        let endpoints = v.get("endpoints").unwrap();
        assert!(endpoints.get("/v1/sweep").is_some());
        assert!(
            endpoints.get("/v1/solve").is_none(),
            "unused endpoints are omitted"
        );
        assert!(v.get("io").is_none(), "no io section without a store");
    }

    #[test]
    fn statusz_io_section_appears_with_a_store() {
        let m = Metrics::new();
        let v = m.to_statusz(&StatusGauges {
            io: Some(IoSnapshot {
                fsyncs: 12,
                real_errors: 1,
                injected_errors: 3,
                quarantined: 2,
            }),
            durability: Some("fsync"),
            jobs_resumed: 4,
            ..StatusGauges::default()
        });
        let io = v.get("io").expect("io section with a store");
        assert_eq!(io.get("fsyncs").and_then(Value::as_u64), Some(12));
        assert_eq!(io.get("io_errors_real").and_then(Value::as_u64), Some(1));
        assert_eq!(
            io.get("io_errors_injected").and_then(Value::as_u64),
            Some(3)
        );
        assert_eq!(
            io.get("quarantined_segments").and_then(Value::as_u64),
            Some(2)
        );
        assert_eq!(io.get("jobs_resumed").and_then(Value::as_u64), Some(4));
        assert_eq!(io.get("durability").and_then(Value::as_str), Some("fsync"));
    }
}

//! A minimal HTTP/1.1 subset: exactly what the serving layer needs.
//!
//! No chunked transfer, no TLS; keep-alive is opt-in per response via
//! [`Response::write_to_with`] (the default [`Response::write_to`]
//! still closes after one request). Requests are capped at 16 KiB of
//! head (request line + headers) and 1 MiB of body; both caps turn
//! attackers' oversized payloads into cheap early rejections.
//!
//! Two parsing entry points share the grammar: [`read_request`] pulls
//! one request off a blocking stream (tests, simple clients), while
//! [`try_parse`] consumes zero or more complete requests from a byte
//! buffer — the nonblocking reactor's pipelining path, where a single
//! read may carry several back-to-back requests.

use std::io::{Read, Write};

/// Maximum bytes of request line + headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum bytes of request body.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// The path component (query strings are kept verbatim).
    pub path: String,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header named `name` (lowercase), if any.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text (lossy).
    #[must_use]
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Why a request could not be parsed.
#[derive(Debug)]
pub enum ParseError {
    /// Malformed request line, header, or length field.
    Bad(String),
    /// Head or body exceeded its cap.
    TooLarge,
    /// The socket failed or closed mid-request.
    Io(std::io::Error),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Bad(m) => write!(f, "bad request: {m}"),
            ParseError::TooLarge => write!(f, "request too large"),
            ParseError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

/// Reads and parses one request from `stream`.
///
/// # Errors
///
/// [`ParseError::Bad`] for malformed syntax, [`ParseError::TooLarge`]
/// past the head/body caps, [`ParseError::Io`] on socket failure.
pub fn read_request(stream: &mut impl Read) -> Result<Request, ParseError> {
    // Read byte-wise until the blank line; the head is tiny and the
    // socket is buffered by the kernel, so this stays simple and never
    // over-reads into the body.
    let mut head = Vec::with_capacity(512);
    let mut byte = [0u8; 1];
    while !head.ends_with(b"\r\n\r\n") {
        if head.len() >= MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge);
        }
        match stream.read(&mut byte) {
            Ok(0) if head.is_empty() => {
                // A peer hanging up between requests (keep-alive churn)
                // is an io-level close, not a protocol violation.
                return Err(ParseError::Io(std::io::Error::from(
                    std::io::ErrorKind::UnexpectedEof,
                )));
            }
            Ok(0) => {
                return Err(ParseError::Bad("connection closed mid-head".to_string()));
            }
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(ParseError::Io(e)),
        }
    }
    let head = String::from_utf8_lossy(&head);
    let (method, path, headers) = parse_head(&head)?;
    let length = content_length(&headers)?;
    let mut body = vec![0u8; length];
    stream.read_exact(&mut body).map_err(ParseError::Io)?;
    Ok(Request {
        method,
        path,
        headers,
        body,
    })
}

/// Method, path, and lowercased headers from one request head.
type ParsedHead = (String, String, Vec<(String, String)>);

/// Parses the head lines shared by both entry points: the request line
/// plus headers, already split on the blank line.
fn parse_head(head: &str) -> Result<ParsedHead, ParseError> {
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(ParseError::Bad(format!(
            "malformed request line {request_line:?}"
        )));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(ParseError::Bad(format!("unsupported version {version}")));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(ParseError::Bad(format!("malformed header {line:?}")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok((method.to_string(), path.to_string(), headers))
}

/// Extracts and validates the `Content-Length` of a parsed header set.
fn content_length(headers: &[(String, String)]) -> Result<usize, ParseError> {
    let length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| ParseError::Bad(format!("bad content-length {v:?}")))
        })
        .transpose()?
        .unwrap_or(0);
    if length > MAX_BODY_BYTES {
        return Err(ParseError::TooLarge);
    }
    Ok(length)
}

/// Attempts to parse one complete request from the front of `buf`
/// without consuming it; returns the request plus the number of bytes
/// it occupied, or `None` when the buffer holds only a prefix so far.
///
/// Calling this in a loop (advancing by the consumed count each time)
/// is how the reactor supports HTTP/1.1 pipelining: every complete
/// request sitting in the read buffer is surfaced before the next
/// socket read.
///
/// # Errors
///
/// [`ParseError::Bad`] for malformed syntax, [`ParseError::TooLarge`]
/// once the buffered head or the declared body exceeds its cap (a
/// partial head longer than [`MAX_HEAD_BYTES`] fails immediately —
/// waiting for more bytes cannot fix it).
pub fn try_parse(buf: &[u8]) -> Result<Option<(Request, usize)>, ParseError> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(ParseError::TooLarge);
        }
        return Ok(None);
    };
    if head_end + 4 > MAX_HEAD_BYTES {
        return Err(ParseError::TooLarge);
    }
    let head = String::from_utf8_lossy(&buf[..head_end]);
    let (method, path, headers) = parse_head(&head)?;
    let length = content_length(&headers)?;
    let total = head_end + 4 + length;
    if buf.len() < total {
        return Ok(None);
    }
    let body = buf[head_end + 4..total].to_vec();
    Ok(Some((
        Request {
            method,
            path,
            headers,
            body,
        },
        total,
    )))
}

/// An HTTP response ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// The status code.
    pub status: u16,
    /// Extra headers beyond the defaults (`Content-Type`,
    /// `Content-Length`, `Connection: close`).
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: String,
}

/// The standard reason phrase for the status codes this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        401 => "Unauthorized",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

impl Response {
    /// A JSON response with the given status.
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Response {
            status,
            headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A JSON error response `{"error": message}`.
    #[must_use]
    pub fn error(status: u16, message: &str) -> Self {
        let body = serde_json::to_string(&serde::Value::Object(vec![(
            "error".to_string(),
            serde::Value::String(message.to_string()),
        )]))
        .expect("a Value always serializes");
        Response::json(status, body)
    }

    /// Adds a header.
    #[must_use]
    pub fn header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.headers.push((name.to_string(), value.into()));
        self
    }

    /// Serializes the response (status line, headers, body) into `out`
    /// with `Connection: close`.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn write_to(&self, out: &mut impl Write) -> std::io::Result<()> {
        self.write_to_with(out, false)
    }

    /// Serializes the response, advertising `Connection: keep-alive`
    /// when `keep_alive` is set and `Connection: close` otherwise.
    ///
    /// # Errors
    ///
    /// Propagates the write failure.
    pub fn write_to_with(&self, out: &mut impl Write, keep_alive: bool) -> std::io::Result<()> {
        out.write_all(&self.serialize(keep_alive))?;
        out.flush()
    }

    /// The full wire form of the response as bytes (used by the server
    /// so chaos truncation can cut a serialized response mid-body).
    #[must_use]
    pub fn serialize(&self, keep_alive: bool) -> Vec<u8> {
        let mut text = format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status));
        text.push_str("Content-Type: application/json\r\n");
        text.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        if keep_alive {
            text.push_str("Connection: keep-alive\r\n");
        } else {
            text.push_str("Connection: close\r\n");
        }
        for (name, value) in &self.headers {
            text.push_str(&format!("{name}: {value}\r\n"));
        }
        text.push_str("\r\n");
        text.push_str(&self.body);
        text.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Request, ParseError> {
        read_request(&mut text.as_bytes())
    }

    #[test]
    fn parses_a_get_request() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            "POST /v1/solve HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: 13\r\n\r\n{\"solver\":\"x\"}",
        );
        // 13 bytes of a 14-byte body: read_exact takes exactly 13.
        let req = req.unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body.len(), 13);
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let req = parse("GET / HTTP/1.1\r\nX-Thing: 7\r\n\r\n").unwrap();
        assert_eq!(req.header("x-thing"), Some("7"));
        assert_eq!(req.header("X-Thing"), None, "lookup uses lowercase");
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(matches!(parse("NONSENSE\r\n\r\n"), Err(ParseError::Bad(_))));
        assert!(matches!(
            parse("GET / SPDY/3\r\n\r\n"),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nbroken header\r\n\r\n"),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: lots\r\n\r\n"),
            Err(ParseError::Bad(_))
        ));
        assert!(
            matches!(parse(""), Err(ParseError::Io(e)) if e.kind() == std::io::ErrorKind::UnexpectedEof),
            "a clean close before any bytes is an io close, not bad syntax"
        );
        assert!(
            matches!(parse("GET / HTT"), Err(ParseError::Bad(_))),
            "a close mid-head stays a protocol violation"
        );
    }

    #[test]
    fn rejects_oversized_bodies_and_heads() {
        let big = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(parse(&big), Err(ParseError::TooLarge)));
        let huge_head = format!(
            "GET / HTTP/1.1\r\nX: {}\r\n\r\n",
            "y".repeat(MAX_HEAD_BYTES)
        );
        assert!(matches!(parse(&huge_head), Err(ParseError::TooLarge)));
    }

    #[test]
    fn truncated_body_is_an_io_error() {
        let text = "POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        assert!(matches!(parse(text), Err(ParseError::Io(_))));
    }

    #[test]
    fn try_parse_consumes_pipelined_requests_one_at_a_time() {
        let wire = b"GET /healthz HTTP/1.1\r\n\r\nPOST /v1/solve HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}GET /statusz HTTP/1.1\r\n\r\n";
        let mut buf = wire.to_vec();
        let mut paths = Vec::new();
        while let Some((req, used)) = try_parse(&buf).unwrap() {
            paths.push(req.path.clone());
            buf.drain(..used);
        }
        assert_eq!(paths, ["/healthz", "/v1/solve", "/statusz"]);
        assert!(buf.is_empty());
    }

    #[test]
    fn try_parse_waits_for_incomplete_heads_and_bodies() {
        assert!(try_parse(b"GET /health").unwrap().is_none());
        assert!(try_parse(b"").unwrap().is_none());
        // Head complete, declared body still in flight.
        let partial = b"POST /v1/solve HTTP/1.1\r\nContent-Length: 10\r\n\r\n{\"a\"";
        assert!(try_parse(partial).unwrap().is_none());
        // Once the body arrives the request parses whole.
        let full = b"POST /v1/solve HTTP/1.1\r\nContent-Length: 10\r\n\r\n{\"a\":1234}";
        let (req, used) = try_parse(full).unwrap().unwrap();
        assert_eq!(req.body_text(), "{\"a\":1234}");
        assert_eq!(used, full.len());
    }

    #[test]
    fn try_parse_rejects_bad_syntax_and_oversize() {
        assert!(matches!(
            try_parse(b"NONSENSE\r\n\r\n"),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            try_parse(b"GET / SPDY/3\r\n\r\n"),
            Err(ParseError::Bad(_))
        ));
        let huge_head = format!("GET / HTTP/1.1\r\nX: {}", "y".repeat(MAX_HEAD_BYTES));
        assert!(matches!(
            try_parse(huge_head.as_bytes()),
            Err(ParseError::TooLarge)
        ));
        let big_body = format!(
            "POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(matches!(
            try_parse(big_body.as_bytes()),
            Err(ParseError::TooLarge)
        ));
    }

    #[test]
    fn try_parse_matches_read_request_on_a_full_request() {
        let wire = "POST /v1/solve HTTP/1.1\r\nHost: x\r\nContent-Length: 2\r\n\r\n{}";
        let blocking = parse(wire).unwrap();
        let (buffered, used) = try_parse(wire.as_bytes()).unwrap().unwrap();
        assert_eq!(blocking, buffered);
        assert_eq!(used, wire.len());
    }

    #[test]
    fn response_serializes_with_default_headers() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}")
            .header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn error_response_is_json() {
        let resp = Response::error(400, "bad things");
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("\"error\""));
        assert!(resp.body.contains("bad things"));
    }

    #[test]
    fn reason_phrases_cover_served_codes() {
        for code in [
            200, 201, 202, 400, 401, 403, 404, 405, 413, 429, 500, 503, 504,
        ] {
            assert_ne!(reason(code), "Unknown", "{code}");
        }
        assert_eq!(reason(418), "Unknown");
    }

    #[test]
    fn keep_alive_flips_only_the_connection_header() {
        let resp = Response::json(200, "{}");
        let close = resp.serialize(false);
        let keep = resp.serialize(true);
        let close = String::from_utf8(close).unwrap();
        let keep = String::from_utf8(keep).unwrap();
        assert!(close.contains("Connection: close\r\n"));
        assert!(keep.contains("Connection: keep-alive\r\n"));
        assert_eq!(
            close.replace("Connection: close", "Connection: keep-alive"),
            keep
        );
    }

    #[test]
    fn round_trips_through_the_wire_format() {
        let mut out = Vec::new();
        Response::json(503, "{}")
            .header("Retry-After", "1")
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable"));
    }
}

//! Request execution on the CPU worker pool: routing, per-request
//! deadlines, chaos injection, and the completion hand-off back to the
//! reactor.
//!
//! The reactor parses requests and pushes [`DispatchJob`]s onto the
//! bounded admission queue; workers pop them, compute the [`Response`]
//! (solver execution happens here, never on the reactor thread), and
//! push a [`Completion`] that the reactor stitches back into the
//! owning connection's write queue by `(token, seq)`.

use crate::api::{ApiContext, ApiError, ApiOutcome, SimulateRequest, SolveRequest, SweepRequest};
use crate::chaos::ChaosDecision;
use crate::cluster;
use crate::http::{Request, Response};
use crate::jobs;
use crate::metrics::StatusGauges;
use crate::server::Shared;
use serde::Deserialize;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

/// One parsed request traveling from the reactor to a worker.
#[derive(Debug)]
pub(crate) struct DispatchJob {
    /// The owning connection's reactor token.
    pub token: u64,
    /// Position in that connection's request pipeline.
    pub seq: usize,
    /// Index of the tenant the reactor admitted this request under.
    pub tenant: usize,
    /// The parsed request.
    pub request: Request,
    /// When the request finished parsing (latency baseline).
    pub started: Instant,
}

/// A computed response traveling from a worker back to the reactor.
#[derive(Debug)]
pub(crate) struct Completion {
    /// The owning connection's reactor token.
    pub token: u64,
    /// Position in that connection's request pipeline.
    pub seq: usize,
    /// The response to serialize into the pipeline slot.
    pub response: Response,
    /// Chaos: cut the serialized bytes in half and hang up.
    pub truncate: bool,
}

/// The worker thread body: pop, respond, hand the completion back.
pub(crate) fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        shared.busy.fetch_add(1, Ordering::SeqCst);
        let (response, truncate) = respond(&job, shared);
        shared.busy.fetch_sub(1, Ordering::SeqCst);
        shared.completions.lock().push(Completion {
            token: job.token,
            seq: job.seq,
            response,
            truncate,
        });
        shared.waker.wake();
    }
}

/// Computes the response for one job: chaos decision, deadline-raced
/// routing, and the metrics record.
pub(crate) fn respond(job: &DispatchJob, shared: &Arc<Shared>) -> (Response, bool) {
    let request = &job.request;
    // Chaos touches only the API; probe endpoints stay honest so
    // readiness checks keep working during a chaos run.
    let decision = match &shared.chaos {
        Some(chaos) if request.path.starts_with("/v1/") => chaos.decide(),
        _ => ChaosDecision::NONE,
    };
    if let Some(delay) = decision.delay {
        std::thread::sleep(delay);
    }
    let response = if decision.inject_fault {
        shared.metrics.chaos_faults.fetch_add(1, Ordering::Relaxed);
        Response::error(500, "chaos: injected fault").header("Retry-After", "1")
    } else {
        route_with_deadline(request, job.tenant, shared)
    };
    let micros = elapsed_us(job.started);
    shared
        .metrics
        .record(&request.path, response.status, micros);
    if request.path.starts_with("/v1/") {
        shared
            .tenants
            .tenant(job.tenant)
            .stats
            .latency
            .record(micros);
    }
    if decision.truncate {
        shared.metrics.chaos_faults.fetch_add(1, Ordering::Relaxed);
    }
    (response, decision.truncate)
}

/// Routes the request, racing the handler against the configured
/// deadline. On timeout the worker answers `504` immediately; the
/// handler finishes on its detached thread and its result is dropped.
fn route_with_deadline(request: &Request, tenant: usize, shared: &Arc<Shared>) -> Response {
    let Some(timeout) = shared.request_timeout else {
        return route(request, tenant, shared);
    };
    let (tx, rx) = std::sync::mpsc::channel();
    let req = request.clone();
    let worker_shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("wrsn-serve-handler".to_string())
        .spawn(move || {
            let _ = tx.send(route(&req, tenant, &worker_shared));
        });
    if spawned.is_err() {
        // Thread exhaustion: degrade to inline handling rather than
        // failing the request.
        return route(request, tenant, shared);
    }
    match rx.recv_timeout(timeout) {
        Ok(response) => response,
        Err(_) => {
            shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            Response::error(504, "request deadline exceeded").header("Retry-After", "1")
        }
    }
}

pub(crate) fn elapsed_us(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

fn route(request: &Request, tenant: usize, shared: &Arc<Shared>) -> Response {
    // Cluster routing runs before local handling: a request whose key
    // another node owns (and that the local cache cannot answer) is
    // forwarded there; anything else falls through to the local path.
    if request.method == "POST"
        && matches!(
            request.path.as_str(),
            "/v1/solve" | "/v1/simulate" | "/v1/sweep"
        )
    {
        if let Some(response) = cluster::maybe_forward(request, tenant, shared) {
            return response;
        }
    }
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, "{\"status\":\"ok\"}"),
        ("GET", "/statusz") => {
            let gauges = StatusGauges {
                workers_total: shared.workers,
                workers_busy: shared.busy.load(Ordering::SeqCst),
                queue_len: shared.queue.len(),
                queue_capacity: shared.queue.capacity(),
                conns_open: shared.conns_open.load(Ordering::SeqCst),
                conns_max: shared.max_conns,
                jobs_active: shared.jobs.active(),
                jobs_submitted: shared.jobs.submitted(),
                jobs_max: shared.jobs.capacity(),
                store_entries: shared.api.store.as_ref().map(|s| s.len()),
                io: shared.api.store.as_ref().map(|s| s.io_stats()),
                durability: shared.api.store.as_ref().map(|s| s.durability().as_str()),
                jobs_resumed: shared.jobs.resumed(),
            };
            let mut status = shared.metrics.to_statusz(&gauges);
            if let serde::Value::Object(pairs) = &mut status {
                pairs.push((
                    "tenants".to_string(),
                    shared.tenants.to_value(&shared.queue),
                ));
                if let Some(cluster) = &shared.cluster {
                    pairs.push(("cluster".to_string(), cluster.to_value()));
                }
            }
            json_response(200, &status)
        }
        ("GET", "/v1/solvers") => json_response(200, &shared.api.solvers().body),
        ("POST", "/v1/solve") => {
            handle_api(request, tenant, shared, |api, ns, req: &SolveRequest| {
                api.solve_in(ns, req)
            })
        }
        ("POST", "/v1/simulate") => handle_api(
            request,
            tenant,
            shared,
            |api, _ns, req: &SimulateRequest| api.simulate(req),
        ),
        ("POST", "/v1/sweep") => {
            handle_api(request, tenant, shared, |api, ns, req: &SweepRequest| {
                api.sweep_in(ns, req)
            })
        }
        ("POST", "/v1/jobs") => jobs::submit(request, tenant, shared),
        ("GET", "/v1/cluster/segments") => cluster::manifest_response(shared),
        ("GET", path) if path.starts_with("/v1/cluster/segments/") => {
            cluster::segment_get(path, shared)
        }
        ("POST", path) if path.starts_with("/v1/cluster/segments/") => {
            cluster::segment_put(path, request, shared)
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => route_job_get(path, shared),
        ("GET", "/v1/jobs") => Response::error(405, "POST a sweep spec to submit a job"),
        ("GET", "/v1/solve" | "/v1/simulate" | "/v1/sweep") => {
            Response::error(405, "use POST with a JSON body")
        }
        ("POST", "/healthz" | "/statusz" | "/v1/solvers") => Response::error(405, "use GET"),
        ("POST", path) if path.starts_with("/v1/jobs/") => {
            Response::error(405, "use GET to poll a job")
        }
        _ => Response::error(404, "no such endpoint"),
    }
}

/// `GET /v1/jobs/{id}` and `GET /v1/jobs/{id}/events?since=N`.
fn route_job_get(path: &str, shared: &Shared) -> Response {
    let rest = path.strip_prefix("/v1/jobs/").unwrap_or_default();
    let (rest, query) = rest.split_once('?').unwrap_or((rest, ""));
    let (id_part, tail) = match rest.split_once('/') {
        Some((id, tail)) => (id, Some(tail)),
        None => (rest, None),
    };
    let Ok(id) = id_part.parse::<u64>() else {
        return Response::error(400, &format!("bad job id {id_part:?}"));
    };
    match tail {
        None => jobs::poll(id, shared),
        Some("events") => {
            let since = query
                .split('&')
                .find_map(|kv| kv.strip_prefix("since="))
                .map_or(Ok(0), str::parse::<usize>);
            match since {
                Ok(since) => jobs::events(id, since, shared),
                Err(_) => Response::error(400, "bad since cursor"),
            }
        }
        Some(_) => Response::error(404, "no such endpoint"),
    }
}

pub(crate) fn json_response(status: u16, body: &serde::Value) -> Response {
    Response::json(
        status,
        serde_json::to_string(body).expect("a Value always serializes"),
    )
}

fn handle_api<R, F>(request: &Request, tenant: usize, shared: &Shared, handler: F) -> Response
where
    R: Deserialize + Default,
    F: FnOnce(&ApiContext, Option<&str>, &R) -> Result<ApiOutcome, ApiError>,
{
    let body = request.body_text();
    let parsed: Result<R, _> = if body.trim().is_empty() {
        Ok(R::default())
    } else {
        serde_json::from_str(&body)
    };
    let req = match parsed {
        Ok(req) => req,
        Err(e) => return Response::error(400, &format!("invalid request body: {e}")),
    };
    // Isolated tenants read and write their own cache namespace; every
    // other tenant shares the default namespace.
    let namespace = shared.tenants.tenant(tenant).namespace();
    match handler(&shared.api, namespace, &req) {
        Ok(outcome) => {
            shared.metrics.add_cache(&outcome.cache);
            shared.tenants.add_cache(tenant, &outcome.cache);
            json_response(200, &outcome.body)
                .header("x-cache-hits", outcome.cache.hits.to_string())
                .header("x-cache-misses", outcome.cache.misses.to_string())
        }
        Err(e) => Response::error(e.status, &e.message),
    }
}

//! The async job API: bounded background sweeps with incremental
//! progress and restart-surviving durability.
//!
//! `POST /v1/jobs` accepts the same body as `/v1/sweep` but returns a
//! job id immediately (`202`); the sweep runs on its own named thread
//! via [`ApiContext::sweep_job_in`], publishing every terminal
//! seed to a [`ProgressFeed`]. Clients poll `GET /v1/jobs/{id}` for
//! state and the final report, or `GET /v1/jobs/{id}/events?since=N`
//! for the incremental event stream (cursor-based, so polling is
//! idempotent and lossless). The final report is byte-identical to
//! what a synchronous `/v1/sweep` with the same spec returns.
//!
//! When the server has a result store (`--cache`), every job is also
//! durable: the spec is journaled to `{store}/jobs/job-NNNNNNNN.json`
//! before the `202` is sent, the sweep streams a checkpoint next to it,
//! and the journal is atomically rewritten with the final report when
//! the job finishes. On startup [`restore`] replays that directory —
//! finished journals are reloaded so late polls still answer, and
//! `running` journals (a crash mid-sweep) are respawned with resume, so
//! `GET /v1/jobs/{id}` survives a `kill -9` with a report byte-identical
//! to an uninterrupted run.
//!
//! Concurrency is bounded by [`crate::server::ServerConfig::max_jobs`];
//! submissions past the cap are rejected with `503` + `Retry-After`,
//! the same admission contract the request queue uses.

use crate::api::{ApiContext, SweepRequest};
use crate::dispatch::json_response;
use crate::http::{Request, Response};
use crate::server::Shared;
use crate::signal;
use parking_lot::Mutex;
use serde::{Deserialize as _, Serialize as _, Value};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use wrsn_engine::ProgressFeed;

/// Finished jobs kept for late polls; the oldest finished entry is
/// evicted past this.
const FINISHED_RETENTION: usize = 64;

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    Running,
    Done,
    Failed,
}

impl JobPhase {
    fn as_str(self) -> &'static str {
        match self {
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
        }
    }
}

#[derive(Debug)]
struct JobState {
    phase: JobPhase,
    report: Option<Value>,
    error: Option<String>,
}

/// One submitted job: its spec, progress feed, and terminal state.
#[derive(Debug)]
struct JobEntry {
    id: u64,
    total: u64,
    /// The tenant cache namespace the job runs under, captured at
    /// submit so a restart (where tenant indices may differ) resumes
    /// with identical cache fingerprints.
    namespace: Option<String>,
    request: SweepRequest,
    feed: Arc<ProgressFeed>,
    state: Mutex<JobState>,
}

/// The job table: id allocation, the concurrency cap, the journal
/// directory, and the handles shutdown joins.
#[derive(Debug)]
pub(crate) struct Jobs {
    capacity: usize,
    /// Journal directory (`{store}/jobs`); `None` runs jobs in-memory
    /// only, exactly the pre-durability behavior.
    dir: Option<PathBuf>,
    next_id: AtomicU64,
    submitted: AtomicU64,
    resumed: AtomicU64,
    active: AtomicUsize,
    table: Mutex<Vec<Arc<JobEntry>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Jobs {
    /// An empty table admitting at most `capacity` concurrent jobs,
    /// journaling under `dir` when given.
    pub fn new(capacity: usize, dir: Option<PathBuf>) -> Self {
        Jobs {
            capacity: capacity.max(1),
            dir,
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            table: Mutex::new(Vec::new()),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The concurrent-job cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently running.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Jobs accepted since startup.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Jobs resumed from their journals at startup.
    pub fn resumed(&self) -> u64 {
        self.resumed.load(Ordering::Relaxed)
    }

    fn get(&self, id: u64) -> Option<Arc<JobEntry>> {
        self.table
            .lock()
            .iter()
            .find(|e| e.id == id)
            .map(Arc::clone)
    }

    fn insert(&self, entry: Arc<JobEntry>) {
        let mut table = self.table.lock();
        table.push(entry);
        let finished = table
            .iter()
            .filter(|e| e.state.lock().phase != JobPhase::Running)
            .count();
        if finished > FINISHED_RETENTION {
            if let Some(idx) = table
                .iter()
                .position(|e| e.state.lock().phase != JobPhase::Running)
            {
                let evicted = table.remove(idx);
                // An evicted job can no longer be polled, so its
                // journal has nothing left to restore.
                if let Some(dir) = &self.dir {
                    let _ = std::fs::remove_file(journal_path(dir, evicted.id));
                    let _ = std::fs::remove_file(checkpoint_path(dir, evicted.id));
                }
            }
        }
    }

    /// Joins every job thread spawned so far (shutdown path).
    pub fn join_all(&self) {
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handles.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

fn journal_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("job-{id:08}.json"))
}

fn checkpoint_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("job-{id:08}.checkpoint.jsonl"))
}

/// Writes a journal document durably: temp file, `fsync`, atomic
/// rename. A crash leaves either the old journal or the new one, never
/// a torn half of each.
fn write_journal(path: &Path, value: &Value) -> std::io::Result<()> {
    let text = serde_json::to_string(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// The journal document for `entry` in its current state. `running`
/// journals carry the spec (enough to respawn); terminal journals add
/// the report or error so late polls survive a restart.
fn journal_value(entry: &JobEntry, state: &JobState) -> Value {
    let mut fields = vec![
        ("id".to_string(), entry.id.to_value()),
        (
            "state".to_string(),
            Value::String(state.phase.as_str().to_string()),
        ),
        ("total".to_string(), entry.total.to_value()),
        ("request".to_string(), entry.request.to_value()),
    ];
    if let Some(ns) = &entry.namespace {
        fields.push(("namespace".to_string(), Value::String(ns.clone())));
    }
    if let Some(error) = &state.error {
        fields.push(("error".to_string(), Value::String(error.clone())));
    }
    if let Some(report) = &state.report {
        fields.push(("report".to_string(), report.clone()));
    }
    Value::Object(fields)
}

/// `POST /v1/jobs`: validate the sweep spec, reserve a global slot and
/// a per-tenant slot, journal the spec, spawn the job thread, answer
/// `202` with the id.
pub(crate) fn submit(request: &Request, tenant: usize, shared: &Arc<Shared>) -> Response {
    let body = request.body_text();
    let parsed: Result<SweepRequest, _> = if body.trim().is_empty() {
        Ok(SweepRequest::default())
    } else {
        serde_json::from_str(&body)
    };
    let req = match parsed {
        Ok(req) => req,
        Err(e) => return Response::error(400, &format!("invalid request body: {e}")),
    };
    if let Err(e) = ApiContext::validate_sweep(&req) {
        return Response::error(e.status, &e.message);
    }
    if shared.stop.load(Ordering::SeqCst) || signal::shutdown_requested() {
        return Response::error(503, "server shutting down").header("Retry-After", "1");
    }
    let jobs = &shared.jobs;
    // Reserve the slot atomically so racing submits cannot overshoot.
    if jobs
        .active
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |a| {
            (a < jobs.capacity).then_some(a + 1)
        })
        .is_err()
    {
        return Response::error(
            503,
            &format!("job capacity {} reached, try again", jobs.capacity),
        )
        .header("Retry-After", "1");
    }
    // The tenant's own slice of the job slots; release the global slot
    // if this tenant is already at its cap.
    let owner = shared.tenants.tenant(tenant);
    if !owner.try_reserve_job() {
        jobs.active.fetch_sub(1, Ordering::SeqCst);
        return Response::error(
            503,
            &format!("tenant job capacity {} reached, try again", owner.max_jobs),
        )
        .header("Retry-After", "1");
    }
    let id = jobs.next_id.fetch_add(1, Ordering::SeqCst) + 1;
    jobs.submitted.fetch_add(1, Ordering::Relaxed);
    let feed = Arc::new(ProgressFeed::new(req.seeds));
    let entry = Arc::new(JobEntry {
        id,
        total: req.seeds,
        namespace: owner.namespace().map(str::to_string),
        request: req,
        feed: Arc::clone(&feed),
        state: Mutex::new(JobState {
            phase: JobPhase::Running,
            report: None,
            error: None,
        }),
    });
    // Journal before answering 202: once the client holds the id, a
    // crash must not forget the job. A journal failure downgrades the
    // job to in-memory-only rather than rejecting it.
    if let Some(dir) = &jobs.dir {
        let value = journal_value(&entry, &entry.state.lock());
        if let Err(e) = write_journal(&journal_path(dir, id), &value) {
            eprintln!("wrsn-serve: job {id} journal write failed, job is not durable: {e}");
        }
    }
    jobs.insert(Arc::clone(&entry));
    let total = entry.total;
    let worker_shared = Arc::clone(shared);
    let worker_entry = Arc::clone(&entry);
    let spawned = std::thread::Builder::new()
        .name(format!("wrsn-serve-job-{id}"))
        .spawn(move || run_job(&worker_entry, Some(tenant), &worker_shared));
    match spawned {
        Ok(handle) => {
            let mut handles = jobs.handles.lock();
            // Reap finished threads opportunistically so a long-lived
            // server does not accumulate one JoinHandle per job ever
            // submitted; shutdown still joins whatever remains.
            handles.retain(|h| !h.is_finished());
            handles.push(handle);
        }
        // Thread exhaustion: run inline; the submit answer is late but
        // the job still completes and the contract holds.
        Err(_) => run_job(&entry, Some(tenant), shared),
    }
    let body = Value::Object(vec![
        ("id".to_string(), id.to_value()),
        (
            "state".to_string(),
            Value::String(JobPhase::Running.as_str().to_string()),
        ),
        ("total".to_string(), total.to_value()),
    ]);
    json_response(202, &body)
}

/// Runs one job to its terminal state and finalizes its journal.
/// `tenant` is `Some` for freshly submitted jobs (which hold a tenant
/// slot to release) and `None` for jobs respawned by [`restore`].
fn run_job(entry: &Arc<JobEntry>, tenant: Option<usize>, shared: &Arc<Shared>) {
    let checkpoint = shared
        .jobs
        .dir
        .as_ref()
        .map(|dir| checkpoint_path(dir, entry.id));
    let result = shared.api.sweep_job_in(
        entry.namespace.as_deref(),
        &entry.request,
        Some(Arc::clone(&entry.feed)),
        checkpoint.as_deref(),
    );
    {
        let mut state = entry.state.lock();
        match result {
            Ok(outcome) => {
                shared.metrics.add_cache(&outcome.cache);
                if let Some(tenant) = tenant {
                    shared.tenants.add_cache(tenant, &outcome.cache);
                }
                state.phase = JobPhase::Done;
                state.report = Some(outcome.body);
                entry.feed.finish(None);
            }
            Err(e) => {
                state.phase = JobPhase::Failed;
                state.error = Some(e.message.clone());
                entry.feed.finish(Some(e.message));
            }
        }
        // Rewrite the journal with the terminal state so a restart
        // serves the same poll answer, then drop the checkpoint — the
        // report is now the durable artifact.
        if let Some(dir) = &shared.jobs.dir {
            let path = journal_path(dir, entry.id);
            if let Err(e) = write_journal(&path, &journal_value(entry, &state)) {
                eprintln!("wrsn-serve: job {} journal finalize failed: {e}", entry.id);
            } else if let Some(checkpoint) = &checkpoint {
                let _ = std::fs::remove_file(checkpoint);
            }
        }
    }
    if let Some(tenant) = tenant {
        shared.tenants.tenant(tenant).release_job();
    }
    shared.jobs.active.fetch_sub(1, Ordering::SeqCst);
}

/// Replays the journal directory on startup: terminal journals are
/// reloaded so `GET /v1/jobs/{id}` keeps answering across restarts, and
/// `running` journals — jobs a crash or kill interrupted — are
/// respawned with their checkpoint so completed seeds replay instead of
/// recomputing. Unreadable journals are skipped with a warning; they
/// never block startup.
pub(crate) fn restore(shared: &Arc<Shared>) {
    let Some(dir) = shared.jobs.dir.clone() else {
        return;
    };
    let Ok(listing) = std::fs::read_dir(&dir) else {
        return;
    };
    let mut journals: Vec<PathBuf> = listing
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name().is_some_and(|n| {
                let name = n.to_string_lossy();
                name.starts_with("job-") && name.ends_with(".json")
            })
        })
        .collect();
    journals.sort();
    let mut max_id = 0u64;
    for path in journals {
        let parsed = std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|text| serde_json::from_str::<Value>(&text).map_err(|e| e.to_string()));
        let value = match parsed {
            Ok(value) => value,
            Err(why) => {
                eprintln!(
                    "wrsn-serve: skipping unreadable job journal {}: {why}",
                    path.display()
                );
                continue;
            }
        };
        let Some(id) = value.get("id").and_then(Value::as_u64) else {
            continue;
        };
        let Some(request) = value
            .get("request")
            .and_then(|r| SweepRequest::from_value(r).ok())
        else {
            eprintln!(
                "wrsn-serve: skipping job journal {} without a sweep spec",
                path.display()
            );
            continue;
        };
        max_id = max_id.max(id);
        let total = value.get("total").and_then(Value::as_u64).unwrap_or(0);
        let namespace = value
            .get("namespace")
            .and_then(Value::as_str)
            .map(str::to_string);
        let phase = value.get("state").and_then(Value::as_str).unwrap_or("");
        let feed = Arc::new(ProgressFeed::new(total));
        match phase {
            "done" | "failed" => {
                let error = value
                    .get("error")
                    .and_then(Value::as_str)
                    .map(str::to_string);
                feed.finish(error.clone());
                let entry = Arc::new(JobEntry {
                    id,
                    total,
                    namespace,
                    request,
                    feed,
                    state: Mutex::new(JobState {
                        phase: if phase == "done" {
                            JobPhase::Done
                        } else {
                            JobPhase::Failed
                        },
                        report: value.get("report").cloned(),
                        error,
                    }),
                });
                shared.jobs.table.lock().push(entry);
            }
            "running" => {
                let entry = Arc::new(JobEntry {
                    id,
                    total,
                    namespace,
                    request,
                    feed,
                    state: Mutex::new(JobState {
                        phase: JobPhase::Running,
                        report: None,
                        error: None,
                    }),
                });
                shared.jobs.table.lock().push(Arc::clone(&entry));
                shared.jobs.active.fetch_add(1, Ordering::SeqCst);
                shared.jobs.resumed.fetch_add(1, Ordering::Relaxed);
                let worker_shared = Arc::clone(shared);
                let worker_entry = Arc::clone(&entry);
                let spawned = std::thread::Builder::new()
                    .name(format!("wrsn-serve-job-{id}"))
                    .spawn(move || run_job(&worker_entry, None, &worker_shared));
                match spawned {
                    Ok(handle) => shared.jobs.handles.lock().push(handle),
                    Err(_) => run_job(&entry, None, shared),
                }
            }
            other => {
                eprintln!(
                    "wrsn-serve: skipping job journal {} with unknown state {other:?}",
                    path.display()
                );
            }
        }
    }
    // Fresh ids continue past everything journaled so a restart never
    // reuses an id a client may still be polling.
    let _ = shared
        .jobs
        .next_id
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |cur| {
            (cur < max_id).then_some(max_id)
        });
}

/// `GET /v1/jobs/{id}`: state, progress counters, and — once done —
/// the full sweep report (byte-identical to `/v1/sweep`).
pub(crate) fn poll(id: u64, shared: &Shared) -> Response {
    let Some(entry) = shared.jobs.get(id) else {
        return Response::error(404, "no such job");
    };
    let snapshot = entry.feed.progress();
    let state = entry.state.lock();
    // A journal-restored done entry has an empty feed; its work is
    // nonetheless complete, so report full progress.
    let done = if state.phase == JobPhase::Done {
        entry.total
    } else {
        snapshot.done
    };
    let mut fields = vec![
        ("id".to_string(), entry.id.to_value()),
        (
            "state".to_string(),
            Value::String(state.phase.as_str().to_string()),
        ),
        ("done".to_string(), done.to_value()),
        ("total".to_string(), entry.total.to_value()),
    ];
    if let Some(error) = &state.error {
        fields.push(("error".to_string(), Value::String(error.clone())));
    }
    if let Some(report) = &state.report {
        fields.push(("report".to_string(), report.clone()));
    }
    json_response(200, &Value::Object(fields))
}

/// `GET /v1/jobs/{id}/events?since=N`: the per-seed event stream from
/// cursor `N`, plus the next cursor to poll with.
pub(crate) fn events(id: u64, since: usize, shared: &Shared) -> Response {
    let Some(entry) = shared.jobs.get(id) else {
        return Response::error(404, "no such job");
    };
    let (next, events) = entry.feed.events_since(since);
    let phase = entry.state.lock().phase;
    let body = Value::Object(vec![
        ("id".to_string(), entry.id.to_value()),
        (
            "state".to_string(),
            Value::String(phase.as_str().to_string()),
        ),
        ("next".to_string(), next.to_value()),
        ("events".to_string(), Value::Array(events)),
    ]);
    json_response(200, &body)
}

//! The async job API: bounded background sweeps with incremental
//! progress.
//!
//! `POST /v1/jobs` accepts the same body as `/v1/sweep` but returns a
//! job id immediately (`202`); the sweep runs on its own named thread
//! via [`ApiContext::sweep_with_progress`], publishing every terminal
//! seed to a [`ProgressFeed`]. Clients poll `GET /v1/jobs/{id}` for
//! state and the final report, or `GET /v1/jobs/{id}/events?since=N`
//! for the incremental event stream (cursor-based, so polling is
//! idempotent and lossless). The final report is byte-identical to
//! what a synchronous `/v1/sweep` with the same spec returns.
//!
//! Concurrency is bounded by [`crate::server::ServerConfig::max_jobs`];
//! submissions past the cap are rejected with `503` + `Retry-After`,
//! the same admission contract the request queue uses.

use crate::api::{ApiContext, SweepRequest};
use crate::dispatch::json_response;
use crate::http::{Request, Response};
use crate::server::Shared;
use crate::signal;
use parking_lot::Mutex;
use serde::{Serialize as _, Value};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use wrsn_engine::ProgressFeed;

/// Finished jobs kept for late polls; the oldest finished entry is
/// evicted past this.
const FINISHED_RETENTION: usize = 64;

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobPhase {
    Running,
    Done,
    Failed,
}

impl JobPhase {
    fn as_str(self) -> &'static str {
        match self {
            JobPhase::Running => "running",
            JobPhase::Done => "done",
            JobPhase::Failed => "failed",
        }
    }
}

#[derive(Debug)]
struct JobState {
    phase: JobPhase,
    report: Option<Value>,
    error: Option<String>,
}

/// One submitted job: its progress feed plus the terminal state.
#[derive(Debug)]
struct JobEntry {
    id: u64,
    total: u64,
    feed: Arc<ProgressFeed>,
    state: Mutex<JobState>,
}

/// The job table: id allocation, the concurrency cap, and the handles
/// shutdown joins.
#[derive(Debug)]
pub(crate) struct Jobs {
    capacity: usize,
    next_id: AtomicU64,
    submitted: AtomicU64,
    active: AtomicUsize,
    table: Mutex<Vec<Arc<JobEntry>>>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Jobs {
    /// An empty table admitting at most `capacity` concurrent jobs.
    pub fn new(capacity: usize) -> Self {
        Jobs {
            capacity: capacity.max(1),
            next_id: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            active: AtomicUsize::new(0),
            table: Mutex::new(Vec::new()),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The concurrent-job cap.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently running.
    pub fn active(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// Jobs accepted since startup.
    pub fn submitted(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    fn get(&self, id: u64) -> Option<Arc<JobEntry>> {
        self.table
            .lock()
            .iter()
            .find(|e| e.id == id)
            .map(Arc::clone)
    }

    fn insert(&self, entry: Arc<JobEntry>) {
        let mut table = self.table.lock();
        table.push(entry);
        let finished = table
            .iter()
            .filter(|e| e.state.lock().phase != JobPhase::Running)
            .count();
        if finished > FINISHED_RETENTION {
            if let Some(idx) = table
                .iter()
                .position(|e| e.state.lock().phase != JobPhase::Running)
            {
                table.remove(idx);
            }
        }
    }

    /// Joins every job thread spawned so far (shutdown path).
    pub fn join_all(&self) {
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.handles.lock());
        for handle in handles {
            let _ = handle.join();
        }
    }
}

/// `POST /v1/jobs`: validate the sweep spec, reserve a global slot and
/// a per-tenant slot, spawn the job thread, answer `202` with the id.
pub(crate) fn submit(request: &Request, tenant: usize, shared: &Arc<Shared>) -> Response {
    let body = request.body_text();
    let parsed: Result<SweepRequest, _> = if body.trim().is_empty() {
        Ok(SweepRequest::default())
    } else {
        serde_json::from_str(&body)
    };
    let req = match parsed {
        Ok(req) => req,
        Err(e) => return Response::error(400, &format!("invalid request body: {e}")),
    };
    if let Err(e) = ApiContext::validate_sweep(&req) {
        return Response::error(e.status, &e.message);
    }
    if shared.stop.load(Ordering::SeqCst) || signal::shutdown_requested() {
        return Response::error(503, "server shutting down").header("Retry-After", "1");
    }
    let jobs = &shared.jobs;
    // Reserve the slot atomically so racing submits cannot overshoot.
    if jobs
        .active
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |a| {
            (a < jobs.capacity).then_some(a + 1)
        })
        .is_err()
    {
        return Response::error(
            503,
            &format!("job capacity {} reached, try again", jobs.capacity),
        )
        .header("Retry-After", "1");
    }
    // The tenant's own slice of the job slots; release the global slot
    // if this tenant is already at its cap.
    let owner = shared.tenants.tenant(tenant);
    if !owner.try_reserve_job() {
        jobs.active.fetch_sub(1, Ordering::SeqCst);
        return Response::error(
            503,
            &format!("tenant job capacity {} reached, try again", owner.max_jobs),
        )
        .header("Retry-After", "1");
    }
    let id = jobs.next_id.fetch_add(1, Ordering::SeqCst) + 1;
    jobs.submitted.fetch_add(1, Ordering::Relaxed);
    let feed = Arc::new(ProgressFeed::new(req.seeds));
    let entry = Arc::new(JobEntry {
        id,
        total: req.seeds,
        feed: Arc::clone(&feed),
        state: Mutex::new(JobState {
            phase: JobPhase::Running,
            report: None,
            error: None,
        }),
    });
    jobs.insert(Arc::clone(&entry));
    let total = req.seeds;
    let worker_shared = Arc::clone(shared);
    let worker_entry = Arc::clone(&entry);
    let worker_req = req.clone();
    let spawned = std::thread::Builder::new()
        .name(format!("wrsn-serve-job-{id}"))
        .spawn(move || run_job(&worker_entry, &worker_req, tenant, &worker_shared));
    match spawned {
        Ok(handle) => {
            let mut handles = jobs.handles.lock();
            // Reap finished threads opportunistically so a long-lived
            // server does not accumulate one JoinHandle per job ever
            // submitted; shutdown still joins whatever remains.
            handles.retain(|h| !h.is_finished());
            handles.push(handle);
        }
        // Thread exhaustion: run inline; the submit answer is late but
        // the job still completes and the contract holds.
        Err(_) => run_job(&entry, &req, tenant, shared),
    }
    let body = Value::Object(vec![
        ("id".to_string(), id.to_value()),
        (
            "state".to_string(),
            Value::String(JobPhase::Running.as_str().to_string()),
        ),
        ("total".to_string(), total.to_value()),
    ]);
    json_response(202, &body)
}

fn run_job(entry: &Arc<JobEntry>, req: &SweepRequest, tenant: usize, shared: &Arc<Shared>) {
    let owner = shared.tenants.tenant(tenant);
    let result =
        shared
            .api
            .sweep_with_progress_in(owner.namespace(), req, Some(Arc::clone(&entry.feed)));
    {
        let mut state = entry.state.lock();
        match result {
            Ok(outcome) => {
                shared.metrics.add_cache(&outcome.cache);
                shared.tenants.add_cache(tenant, &outcome.cache);
                state.phase = JobPhase::Done;
                state.report = Some(outcome.body);
                entry.feed.finish(None);
            }
            Err(e) => {
                state.phase = JobPhase::Failed;
                state.error = Some(e.message.clone());
                entry.feed.finish(Some(e.message));
            }
        }
    }
    owner.release_job();
    shared.jobs.active.fetch_sub(1, Ordering::SeqCst);
}

/// `GET /v1/jobs/{id}`: state, progress counters, and — once done —
/// the full sweep report (byte-identical to `/v1/sweep`).
pub(crate) fn poll(id: u64, shared: &Shared) -> Response {
    let Some(entry) = shared.jobs.get(id) else {
        return Response::error(404, "no such job");
    };
    let snapshot = entry.feed.progress();
    let state = entry.state.lock();
    let mut fields = vec![
        ("id".to_string(), entry.id.to_value()),
        (
            "state".to_string(),
            Value::String(state.phase.as_str().to_string()),
        ),
        ("done".to_string(), snapshot.done.to_value()),
        ("total".to_string(), entry.total.to_value()),
    ];
    if let Some(error) = &state.error {
        fields.push(("error".to_string(), Value::String(error.clone())));
    }
    if let Some(report) = &state.report {
        fields.push(("report".to_string(), report.clone()));
    }
    json_response(200, &Value::Object(fields))
}

/// `GET /v1/jobs/{id}/events?since=N`: the per-seed event stream from
/// cursor `N`, plus the next cursor to poll with.
pub(crate) fn events(id: u64, since: usize, shared: &Shared) -> Response {
    let Some(entry) = shared.jobs.get(id) else {
        return Response::error(404, "no such job");
    };
    let (next, events) = entry.feed.events_since(since);
    let phase = entry.state.lock().phase;
    let body = Value::Object(vec![
        ("id".to_string(), entry.id.to_value()),
        (
            "state".to_string(),
            Value::String(phase.as_str().to_string()),
        ),
        ("next".to_string(), next.to_value()),
        ("events".to_string(), Value::Array(events)),
    ]);
    json_response(200, &body)
}

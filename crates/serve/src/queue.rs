//! The bounded admission queue between the acceptor and the workers.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue: non-blocking pushes
/// (the acceptor must never stall on a full queue — it rejects instead)
/// and blocking pops (workers sleep until work or shutdown).
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    available: Condvar,
}

impl<T> BoundedQueue<T> {
    /// A queue holding at most `capacity` items.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity,
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueues `item`, or hands it back when the queue is full or
    /// closed (the caller turns that into a `503`).
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` on overflow or after [`BoundedQueue::close`].
    pub fn try_push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (returning it) or the queue is
    /// closed *and* drained (returning `None`). Closing does not drop
    /// queued items — workers finish the backlog first.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pushes start failing immediately, pops drain
    /// the backlog and then return `None`. Idempotent.
    pub fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Locks the state, recovering from poisoning: a panicking handler
    /// must never wedge admission for every subsequent request. The
    /// queue's invariants hold across unwinds (every mutation is a
    /// single `VecDeque` operation), so the inner state is always safe
    /// to reuse.
    fn lock(&self) -> MutexGuard<'_, State<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_in_fifo_order() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn overflow_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        assert_eq!(q.try_push("c"), Err("c"));
        assert_eq!(q.capacity(), 2);
    }

    #[test]
    fn close_drains_then_stops() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.close();
        assert_eq!(q.try_push(2), Err(2), "closed queue rejects pushes");
        assert_eq!(q.pop(), Some(1), "backlog still drains");
        assert_eq!(q.pop(), None, "then pops see the close");
        q.close(); // idempotent
    }

    #[test]
    fn poisoned_lock_stays_serviceable() {
        // A panic while holding the state lock (what a panicking
        // handler unwinding through queue internals looks like) must
        // not take the queue down with it: pushes, pops, and close all
        // keep working on the recovered guard.
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = q.state.lock().unwrap();
            panic!("job panicked while the queue lock was held");
        }));
        std::panic::set_hook(prev);
        assert!(poison.is_err());
        assert!(
            q.state.is_poisoned(),
            "the panic must have poisoned the lock"
        );

        q.try_push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        q.close();
        assert_eq!(q.try_push(3), Err(3));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn blocking_pop_wakes_on_push_and_close() {
        let q = Arc::new(BoundedQueue::new(4));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for i in 0..10 {
            // Retry on overflow: the consumer drains concurrently.
            let mut item = i;
            loop {
                match q.try_push(item) {
                    Ok(()) => break,
                    Err(back) => {
                        item = back;
                        std::thread::yield_now();
                    }
                }
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }
}

//! Seed-driven fault injection for the HTTP server.
//!
//! A [`ChaosPolicy`] makes the server misbehave on purpose — injected
//! `500`s, responses truncated mid-body, artificial latency — so the
//! retrying client and circuit breaker can be exercised end to end
//! without real infrastructure failures. All rolls come from one
//! seeded [`SmallRng`] behind a mutex, so a chaos run is reproducible
//! per `(seed, request order)` and zero-probability axes change
//! nothing. Probe endpoints (`/healthz`, `/statusz`) are exempt:
//! readiness checks stay trustworthy while `/v1/*` burns.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;
use std::time::Duration;

/// What the server does, on purpose, to a fraction of requests.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPolicy {
    /// Seed for the chaos random stream.
    pub seed: u64,
    /// Probability a request is answered with an injected `500`.
    pub fault_prob: f64,
    /// Probability a response is truncated mid-body (the connection is
    /// then closed, so the client sees a short read).
    pub truncate_prob: f64,
    /// Probability a request is delayed by [`ChaosPolicy::latency`]
    /// before being handled.
    pub latency_prob: f64,
    /// The injected delay when the latency die fires.
    pub latency: Duration,
}

impl ChaosPolicy {
    /// A do-nothing policy whose random stream is seeded with `seed`.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        ChaosPolicy {
            seed,
            fault_prob: 0.0,
            truncate_prob: 0.0,
            latency_prob: 0.0,
            latency: Duration::ZERO,
        }
    }

    /// Sets the injected-`500` probability.
    #[must_use]
    pub fn faults(mut self, prob: f64) -> Self {
        self.fault_prob = prob;
        self
    }

    /// Sets the mid-body truncation probability.
    #[must_use]
    pub fn truncation(mut self, prob: f64) -> Self {
        self.truncate_prob = prob;
        self
    }

    /// Sets the artificial-latency probability and delay.
    #[must_use]
    pub fn latency(mut self, prob: f64, delay: Duration) -> Self {
        self.latency_prob = prob;
        self.latency = delay;
        self
    }

    /// `true` when every axis is off.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fault_prob == 0.0 && self.truncate_prob == 0.0 && self.latency_prob == 0.0
    }

    /// Validates every probability lies in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first out-of-range axis.
    pub fn validate(&self) -> Result<(), String> {
        for (name, prob) in [
            ("chaos fault", self.fault_prob),
            ("chaos truncation", self.truncate_prob),
            ("chaos latency", self.latency_prob),
        ] {
            if !(0.0..=1.0).contains(&prob) {
                return Err(format!("{name} probability {prob} must lie in [0, 1]"));
            }
        }
        Ok(())
    }
}

/// The outcome of one chaos roll for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosDecision {
    /// Answer with an injected `500` instead of running the handler.
    pub inject_fault: bool,
    /// Cut the serialized response roughly in half and close.
    pub truncate: bool,
    /// Sleep this long before handling, if set.
    pub delay: Option<Duration>,
}

impl ChaosDecision {
    /// The decision that changes nothing.
    pub const NONE: ChaosDecision = ChaosDecision {
        inject_fault: false,
        truncate: false,
        delay: None,
    };
}

/// A [`ChaosPolicy`] plus its live random stream, shared by the worker
/// threads.
#[derive(Debug)]
pub struct ChaosState {
    policy: ChaosPolicy,
    rng: Mutex<SmallRng>,
}

impl ChaosState {
    /// Wraps a policy with a random stream seeded from it.
    #[must_use]
    pub fn new(policy: ChaosPolicy) -> Self {
        let rng = Mutex::new(SmallRng::seed_from_u64(policy.seed));
        ChaosState { policy, rng }
    }

    /// The wrapped policy.
    #[must_use]
    pub fn policy(&self) -> &ChaosPolicy {
        &self.policy
    }

    /// Rolls the three dice for one request, in a fixed order (latency,
    /// fault, truncation) so a given seed yields the same decision
    /// sequence regardless of which axes are enabled downstream.
    pub fn decide(&self) -> ChaosDecision {
        if self.policy.is_empty() {
            return ChaosDecision::NONE;
        }
        // Recover a poisoned guard: a worker panicking mid-roll must
        // not disable chaos (or panic every later request) — the RNG
        // state is always valid to keep drawing from.
        let mut rng = self
            .rng
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let delay = (self.policy.latency_prob > 0.0
            && rng.random::<f64>() < self.policy.latency_prob)
            .then_some(self.policy.latency);
        let inject_fault =
            self.policy.fault_prob > 0.0 && rng.random::<f64>() < self.policy.fault_prob;
        let truncate =
            self.policy.truncate_prob > 0.0 && rng.random::<f64>() < self.policy.truncate_prob;
        ChaosDecision {
            inject_fault,
            truncate,
            delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_layer_axes() {
        let policy = ChaosPolicy::seeded(7)
            .faults(0.1)
            .truncation(0.05)
            .latency(0.2, Duration::from_millis(30));
        assert_eq!(policy.seed, 7);
        assert_eq!(policy.fault_prob, 0.1);
        assert_eq!(policy.truncate_prob, 0.05);
        assert_eq!(policy.latency_prob, 0.2);
        assert!(!policy.is_empty());
        assert!(ChaosPolicy::seeded(0).is_empty());
        assert!(policy.validate().is_ok());
    }

    #[test]
    fn validation_rejects_out_of_range_probabilities() {
        assert!(ChaosPolicy::seeded(0).faults(1.5).validate().is_err());
        assert!(ChaosPolicy::seeded(0).truncation(-0.1).validate().is_err());
        assert!(ChaosPolicy::seeded(0)
            .latency(2.0, Duration::ZERO)
            .validate()
            .is_err());
    }

    #[test]
    fn empty_policy_never_fires() {
        let state = ChaosState::new(ChaosPolicy::seeded(3));
        for _ in 0..100 {
            assert_eq!(state.decide(), ChaosDecision::NONE);
        }
    }

    #[test]
    fn decisions_replay_identically_per_seed() {
        let mk = || {
            ChaosState::new(
                ChaosPolicy::seeded(42)
                    .faults(0.3)
                    .truncation(0.2)
                    .latency(0.5, Duration::from_millis(1)),
            )
        };
        let (a, b) = (mk(), mk());
        let run = |s: &ChaosState| (0..200).map(|_| s.decide()).collect::<Vec<_>>();
        let (da, db) = (run(&a), run(&b));
        assert_eq!(da, db);
        assert!(da.iter().any(|d| d.inject_fault));
        assert!(da.iter().any(|d| d.truncate));
        assert!(da.iter().any(|d| d.delay.is_some()));
    }

    #[test]
    fn certain_fault_fires_every_time() {
        let state = ChaosState::new(ChaosPolicy::seeded(0).faults(1.0));
        for _ in 0..20 {
            assert!(state.decide().inject_fault);
        }
    }
}

//! Request/response types and handlers for the `/v1` endpoints.
//!
//! Handlers are plain functions over an [`ApiContext`] — no HTTP in
//! sight — so the whole API surface unit-tests without sockets. The
//! server module wires them to parsed [`crate::http::Request`]s.

use serde::{Deserialize, Serialize, Value};
use std::sync::Arc;
use wrsn_energy::Energy;
use wrsn_engine::{
    CacheStats, EngineError, Experiment, InstanceParams, ProgressFeed, ResultStore, SolverRegistry,
};
use wrsn_sim::{ChargerPolicy, FaultPlan, SimConfig, Simulator, DEFAULT_FADE_FLOOR};

/// The maximum seed count a single `/v1/sweep` request may ask for —
/// big sweeps belong in the CLI, not behind a request timeout.
pub const MAX_SWEEP_SEEDS: u64 = 1024;

fn default_solver() -> String {
    "irfh".to_string()
}

fn default_rounds() -> u64 {
    1000
}

fn default_bits() -> u64 {
    4000
}

fn default_battery() -> f64 {
    0.1
}

fn default_sweep_seeds() -> u64 {
    8
}

fn default_fade_floor() -> f64 {
    DEFAULT_FADE_FLOOR
}

/// `POST /v1/solve` body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SolveRequest {
    /// Instance parameters (defaults mirror `wrsn solve`).
    #[serde(default)]
    pub instance: InstanceParams,
    /// Solver registry name.
    #[serde(default = "default_solver")]
    pub solver: String,
    /// Sampling seed.
    #[serde(default)]
    pub seed: u64,
    /// When `true`, the response includes the full deployment counts
    /// and routing parents, not just the cost summary.
    #[serde(default)]
    pub include_solution: bool,
}

impl Default for SolveRequest {
    fn default() -> Self {
        SolveRequest {
            instance: InstanceParams::default(),
            solver: default_solver(),
            seed: 0,
            include_solution: false,
        }
    }
}

/// `POST /v1/simulate` body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulateRequest {
    /// Instance parameters.
    #[serde(default)]
    pub instance: InstanceParams,
    /// Solver registry name.
    #[serde(default = "default_solver")]
    pub solver: String,
    /// Sampling seed.
    #[serde(default)]
    pub seed: u64,
    /// Rounds to simulate.
    #[serde(default = "default_rounds")]
    pub rounds: u64,
    /// Bits per report.
    #[serde(default = "default_bits")]
    pub bits_per_report: u64,
    /// Per-node battery capacity in joules.
    #[serde(default = "default_battery")]
    pub battery_j: f64,
    /// Seed for the fault plan's RNG streams.
    #[serde(default)]
    pub fault_seed: u64,
    /// Per-hop link-loss probability (0 disables).
    #[serde(default)]
    pub link_loss: f64,
    /// Probability the charger skips a scheduled visit (0 disables).
    #[serde(default)]
    pub charger_skip: f64,
    /// Probability a charger visit is delayed (0 disables).
    #[serde(default)]
    pub charger_delay: f64,
    /// Per-charge-cycle capacity fade fraction (0 disables).
    #[serde(default)]
    pub battery_fade: f64,
    /// Capacity floor for fade, as a fraction of nameplate.
    #[serde(default = "default_fade_floor")]
    pub fade_floor: f64,
    /// First round of a total charger breakdown (requires
    /// `charger_down_until`).
    #[serde(default)]
    pub charger_down_from: Option<u64>,
    /// First round after the breakdown ends.
    #[serde(default)]
    pub charger_down_until: Option<u64>,
}

impl Default for SimulateRequest {
    fn default() -> Self {
        SimulateRequest {
            instance: InstanceParams::default(),
            solver: default_solver(),
            seed: 0,
            rounds: default_rounds(),
            bits_per_report: default_bits(),
            battery_j: default_battery(),
            fault_seed: 0,
            link_loss: 0.0,
            charger_skip: 0.0,
            charger_delay: 0.0,
            battery_fade: 0.0,
            fade_floor: default_fade_floor(),
            charger_down_from: None,
            charger_down_until: None,
        }
    }
}

/// `POST /v1/sweep` body.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepRequest {
    /// Instance parameters.
    #[serde(default)]
    pub instance: InstanceParams,
    /// Solver registry name.
    #[serde(default = "default_solver")]
    pub solver: String,
    /// First seed of the range.
    #[serde(default)]
    pub seed_start: u64,
    /// Number of seeds (capped at [`MAX_SWEEP_SEEDS`]).
    #[serde(default = "default_sweep_seeds")]
    pub seeds: u64,
}

impl Default for SweepRequest {
    fn default() -> Self {
        SweepRequest {
            instance: InstanceParams::default(),
            solver: default_solver(),
            seed_start: 0,
            seeds: default_sweep_seeds(),
        }
    }
}

/// A handler failure, carrying the HTTP status it maps to.
#[derive(Debug)]
pub struct ApiError {
    /// The HTTP status (400 for caller mistakes, 500 otherwise).
    pub status: u16,
    /// The human-readable message for the `{"error": …}` body.
    pub message: String,
}

impl ApiError {
    /// A 400 caller error.
    #[must_use]
    pub fn bad_request(message: impl Into<String>) -> Self {
        ApiError {
            status: 400,
            message: message.into(),
        }
    }
}

impl From<EngineError> for ApiError {
    fn from(e: EngineError) -> Self {
        let status = match &e {
            EngineError::InvalidRequest(_)
            | EngineError::UnknownSolver { .. }
            | EngineError::NoSeeds
            | EngineError::Build(_)
            | EngineError::Spec(_)
            | EngineError::Solve { .. } => 400,
            _ => 500,
        };
        ApiError {
            status,
            message: e.to_string(),
        }
    }
}

/// What the handlers need: the solver registry and (optionally) the
/// shared result store every request routes through.
pub struct ApiContext {
    /// Solver name → factory.
    pub registry: SolverRegistry,
    /// The shared cache; `None` serves uncached.
    pub store: Option<Arc<ResultStore>>,
}

/// What a handler returns: the response document plus the cache stats
/// of the experiment behind it (all zeros when the store is disabled
/// or the endpoint doesn't cache).
#[derive(Debug)]
pub struct ApiOutcome {
    /// The JSON body (serialized by the server).
    pub body: Value,
    /// Cache traffic this request generated.
    pub cache: CacheStats,
}

impl ApiOutcome {
    fn uncached(body: Value) -> Self {
        ApiOutcome {
            body,
            cache: CacheStats::default(),
        }
    }
}

impl ApiContext {
    /// A context over the default registry with no store.
    #[must_use]
    pub fn new() -> Self {
        ApiContext {
            registry: SolverRegistry::with_defaults(),
            store: None,
        }
    }

    /// Runs one (instance, solver, seed) cell through the cached
    /// experiment pipeline and returns the run report. A `Some`
    /// namespace keys the cache per tenant; `None` uses the shared
    /// default namespace (byte-identical fingerprints to a
    /// single-tenant server).
    fn run_cell(
        &self,
        namespace: Option<&str>,
        instance: &InstanceParams,
        solver: &str,
        seeds: std::ops::Range<u64>,
        progress: Option<Arc<ProgressFeed>>,
        checkpoint: Option<&std::path::Path>,
    ) -> Result<(wrsn_engine::RunReport, CacheStats), ApiError> {
        let source = instance.source()?;
        let mut experiment = Experiment::new(source)
            .solver(solver)
            .seeds(seeds)
            .record_timings(false);
        if let Some(ns) = namespace {
            experiment = experiment.cache_namespace(ns);
        }
        if let Some(store) = &self.store {
            experiment = experiment.cache(store.clone());
            // The checkpoint rides the store's fsync discipline so a
            // durable server never acknowledges a seed it could lose.
            experiment = experiment.durability(store.durability());
        }
        if let Some(path) = checkpoint {
            // Resume is safe unconditionally: a missing checkpoint file
            // just starts the sweep from scratch, and completed seeds
            // in an existing one are skipped (failed seeds retry).
            experiment = experiment.checkpoint(path).resume(true);
        }
        if let Some(feed) = progress {
            experiment = experiment.progress(feed);
        }
        // A request scenario rebinds the scheduling solvers and keys the
        // cache fingerprints (via Experiment::scenario), so differently
        // parameterized requests never collide in the store.
        let mut report = match &instance.scenario {
            Some(spec) => experiment
                .scenario(spec.clone())
                .run(&self.registry.scenario_overlay(spec))?,
            None => experiment.run(&self.registry)?,
        };
        // The cache block is stripped from the body so identical
        // requests serialize byte-identically whether they hit or miss;
        // the stats flow to /statusz and the x-cache-* headers instead.
        let cache = report.cache.take().unwrap_or_default();
        Ok((report, cache))
    }

    /// `POST /v1/solve`: one seed through the cached pipeline, plus an
    /// optional full solution dump.
    ///
    /// # Errors
    ///
    /// [`ApiError`] with status 400 for invalid parameters or an
    /// unknown solver, 500 for store failures.
    pub fn solve(&self, req: &SolveRequest) -> Result<ApiOutcome, ApiError> {
        self.solve_in(None, req)
    }

    /// [`solve`](ApiContext::solve) under an optional per-tenant cache
    /// namespace. `None` is byte-identical to [`solve`](ApiContext::solve).
    ///
    /// # Errors
    ///
    /// Same as [`solve`](ApiContext::solve).
    pub fn solve_in(
        &self,
        namespace: Option<&str>,
        req: &SolveRequest,
    ) -> Result<ApiOutcome, ApiError> {
        let (report, cache) = self.run_cell(
            namespace,
            &req.instance,
            &req.solver,
            req.seed..req.seed + 1,
            None,
            None,
        )?;
        let run = &report.runs[0];
        let mut fields = vec![
            ("solver".to_string(), Value::String(req.solver.clone())),
            ("seed".to_string(), req.seed.to_value()),
            ("cost_uj".to_string(), run.cost_uj.to_value()),
        ];
        if req.include_solution {
            // The report only carries costs; rebuild the instance and
            // re-solve for the structural dump. This path bypasses the
            // cache by design — it is a debugging aid, not the hot path.
            let source = req.instance.source()?;
            let instance = source.instance(req.seed)?;
            let solver = match &req.instance.scenario {
                Some(spec) => self.registry.scenario_overlay(spec).create(&req.solver)?,
                None => self.registry.create(&req.solver)?,
            };
            let solution = solver
                .solve(&instance)
                .map_err(|e| ApiError::bad_request(format!("solve failed: {e}")))?;
            let counts: Vec<Value> = solution
                .deployment()
                .counts()
                .iter()
                .map(|&c| c.to_value())
                .collect();
            let parents: Vec<Value> = solution
                .tree()
                .parents()
                .iter()
                .map(|&p| p.to_value())
                .collect();
            fields.push((
                "solution".to_string(),
                Value::Object(vec![
                    (
                        "algorithm".to_string(),
                        Value::String(solution.algorithm().to_string()),
                    ),
                    ("deployment".to_string(), Value::Array(counts)),
                    ("routing_parents".to_string(), Value::Array(parents)),
                    (
                        "total_nodes".to_string(),
                        solution.deployment().total().to_value(),
                    ),
                ]),
            ));
        }
        Ok(ApiOutcome {
            body: Value::Object(fields),
            cache,
        })
    }

    /// `POST /v1/simulate`: solve, then run the discrete-event
    /// simulator with the requested fault knobs.
    ///
    /// # Errors
    ///
    /// [`ApiError`] with status 400 for invalid parameters, fault
    /// probabilities outside `[0, 1]`, or an unknown solver.
    pub fn simulate(&self, req: &SimulateRequest) -> Result<ApiOutcome, ApiError> {
        if req.battery_j <= 0.0 {
            return Err(ApiError::bad_request(format!(
                "battery_j must be positive, got {}",
                req.battery_j
            )));
        }
        let source = req.instance.source()?;
        let instance = source.instance(req.seed)?;
        let solver = self.registry.create(&req.solver)?;
        let solution = solver
            .solve(&instance)
            .map_err(|e| ApiError::bad_request(format!("solve failed: {e}")))?;
        let breakdown = match (req.charger_down_from, req.charger_down_until) {
            (Some(from), Some(until)) => Some((from, until)),
            (None, None) => None,
            _ => {
                return Err(ApiError::bad_request(
                    "charger_down_from and charger_down_until must be given together",
                ));
            }
        };
        let faults = if req.link_loss > 0.0
            || req.charger_skip > 0.0
            || req.charger_delay > 0.0
            || req.battery_fade > 0.0
            || breakdown.is_some()
        {
            let mut plan = FaultPlan::seeded(req.fault_seed);
            if req.link_loss > 0.0 {
                plan = plan.link_loss(req.link_loss);
            }
            if req.charger_skip > 0.0 {
                plan = plan.charger_skips(req.charger_skip);
            }
            if req.charger_delay > 0.0 {
                plan = plan.charger_delays(req.charger_delay, 5.0);
            }
            if req.battery_fade > 0.0 {
                plan = plan
                    .battery_fade(req.battery_fade)
                    .battery_fade_floor(req.fade_floor);
            }
            if let Some((from, until)) = breakdown {
                plan = plan.charger_breakdown(from, until);
            }
            plan.validate(instance.num_posts())
                .map_err(|why| ApiError::bad_request(format!("fault plan: {why}")))?;
            Some(plan)
        } else {
            None
        };
        let config = SimConfig {
            round_interval_s: 1.0,
            bits_per_report: req.bits_per_report,
            battery_capacity: Energy::from_joules(req.battery_j),
            charger: ChargerPolicy::Threshold {
                interval_s: 10.0,
                trigger_soc: 0.5,
            },
            record_soc_every: None,
            charger_power_w: f64::INFINITY,
            faults,
            tour_order: None,
        };
        let report = Simulator::new(&instance, &solution, config).run(req.rounds);
        let body = Value::Object(vec![
            ("solver".to_string(), Value::String(req.solver.clone())),
            ("seed".to_string(), req.seed.to_value()),
            ("rounds".to_string(), report.rounds_completed.to_value()),
            (
                "reports_delivered".to_string(),
                report.reports_delivered.to_value(),
            ),
            ("reports_lost".to_string(), report.reports_lost.to_value()),
            (
                "delivery_ratio".to_string(),
                report.delivery_ratio().to_value(),
            ),
            (
                "charger_energy_j".to_string(),
                report.charger_energy.as_joules().to_value(),
            ),
            (
                "consumed_energy_j".to_string(),
                report.consumed_energy.as_joules().to_value(),
            ),
            ("link_losses".to_string(), report.link_losses.to_value()),
            ("charger_skips".to_string(), report.charger_skips.to_value()),
            (
                "charger_delays".to_string(),
                report.charger_delays.to_value(),
            ),
            (
                "capacity_floor_hits".to_string(),
                report.capacity_floor_hits.to_value(),
            ),
            (
                "charger_downtime_rounds".to_string(),
                report.charger_downtime_rounds.to_value(),
            ),
            (
                "breakdown_deaths".to_string(),
                report.breakdown_deaths.to_value(),
            ),
            (
                "first_fault_round".to_string(),
                match report.first_fault_round {
                    Some(r) => r.to_value(),
                    None => Value::Null,
                },
            ),
            (
                "first_death_s".to_string(),
                match report.first_death {
                    Some((t, _)) => t.to_value(),
                    None => Value::Null,
                },
            ),
        ]);
        Ok(ApiOutcome::uncached(body))
    }

    /// `POST /v1/sweep`: a small seed grid through the cached pipeline.
    /// Repeated identical requests return byte-identical bodies.
    ///
    /// # Errors
    ///
    /// [`ApiError`] with status 400 for invalid parameters, a zero or
    /// over-cap seed count, or an unknown solver.
    pub fn sweep(&self, req: &SweepRequest) -> Result<ApiOutcome, ApiError> {
        self.sweep_with_progress(req, None)
    }

    /// [`sweep`](ApiContext::sweep) under an optional per-tenant cache
    /// namespace. `None` is byte-identical to [`sweep`](ApiContext::sweep).
    ///
    /// # Errors
    ///
    /// Same as [`sweep`](ApiContext::sweep).
    pub fn sweep_in(
        &self,
        namespace: Option<&str>,
        req: &SweepRequest,
    ) -> Result<ApiOutcome, ApiError> {
        self.sweep_with_progress_in(namespace, req, None)
    }

    /// [`sweep`](ApiContext::sweep) with an optional progress feed that
    /// observes every terminal seed (including cache hits) as the sweep
    /// runs — the async job API streams it to `/v1/jobs/{id}/events`.
    /// The response body is byte-identical with or without a feed.
    ///
    /// # Errors
    ///
    /// Same as [`sweep`](ApiContext::sweep).
    pub fn sweep_with_progress(
        &self,
        req: &SweepRequest,
        progress: Option<Arc<ProgressFeed>>,
    ) -> Result<ApiOutcome, ApiError> {
        self.sweep_with_progress_in(None, req, progress)
    }

    /// [`sweep_with_progress`](ApiContext::sweep_with_progress) under an
    /// optional per-tenant cache namespace.
    ///
    /// # Errors
    ///
    /// Same as [`sweep`](ApiContext::sweep).
    pub fn sweep_with_progress_in(
        &self,
        namespace: Option<&str>,
        req: &SweepRequest,
        progress: Option<Arc<ProgressFeed>>,
    ) -> Result<ApiOutcome, ApiError> {
        self.sweep_job_in(namespace, req, progress, None)
    }

    /// The async job API's sweep: like
    /// [`sweep_with_progress_in`](ApiContext::sweep_with_progress_in),
    /// plus an optional checkpoint path. With a checkpoint the sweep
    /// journals every completed seed there (under the store's
    /// [`wrsn_engine::DurabilityPolicy`]) and resumes past already
    /// completed seeds on restart, so an interrupted job replays to a
    /// byte-identical report instead of starting over.
    ///
    /// # Errors
    ///
    /// Same as [`sweep`](ApiContext::sweep).
    pub fn sweep_job_in(
        &self,
        namespace: Option<&str>,
        req: &SweepRequest,
        progress: Option<Arc<ProgressFeed>>,
        checkpoint: Option<&std::path::Path>,
    ) -> Result<ApiOutcome, ApiError> {
        let end = Self::validate_sweep(req)?;
        let (report, cache) = self.run_cell(
            namespace,
            &req.instance,
            &req.solver,
            req.seed_start..end,
            progress,
            checkpoint,
        )?;
        Ok(ApiOutcome {
            body: report.to_value(),
            cache,
        })
    }

    /// Checks a sweep's seed range (non-zero, under the cap, no
    /// overflow) and returns the exclusive end seed. Exposed so the job
    /// API can reject bad specs at submit time, before spawning a
    /// worker thread.
    ///
    /// # Errors
    ///
    /// [`ApiError`] with status 400 for a zero or over-cap seed count
    /// or a range that overflows `u64`.
    pub fn validate_sweep(req: &SweepRequest) -> Result<u64, ApiError> {
        if req.seeds == 0 {
            return Err(ApiError::bad_request("seeds must be at least 1"));
        }
        if req.seeds > MAX_SWEEP_SEEDS {
            return Err(ApiError::bad_request(format!(
                "seeds capped at {MAX_SWEEP_SEEDS} per request, got {}",
                req.seeds
            )));
        }
        req.seed_start
            .checked_add(req.seeds)
            .ok_or_else(|| ApiError::bad_request("seed_start + seeds overflows"))
    }

    /// `GET /v1/solvers`: the registry listing.
    #[must_use]
    pub fn solvers(&self) -> ApiOutcome {
        let mut names: Vec<&str> = self.registry.names();
        names.sort_unstable();
        let names = names
            .into_iter()
            .map(|n| Value::String(n.to_string()))
            .collect();
        ApiOutcome::uncached(Value::Object(vec![(
            "solvers".to_string(),
            Value::Array(names),
        )]))
    }
}

impl Default for ApiContext {
    fn default() -> Self {
        ApiContext::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> InstanceParams {
        InstanceParams {
            posts: 6,
            nodes: 15,
            field: 150.0,
            ..InstanceParams::default()
        }
    }

    #[test]
    fn solve_returns_a_cost() {
        let ctx = ApiContext::new();
        let req = SolveRequest {
            instance: small(),
            solver: "idb".to_string(),
            ..SolveRequest::default()
        };
        let out = ctx.solve(&req).unwrap();
        let cost = out.body.get("cost_uj").and_then(Value::as_f64).unwrap();
        assert!(cost > 0.0);
        assert!(out.body.get("solution").is_none());
    }

    #[test]
    fn solve_can_include_the_solution() {
        let ctx = ApiContext::new();
        let req = SolveRequest {
            instance: small(),
            solver: "idb".to_string(),
            include_solution: true,
            ..SolveRequest::default()
        };
        let out = ctx.solve(&req).unwrap();
        let solution = out.body.get("solution").unwrap();
        let counts = solution
            .get("deployment")
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(counts.len(), 6);
        let parents = solution
            .get("routing_parents")
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(parents.len(), 6);
    }

    #[test]
    fn unknown_solver_is_a_400() {
        let ctx = ApiContext::new();
        let req = SolveRequest {
            instance: small(),
            solver: "nonsense".to_string(),
            ..SolveRequest::default()
        };
        let err = ctx.solve(&req).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("nonsense"));
    }

    #[test]
    fn invalid_instance_is_a_400() {
        let ctx = ApiContext::new();
        let req = SolveRequest {
            instance: InstanceParams {
                posts: 0,
                ..InstanceParams::default()
            },
            ..SolveRequest::default()
        };
        assert_eq!(ctx.solve(&req).unwrap_err().status, 400);
    }

    #[test]
    fn simulate_reports_delivery() {
        let ctx = ApiContext::new();
        let req = SimulateRequest {
            instance: small(),
            solver: "idb".to_string(),
            rounds: 50,
            ..SimulateRequest::default()
        };
        let out = ctx.simulate(&req).unwrap();
        assert_eq!(out.body.get("rounds").and_then(Value::as_u64), Some(50));
        let ratio = out
            .body
            .get("delivery_ratio")
            .and_then(Value::as_f64)
            .unwrap();
        assert!((ratio - 1.0).abs() < 1e-9, "fault-free run delivers all");
        assert_eq!(out.body.get("link_losses").and_then(Value::as_u64), Some(0));
    }

    #[test]
    fn simulate_with_link_loss_drops_reports() {
        let ctx = ApiContext::new();
        let req = SimulateRequest {
            instance: small(),
            solver: "idb".to_string(),
            rounds: 50,
            link_loss: 1.0,
            ..SimulateRequest::default()
        };
        let out = ctx.simulate(&req).unwrap();
        let ratio = out
            .body
            .get("delivery_ratio")
            .and_then(Value::as_f64)
            .unwrap();
        assert_eq!(ratio, 0.0, "total link loss delivers nothing");
        assert!(out.body.get("link_losses").and_then(Value::as_u64).unwrap() > 0);
    }

    #[test]
    fn simulate_rejects_bad_probabilities_and_batteries() {
        let ctx = ApiContext::new();
        let req = SimulateRequest {
            instance: small(),
            link_loss: 1.5,
            ..SimulateRequest::default()
        };
        assert_eq!(ctx.simulate(&req).unwrap_err().status, 400);
        let req = SimulateRequest {
            instance: small(),
            battery_j: 0.0,
            ..SimulateRequest::default()
        };
        assert_eq!(ctx.simulate(&req).unwrap_err().status, 400);
    }

    #[test]
    fn simulate_accepts_degradation_knobs() {
        let ctx = ApiContext::new();
        let req = SimulateRequest {
            instance: small(),
            solver: "idb".to_string(),
            rounds: 80,
            battery_j: 0.001,
            battery_fade: 0.2,
            charger_down_from: Some(10),
            charger_down_until: Some(40),
            ..SimulateRequest::default()
        };
        let out = ctx.simulate(&req).unwrap();
        assert_eq!(
            out.body
                .get("charger_downtime_rounds")
                .and_then(Value::as_u64),
            Some(30)
        );
        assert!(out.body.get("capacity_floor_hits").is_some());
        assert!(out.body.get("breakdown_deaths").is_some());
    }

    #[test]
    fn simulate_rejects_half_a_breakdown_window() {
        let ctx = ApiContext::new();
        let req = SimulateRequest {
            instance: small(),
            charger_down_from: Some(10),
            ..SimulateRequest::default()
        };
        let err = ctx.simulate(&req).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.message.contains("together"));
    }

    #[test]
    fn sweep_validates_the_seed_count() {
        let ctx = ApiContext::new();
        let req = SweepRequest {
            instance: small(),
            seeds: 0,
            ..SweepRequest::default()
        };
        assert_eq!(ctx.sweep(&req).unwrap_err().status, 400);
        let req = SweepRequest {
            instance: small(),
            seeds: MAX_SWEEP_SEEDS + 1,
            ..SweepRequest::default()
        };
        assert_eq!(ctx.sweep(&req).unwrap_err().status, 400);
        let req = SweepRequest {
            instance: small(),
            seed_start: u64::MAX,
            seeds: 2,
            ..SweepRequest::default()
        };
        assert_eq!(ctx.sweep(&req).unwrap_err().status, 400);
    }

    #[test]
    fn sweep_through_a_store_hits_on_repeat_and_stays_byte_identical() {
        let dir = std::env::temp_dir().join("wrsn-serve-api-sweep");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut ctx = ApiContext::new();
        ctx.store = Some(Arc::new(ResultStore::open(&dir).unwrap()));
        let req = SweepRequest {
            instance: small(),
            solver: "idb".to_string(),
            seeds: 3,
            ..SweepRequest::default()
        };
        let first = ctx.sweep(&req).unwrap();
        assert_eq!(first.cache.hits, 0);
        assert_eq!(first.cache.misses, 3);
        let second = ctx.sweep(&req).unwrap();
        assert_eq!(second.cache.hits, 3);
        assert_eq!(second.cache.misses, 0);
        assert_eq!(
            serde_json::to_string(&first.body).unwrap(),
            serde_json::to_string(&second.body).unwrap(),
            "cache hits must not change the response body"
        );
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn solvers_lists_the_registry_sorted() {
        let ctx = ApiContext::new();
        let out = ctx.solvers();
        let names = out.body.get("solvers").and_then(Value::as_array).unwrap();
        let names: Vec<&str> = names.iter().filter_map(Value::as_str).collect();
        assert!(names.contains(&"irfh"));
        assert!(names.contains(&"idb"));
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }

    #[test]
    fn request_types_deserialize_with_defaults() {
        let req: SolveRequest = serde_json::from_str("{}").unwrap();
        assert_eq!(req.solver, "irfh");
        assert_eq!(req.seed, 0);
        let req: SimulateRequest = serde_json::from_str("{\"rounds\": 7}").unwrap();
        assert_eq!(req.rounds, 7);
        assert_eq!(req.bits_per_report, 4000);
        let req: SweepRequest = serde_json::from_str("{\"seeds\": 2}").unwrap();
        assert_eq!(req.seeds, 2);
        assert_eq!(req.seed_start, 0);
    }
}

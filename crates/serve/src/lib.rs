//! # wrsn-serve — a std-only HTTP serving layer
//!
//! Turns the one-shot experiment pipeline into a long-lived daemon: an
//! HTTP/1.1 JSON service built on a readiness event loop — one reactor
//! thread multiplexing every connection through `epoll` ([`sys`],
//! [`reactor`](crate) internals) with per-connection state machines
//! and full HTTP/1.1 pipelining — plus a fixed-size CPU worker pool
//! behind a bounded admission queue (overflow is rejected with `503` +
//! `Retry-After`), and graceful shutdown (drain in-flight requests,
//! then flush the shared [`wrsn_engine::ResultStore`]).
//!
//! Endpoints:
//!
//! - `POST /v1/solve` — instance parameters + solver name → cost
//!   summary (routed through [`wrsn_engine::Experiment`], so repeats
//!   are answered from the shared result store);
//! - `POST /v1/simulate` — instance + rounds + optional
//!   [`wrsn_sim::FaultPlan`] knobs → [`wrsn_sim::SimReport`] metrics;
//! - `POST /v1/sweep` — a small seed grid through the cached pipeline;
//!   repeated identical requests return byte-identical bodies;
//! - `POST /v1/jobs` — the same sweep spec, run asynchronously:
//!   answers `202` with a job id immediately; `GET /v1/jobs/{id}`
//!   polls state and the final report (byte-identical to `/v1/sweep`),
//!   and `GET /v1/jobs/{id}/events?since=N` streams cursor-based
//!   per-seed progress from the engine's progress feed;
//! - `GET /v1/solvers` — the registry listing;
//! - `GET /healthz`, `GET /statusz` — liveness and introspection
//!   (uptime, worker/queue/connection/job occupancy, per-endpoint
//!   request counts and latency histograms, cumulative cache stats).
//!
//! The serving stack is multi-tenant ([`tenant`]): per-tenant API
//! keys (`Authorization: Bearer`, constant-time compare), a
//! deterministic token-bucket rate limiter per tenant (`429` with the
//! exact refill delay in `Retry-After`), a deficit-round-robin
//! weighted-fair admission queue with per-tenant depth caps, and
//! per-tenant cache namespaces plus `/statusz` breakdowns. A server
//! started without a tenant config keeps the exact single-user
//! behavior: one anonymous tenant, no auth, no limits.
//!
//! No dependencies beyond `std`, the workspace's own crates, and a
//! vendored shim over the `epoll`/`eventfd` syscalls — the server
//! builds offline. The [`client`] module holds the matching minimal
//! HTTP client (one-shot and persistent keep-alive connections) and
//! the `loadgen` throughput/latency harness.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod chaos;
pub mod client;
mod cluster;
mod conn;
mod dispatch;
mod error;
pub mod http;
mod jobs;
mod metrics;
mod queue;
mod reactor;
mod server;
pub mod signal;
mod sys;
pub mod tenant;

pub use chaos::{ChaosDecision, ChaosPolicy, ChaosState};
pub use cluster::{FORWARDED_HEADER, SERVED_BY_HEADER};
pub use error::ServeError;
pub use metrics::{Histogram, Metrics, StatusGauges};
pub use queue::BoundedQueue;
pub use server::{Server, ServerConfig, ServerHandle};
pub use tenant::{FairQueue, TenantSpec, TokenBucket};

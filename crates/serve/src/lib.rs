//! # wrsn-serve — a std-only HTTP serving layer
//!
//! Turns the one-shot experiment pipeline into a long-lived daemon: an
//! HTTP/1.1 JSON service on [`std::net::TcpListener`] with a fixed-size
//! worker thread pool, a bounded admission queue (overflow is rejected
//! with `503` + `Retry-After`), and graceful shutdown (drain in-flight
//! requests, then flush the shared [`wrsn_engine::ResultStore`]).
//!
//! Endpoints:
//!
//! - `POST /v1/solve` — instance parameters + solver name → cost
//!   summary (routed through [`wrsn_engine::Experiment`], so repeats
//!   are answered from the shared result store);
//! - `POST /v1/simulate` — instance + rounds + optional
//!   [`wrsn_sim::FaultPlan`] knobs → [`wrsn_sim::SimReport`] metrics;
//! - `POST /v1/sweep` — a small seed grid through the cached pipeline;
//!   repeated identical requests return byte-identical bodies;
//! - `GET /v1/solvers` — the registry listing;
//! - `GET /healthz`, `GET /statusz` — liveness and introspection
//!   (uptime, worker/queue occupancy, per-endpoint request counts and
//!   latency histograms, cumulative cache stats).
//!
//! No dependencies beyond `std` and the workspace's own crates — the
//! server builds offline. The [`client`] module holds the matching
//! minimal HTTP client and the `loadgen` throughput/latency harness.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod chaos;
pub mod client;
mod error;
pub mod http;
mod metrics;
mod queue;
mod server;
pub mod signal;

pub use chaos::{ChaosDecision, ChaosPolicy, ChaosState};
pub use error::ServeError;
pub use metrics::{Histogram, Metrics};
pub use queue::BoundedQueue;
pub use server::{Server, ServerConfig, ServerHandle};

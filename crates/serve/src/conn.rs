//! Per-connection state machine for the readiness reactor.
//!
//! A [`Conn`] owns one nonblocking [`TcpStream`] and moves bytes
//! through four stages without ever blocking the reactor thread:
//!
//! ```text
//!   read → parse (pipelined) → dispatch (reactor) → buffered write
//! ```
//!
//! Requests are assigned a per-connection sequence number as they are
//! parsed; responses computed out of order by the worker pool are
//! reordered through a [`BTreeMap`] keyed by that sequence so the wire
//! order always matches the request order — the HTTP/1.1 pipelining
//! contract. The state machine never issues a syscall that can block:
//! reads and writes stop at `WouldBlock` and resume on the next
//! readiness event.

use crate::http::{self, Request};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::time::{Duration, Instant};

/// Idle allowance for a connection that has not completed a request
/// yet (or is mid-upload); matches the old blocking read timeout.
pub(crate) const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);
/// How long a closing connection lingers to absorb late pipelined
/// bytes, so the peer's write never races our RST past the response.
pub(crate) const DRAIN_TIMEOUT: Duration = Duration::from_millis(250);

/// One serialized response waiting its turn on the wire.
#[derive(Debug)]
pub(crate) struct Outgoing {
    /// The full wire bytes (possibly chaos-truncated).
    pub bytes: Vec<u8>,
    /// Close the connection once these bytes are flushed.
    pub close: bool,
    /// When closing, linger read-draining first instead of dropping
    /// the socket immediately (avoids RST-ing an unread response).
    pub drain: bool,
}

/// Lifecycle of the socket within the reactor.
#[derive(Debug)]
pub(crate) enum Phase {
    /// Serving requests.
    Open,
    /// Response flushed and write side shut down; sinking any late
    /// client bytes until EOF or the deadline.
    Draining {
        /// When to give up and drop the socket.
        deadline: Instant,
    },
}

/// What a fill (read) pass observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ReadOutcome {
    /// Socket still open; zero or more bytes were buffered.
    Open,
    /// The peer closed its write side (EOF after any buffered bytes).
    Eof,
    /// The socket errored; the connection is unusable.
    Error,
}

/// Whether the connection survives the operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FlushStatus {
    /// Keep the connection registered.
    Keep,
    /// Deregister and drop the connection now.
    Close,
}

/// The full per-connection state: buffered input, parsed-but-unanswered
/// sequence window, and the ordered write queue.
#[derive(Debug)]
pub(crate) struct Conn {
    /// The nonblocking socket.
    pub stream: TcpStream,
    /// Bytes read but not yet parsed into a request.
    buf: Vec<u8>,
    /// The wire bytes currently being written.
    out: Vec<u8>,
    /// How much of `out` has hit the socket.
    out_pos: usize,
    /// Completed responses waiting for their turn (keyed by sequence).
    ready: BTreeMap<usize, Outgoing>,
    /// Sequence number the next parsed request will get.
    pub next_seq: usize,
    /// Sequence number the next wire response must carry.
    next_write: usize,
    /// Requests dispatched to workers but not yet completed.
    pub in_flight: usize,
    /// Keep-alive request budget for this connection.
    pub max_requests: usize,
    /// When set, the connection closes after serving this sequence.
    pub close_after: Option<usize>,
    /// No more requests will be parsed (cap, `Connection: close`, EOF,
    /// or a protocol error).
    pub read_closed: bool,
    /// Once the current `out` drains: `Some(drain)` closes, lingering
    /// when `drain` is true.
    close_when_flushed: Option<bool>,
    /// Last moment bytes moved in either direction.
    pub last_activity: Instant,
    /// Open vs. draining-to-close.
    pub phase: Phase,
    /// The epoll interest mask currently registered for this socket.
    pub interest: u32,
}

impl Conn {
    /// Wraps a freshly accepted nonblocking socket.
    pub fn new(stream: TcpStream, max_requests: usize) -> Self {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            out_pos: 0,
            ready: BTreeMap::new(),
            next_seq: 0,
            next_write: 0,
            in_flight: 0,
            max_requests: max_requests.max(1),
            close_after: None,
            read_closed: false,
            close_when_flushed: None,
            last_activity: Instant::now(),
            phase: Phase::Open,
            interest: 0,
        }
    }

    /// Reads everything currently available without blocking.
    pub fn fill(&mut self) -> ReadOutcome {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Eof,
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return ReadOutcome::Open,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Error,
            }
        }
    }

    /// Parses every complete request buffered so far, assigning each a
    /// sequence number. Stops at the keep-alive cap or an explicit
    /// `Connection: close`, after which remaining input is ignored.
    ///
    /// A parse failure is returned *with* the requests parsed before
    /// it: those already consumed sequence numbers, so the caller must
    /// dispatch them before answering the error at the sequence
    /// [`Conn::fail_next_request`] assigns — otherwise the write window
    /// has a permanent gap and the connection can never flush.
    pub fn take_requests(&mut self) -> (Vec<(usize, Request)>, Option<http::ParseError>) {
        let mut parsed = Vec::new();
        while !self.read_closed {
            if self.next_seq >= self.max_requests {
                self.close_after = Some(self.max_requests - 1);
                self.read_closed = true;
                break;
            }
            let (request, used) = match http::try_parse(&self.buf) {
                Ok(Some(hit)) => hit,
                Ok(None) => break,
                Err(e) => return (parsed, Some(e)),
            };
            self.buf.drain(..used);
            let seq = self.next_seq;
            self.next_seq += 1;
            let client_close = request
                .header("connection")
                .is_some_and(|v| v.eq_ignore_ascii_case("close"));
            parsed.push((seq, request));
            if client_close {
                self.close_after = Some(seq);
                self.read_closed = true;
            }
        }
        (parsed, None)
    }

    /// Whether the input buffer still holds unparsed bytes (a partial
    /// request, or pipelined data past a close).
    pub fn has_buffered_input(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Drops buffered input that will never become a request (pipelined
    /// bytes past a `Connection: close` observed at EOF).
    pub fn discard_input(&mut self) {
        self.buf.clear();
    }

    /// Consumes the next sequence number for a request that failed
    /// before dispatch (parse error, admission rejection at parse
    /// time): the buffer is abandoned and no further requests parse.
    pub fn fail_next_request(&mut self) -> usize {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.close_after = Some(seq);
        self.read_closed = true;
        self.buf.clear();
        seq
    }

    /// Queues a completed response for its wire slot.
    pub fn enqueue(&mut self, seq: usize, outgoing: Outgoing) {
        self.ready.insert(seq, outgoing);
    }

    /// Writes as much pending output as the socket accepts, promoting
    /// queued responses in sequence order as the buffer drains.
    pub fn flush(&mut self) -> FlushStatus {
        if matches!(self.phase, Phase::Draining { .. }) {
            return FlushStatus::Keep;
        }
        loop {
            while self.out_pos < self.out.len() {
                match self.stream.write(&self.out[self.out_pos..]) {
                    Ok(0) => return FlushStatus::Close,
                    Ok(n) => {
                        self.out_pos += n;
                        self.last_activity = Instant::now();
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return FlushStatus::Keep,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => return FlushStatus::Close,
                }
            }
            self.out.clear();
            self.out_pos = 0;
            match self.close_when_flushed {
                Some(true) => {
                    // Half-close and linger: the peer gets a clean FIN
                    // after the response instead of racing a reset.
                    let _ = self.stream.shutdown(Shutdown::Write);
                    self.phase = Phase::Draining {
                        deadline: Instant::now() + DRAIN_TIMEOUT,
                    };
                    return FlushStatus::Keep;
                }
                Some(false) => return FlushStatus::Close,
                None => {}
            }
            let Some(outgoing) = self.ready.remove(&self.next_write) else {
                return FlushStatus::Keep;
            };
            self.next_write += 1;
            self.out = outgoing.bytes;
            self.out_pos = 0;
            if outgoing.close {
                self.close_when_flushed = Some(outgoing.drain);
                // Later responses can never reach the wire.
                self.ready.clear();
            }
        }
    }

    /// Sinks late client bytes during the draining phase.
    pub fn drain_read(&mut self) -> FlushStatus {
        let mut sink = [0u8; 1024];
        loop {
            match self.stream.read(&mut sink) {
                Ok(0) => return FlushStatus::Close,
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => return FlushStatus::Keep,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return FlushStatus::Close,
            }
        }
    }

    /// Whether output (current buffer or queued responses) is pending.
    pub fn has_pending_output(&self) -> bool {
        self.out_pos < self.out.len() || !self.ready.is_empty()
    }

    /// The interest mask this connection needs right now.
    pub fn interest_now(&self) -> u32 {
        match self.phase {
            Phase::Draining { .. } => crate::sys::event::READ,
            Phase::Open => {
                let mut mask = 0;
                if !self.read_closed {
                    mask |= crate::sys::event::READ;
                }
                if self.out_pos < self.out.len() {
                    mask |= crate::sys::event::WRITE;
                }
                mask
            }
        }
    }

    /// Whether the connection has outlived its allowance: the draining
    /// deadline, or — with nothing in flight and nothing to write —
    /// the idle window (`SOCKET_TIMEOUT` before the first request or
    /// mid-upload, `keep_alive_idle` between keep-alive requests).
    pub fn expired(&self, now: Instant, keep_alive_idle: Duration) -> bool {
        if let Phase::Draining { deadline } = self.phase {
            return now >= deadline;
        }
        if self.in_flight > 0 || self.has_pending_output() {
            return false;
        }
        let allowance = if self.next_seq == 0 || self.has_buffered_input() {
            SOCKET_TIMEOUT
        } else {
            keep_alive_idle
        };
        now.saturating_duration_since(self.last_activity) >= allowance
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (client, server)
    }

    #[test]
    fn parses_pipelined_requests_in_sequence() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, 8);
        client
            .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
            .unwrap();
        // Give the kernel a beat to move the bytes.
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(conn.fill(), ReadOutcome::Open);
        let (reqs, err) = conn.take_requests();
        assert!(err.is_none());
        let seqs: Vec<usize> = reqs.iter().map(|(s, _)| *s).collect();
        let paths: Vec<&str> = reqs.iter().map(|(_, r)| r.path.as_str()).collect();
        assert_eq!(seqs, [0, 1]);
        assert_eq!(paths, ["/a", "/b"]);
        assert!(!conn.read_closed);
    }

    #[test]
    fn connection_close_header_seals_the_stream() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, 8);
        client
            .write_all(b"GET /a HTTP/1.1\r\nConnection: close\r\n\r\nGET /b HTTP/1.1\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        conn.fill();
        let (reqs, err) = conn.take_requests();
        assert!(err.is_none());
        assert_eq!(reqs.len(), 1, "bytes after a close are ignored");
        assert_eq!(conn.close_after, Some(0));
        assert!(conn.read_closed);
    }

    #[test]
    fn keep_alive_cap_stops_parsing() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, 2);
        client
            .write_all(b"GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        conn.fill();
        let (reqs, err) = conn.take_requests();
        assert!(err.is_none());
        assert_eq!(reqs.len(), 2);
        assert_eq!(conn.close_after, Some(1));
        assert!(conn.read_closed);
    }

    #[test]
    fn parse_error_keeps_the_valid_prefix() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, 8);
        client
            .write_all(b"GET /a HTTP/1.1\r\n\r\nGARBAGE LINE\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(20));
        conn.fill();
        let (reqs, err) = conn.take_requests();
        assert!(err.is_some(), "the garbage request must surface an error");
        assert_eq!(reqs.len(), 1, "the valid prefix survives the error");
        assert_eq!(reqs[0].0, 0);
        assert_eq!(reqs[0].1.path, "/a");
        // The error response takes the next sequence, leaving the
        // write window gap-free.
        assert_eq!(conn.fail_next_request(), 1);
        assert_eq!(conn.close_after, Some(1));
    }

    #[test]
    fn responses_flush_in_sequence_order_regardless_of_completion_order() {
        let (mut client, server) = pair();
        let mut conn = Conn::new(server, 8);
        conn.next_seq = 2; // pretend two requests were parsed
        conn.enqueue(
            1,
            Outgoing {
                bytes: b"SECOND".to_vec(),
                close: true,
                drain: false,
            },
        );
        assert_eq!(conn.flush(), FlushStatus::Keep, "seq 0 still outstanding");
        conn.enqueue(
            0,
            Outgoing {
                bytes: b"FIRST".to_vec(),
                close: false,
                drain: false,
            },
        );
        assert_eq!(conn.flush(), FlushStatus::Close, "both flushed, then close");
        drop(conn); // the reactor drops a closed connection's socket
        client.set_nonblocking(false).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(1)))
            .unwrap();
        let mut got = Vec::new();
        client.read_to_end(&mut got).unwrap();
        assert_eq!(got, b"FIRSTSECOND");
    }

    #[test]
    fn idle_expiry_uses_the_right_window() {
        let (_client, server) = pair();
        let mut conn = Conn::new(server, 8);
        let now = Instant::now();
        assert!(!conn.expired(now, Duration::from_millis(1)));
        // Before any request: only the long socket timeout applies.
        assert!(!conn.expired(now + Duration::from_secs(1), Duration::from_millis(1)));
        assert!(conn.expired(now + SOCKET_TIMEOUT, Duration::from_millis(1)));
        // After a served request the keep-alive idle window applies.
        conn.next_seq = 1;
        assert!(conn.expired(now + Duration::from_secs(1), Duration::from_millis(1)));
        // In-flight work pins the connection open.
        conn.in_flight = 1;
        assert!(!conn.expired(now + SOCKET_TIMEOUT, Duration::from_millis(1)));
    }
}

//! The serving layer's error type.

use std::error::Error;
use std::fmt;

/// A failure starting the server or talking to one as a client.
/// Request-handling failures never surface here — they become HTTP
/// error responses instead.
#[derive(Debug)]
pub enum ServeError {
    /// The listener could not bind its address.
    Bind {
        /// The requested address.
        addr: String,
        /// The underlying error.
        message: String,
    },
    /// A client-side request failed (connect, write, read, or parse).
    Client(String),
    /// The server configuration is invalid (e.g. an out-of-range chaos
    /// probability).
    Config(String),
    /// The shared result store could not be opened or flushed.
    Store(wrsn_engine::StoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Bind { addr, message } => write!(f, "binding {addr}: {message}"),
            ServeError::Client(message) => write!(f, "http client: {message}"),
            ServeError::Config(message) => write!(f, "server config: {message}"),
            ServeError::Store(e) => write!(f, "result store: {e}"),
        }
    }
}

impl Error for ServeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServeError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<wrsn_engine::StoreError> for ServeError {
    fn from(e: wrsn_engine::StoreError) -> Self {
        ServeError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = ServeError::Bind {
            addr: "127.0.0.1:99999".into(),
            message: "invalid port".into(),
        };
        assert!(e.to_string().contains("127.0.0.1:99999"));
        let e = ServeError::Client("connection refused".into());
        assert!(e.to_string().contains("refused"));
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<ServeError>();
    }
}

//! The serving side of the cluster fabric: forward-on-miss routing
//! and the anti-entropy gossip tick.
//!
//! A clustered node answers a `/v1/solve|simulate|sweep` request
//! locally when it owns the request's routing key on the ring or
//! already holds every requested result in its cache; otherwise it
//! forwards the request to the owning peer (tagged with a loop-guard
//! header so a confused fleet can never bounce a request around) and
//! relays the answer. A dead or failing owner degrades to local
//! computation — slower, never wrong. In the background a gossip
//! thread picks a random peer each tick, exchanges segment manifests,
//! pulls segments it has not seen, and pushes small segments the peer
//! lacks, so one node's sweep warms every node's cache.

use crate::client::{self, request_with_retry_headers, BreakerState, CircuitBreaker, RetryPolicy};
use crate::http::{Request, Response, MAX_BODY_BYTES};
use crate::server::Shared;
use serde::{Serialize as _, Value};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};
use wrsn_cluster::{plan_pull, plan_push, ClusterConfig, HashRing, Manifest, Peer};
use wrsn_engine::{seed_fingerprint_in, ResultStore, ENGINE_VERSION};

/// Loop-guard header stamped on every forwarded request. A node that
/// receives it always answers locally, so a request crosses the fleet
/// at most once even if two nodes disagree about the ring.
pub const FORWARDED_HEADER: &str = "x-wrsn-forwarded";

/// Response header naming the node that computed the answer — handy
/// for tests and for spotting misrouted traffic in the field.
pub const SERVED_BY_HEADER: &str = "x-wrsn-served-by";

/// Keep pushed segment bodies comfortably under the server's request
/// body cap (the JSON wrapper adds escaping overhead). Oversized
/// segments still converge: the owner advertises them and the peer
/// pulls them over an uncapped GET response.
const PUSH_BODY_BUDGET: usize = MAX_BODY_BYTES / 2;

/// Per-peer forwarding state: the breaker that stops hammering a dead
/// node, plus counters for the `/statusz` health listing.
pub(crate) struct PeerState {
    pub(crate) peer: Peer,
    pub(crate) breaker: CircuitBreaker,
    pub(crate) forwards: AtomicU64,
    pub(crate) failures: AtomicU64,
}

/// Everything a clustered server shares between its workers and the
/// gossip thread.
pub(crate) struct ClusterState {
    pub(crate) config: ClusterConfig,
    pub(crate) ring: HashRing,
    pub(crate) self_index: usize,
    /// Aligned with `ring.peers()`.
    pub(crate) peers: Vec<PeerState>,
    /// Forwarded requests answered by the owning peer.
    pub(crate) forwarded_hits: AtomicU64,
    /// Forward attempts that fell back to local computation.
    pub(crate) forwarded_misses: AtomicU64,
    pub(crate) gossip_ticks: AtomicU64,
    pub(crate) segments_pulled: AtomicU64,
    pub(crate) segments_pushed: AtomicU64,
    pub(crate) entries_imported: AtomicU64,
    /// When the last successful manifest exchange finished.
    pub(crate) last_exchange: Mutex<Option<Instant>>,
    /// Foreign segment names already imported (own files are implied).
    pub(crate) seen: Mutex<BTreeSet<String>>,
}

impl ClusterState {
    /// Builds the ring and per-peer state from a validated config.
    pub(crate) fn new(config: ClusterConfig) -> Result<Self, String> {
        let (ring, self_index) = config.ring()?;
        let policy = forward_policy();
        let peers = ring
            .peers()
            .iter()
            .map(|peer| PeerState {
                peer: peer.clone(),
                breaker: CircuitBreaker::from_policy(&policy),
                forwards: AtomicU64::new(0),
                failures: AtomicU64::new(0),
            })
            .collect();
        Ok(ClusterState {
            config,
            ring,
            self_index,
            peers,
            forwarded_hits: AtomicU64::new(0),
            forwarded_misses: AtomicU64::new(0),
            gossip_ticks: AtomicU64::new(0),
            segments_pulled: AtomicU64::new(0),
            segments_pushed: AtomicU64::new(0),
            entries_imported: AtomicU64::new(0),
            last_exchange: Mutex::new(None),
            seen: Mutex::new(BTreeSet::new()),
        })
    }

    fn seen_snapshot(&self, store: &ResultStore) -> BTreeSet<String> {
        let mut seen = self
            .seen
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        if let Ok(segments) = store.segments() {
            seen.extend(segments.into_iter().map(|s| s.name));
        }
        seen
    }

    fn mark_seen(&self, name: &str) {
        self.seen
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(name.to_string());
    }

    /// The node's current anti-entropy manifest.
    pub(crate) fn manifest(&self, store: &ResultStore) -> Result<Manifest, String> {
        let segments = store.segments().map_err(|e| e.to_string())?;
        let seen = self.seen_snapshot(store);
        Ok(Manifest {
            node_id: self.config.node_id.clone(),
            entries: store.len() as u64,
            keys_digest: store.keys_digest(),
            segments,
            seen: seen.into_iter().collect(),
        })
    }

    /// The `/statusz` `cluster` section.
    pub(crate) fn to_value(&self) -> Value {
        let shares = self.ring.shares();
        let peers: Vec<(String, Value)> = self
            .peers
            .iter()
            .enumerate()
            .map(|(i, state)| {
                let breaker = match state.breaker.state() {
                    BreakerState::Closed => "closed",
                    BreakerState::Open => "open",
                    BreakerState::HalfOpen => "half-open",
                };
                (
                    state.peer.id.clone(),
                    Value::Object(vec![
                        ("addr".to_string(), Value::String(state.peer.addr.clone())),
                        ("share".to_string(), shares[i].to_value()),
                        ("breaker".to_string(), Value::String(breaker.to_string())),
                        (
                            "breaker_opens".to_string(),
                            state.breaker.opens().to_value(),
                        ),
                        (
                            "forwards".to_string(),
                            state.forwards.load(Ordering::Relaxed).to_value(),
                        ),
                        (
                            "failures".to_string(),
                            state.failures.load(Ordering::Relaxed).to_value(),
                        ),
                    ]),
                )
            })
            .collect();
        let lag_ms = self
            .last_exchange
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .map_or(Value::Null, |at| {
                u64::try_from(at.elapsed().as_millis())
                    .unwrap_or(u64::MAX)
                    .to_value()
            });
        Value::Object(vec![
            (
                "node_id".to_string(),
                Value::String(self.config.node_id.clone()),
            ),
            (
                "owned_share".to_string(),
                shares[self.self_index].to_value(),
            ),
            ("vnodes".to_string(), self.ring.vnodes().to_value()),
            (
                "forwarded".to_string(),
                Value::Object(vec![
                    (
                        "hits".to_string(),
                        self.forwarded_hits.load(Ordering::Relaxed).to_value(),
                    ),
                    (
                        "misses".to_string(),
                        self.forwarded_misses.load(Ordering::Relaxed).to_value(),
                    ),
                ]),
            ),
            (
                "gossip".to_string(),
                Value::Object(vec![
                    (
                        "ticks".to_string(),
                        self.gossip_ticks.load(Ordering::Relaxed).to_value(),
                    ),
                    (
                        "segments_pulled".to_string(),
                        self.segments_pulled.load(Ordering::Relaxed).to_value(),
                    ),
                    (
                        "segments_pushed".to_string(),
                        self.segments_pushed.load(Ordering::Relaxed).to_value(),
                    ),
                    (
                        "entries_imported".to_string(),
                        self.entries_imported.load(Ordering::Relaxed).to_value(),
                    ),
                    (
                        "interval_ms".to_string(),
                        u64::try_from(self.config.gossip_interval.as_millis())
                            .unwrap_or(u64::MAX)
                            .to_value(),
                    ),
                    ("last_exchange_ms".to_string(), lag_ms),
                ]),
            ),
            ("peers".to_string(), Value::Object(peers)),
        ])
    }
}

/// The forwarding retry policy: fail fast (one retry, tight caps) so a
/// dead owner costs milliseconds before the local fallback kicks in,
/// with the breaker skipping the attempt entirely once a peer has
/// proven dead.
fn forward_policy() -> RetryPolicy {
    RetryPolicy {
        max_retries: 1,
        base: Duration::from_millis(5),
        cap: Duration::from_millis(50),
        seed: 0,
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(500),
    }
}

/// The routing fingerprints of one API request: the key that picks the
/// owner, plus every cache fingerprint the request will read (empty
/// for uncached endpoints).
struct RoutingKeys {
    owner_key: String,
    cache_keys: Vec<wrsn_engine::Fingerprint>,
}

/// Extracts routing keys from a request body. `None` means the body
/// does not parse or validate — let the local handler produce the
/// proper 400 instead of forwarding garbage.
fn routing_keys(path: &str, body: &str, namespace: Option<&str>) -> Option<RoutingKeys> {
    match path {
        "/v1/solve" => {
            let req: crate::api::SolveRequest = parse_body(body)?;
            let source = req.instance.source().ok()?;
            let fp = seed_fingerprint_in(
                namespace,
                &source,
                &req.solver,
                ENGINE_VERSION,
                false,
                req.seed,
            );
            Some(RoutingKeys {
                owner_key: fp.to_hex(),
                cache_keys: vec![fp],
            })
        }
        "/v1/sweep" => {
            let req: crate::api::SweepRequest = parse_body(body)?;
            let end = crate::api::ApiContext::validate_sweep(&req).ok()?;
            let source = req.instance.source().ok()?;
            let cache_keys: Vec<_> = (req.seed_start..end)
                .map(|seed| {
                    seed_fingerprint_in(
                        namespace,
                        &source,
                        &req.solver,
                        ENGINE_VERSION,
                        false,
                        seed,
                    )
                })
                .collect();
            Some(RoutingKeys {
                owner_key: cache_keys.first()?.to_hex(),
                cache_keys,
            })
        }
        // Simulate is uncached; route by body content so identical
        // requests land on one node (its OS page cache and branch
        // predictors warm up) while the fleet shares the load.
        "/v1/simulate" => {
            let _: crate::api::SimulateRequest = parse_body(body)?;
            Some(RoutingKeys {
                owner_key: format!("simulate:{}", body.trim()),
                cache_keys: Vec::new(),
            })
        }
        _ => None,
    }
}

/// Parses a request body exactly like the dispatch layer: an empty
/// body means all defaults, anything else must be valid JSON.
fn parse_body<R: serde::Deserialize + Default>(body: &str) -> Option<R> {
    if body.trim().is_empty() {
        Some(R::default())
    } else {
        serde_json::from_str(body).ok()
    }
}

/// Decides whether to forward a `/v1/solve|simulate|sweep` request to
/// the owning peer, and does so. `None` means: handle locally (this
/// node owns the key, already holds the results, the body is invalid,
/// the request is itself a forward, or the owner is unreachable).
pub(crate) fn maybe_forward(request: &Request, tenant: usize, shared: &Shared) -> Option<Response> {
    let cluster = shared.cluster.as_ref()?;
    if request.header(FORWARDED_HEADER).is_some() {
        return None;
    }
    let namespace = shared.tenants.tenant(tenant).namespace();
    let body = request.body_text();
    let keys = routing_keys(&request.path, &body, namespace)?;
    let owner = cluster.ring.owner_index(&keys.owner_key);
    if owner == cluster.self_index {
        return None;
    }
    // Local-hit short-circuit: gossip may already have delivered the
    // owner's results, and answering from the local cache beats a
    // network hop.
    if !keys.cache_keys.is_empty() {
        if let Some(store) = &shared.api.store {
            if keys.cache_keys.iter().all(|fp| store.get(fp).is_some()) {
                return None;
            }
        }
    }
    let peer = &cluster.peers[owner];
    peer.forwards.fetch_add(1, Ordering::Relaxed);
    let mut extra = vec![(FORWARDED_HEADER, "1")];
    let auth = request.header("authorization").map(str::to_string);
    if let Some(auth) = &auth {
        extra.push(("Authorization", auth.as_str()));
    }
    let body_opt = if body.trim().is_empty() {
        None
    } else {
        Some(body.as_str())
    };
    let outcome = request_with_retry_headers(
        &peer.peer.addr,
        &request.method,
        &request.path,
        body_opt,
        &extra,
        &forward_policy(),
        Some(&peer.breaker),
    );
    match outcome {
        // Relay definitive answers (including the owner's 4xx — the
        // body was its to judge). Overload and server faults fall back
        // to local computation instead: slow beats wrong or refused.
        Ok(out) if out.response.status < 500 && out.response.status != 429 => {
            cluster.forwarded_hits.fetch_add(1, Ordering::Relaxed);
            let mut response = Response::json(out.response.status, out.response.body.clone());
            for header in ["x-cache-hits", "x-cache-misses"] {
                if let Some(value) = out.response.header(header) {
                    response = response.header(header, value);
                }
            }
            Some(response.header(SERVED_BY_HEADER, &peer.peer.id))
        }
        _ => {
            peer.failures.fetch_add(1, Ordering::Relaxed);
            cluster.forwarded_misses.fetch_add(1, Ordering::Relaxed);
            None
        }
    }
}

/// `GET /v1/cluster/segments` — this node's anti-entropy manifest.
pub(crate) fn manifest_response(shared: &Shared) -> Response {
    let Some(cluster) = &shared.cluster else {
        return Response::error(404, "not running in cluster mode");
    };
    let Some(store) = &shared.api.store else {
        return Response::error(500, "cluster mode requires a cache store");
    };
    match cluster.manifest(store) {
        Ok(manifest) => match serde_json::to_string(&manifest) {
            Ok(body) => Response::json(200, body),
            Err(e) => Response::error(500, &format!("manifest serialization: {e}")),
        },
        Err(e) => Response::error(500, &format!("manifest: {e}")),
    }
}

/// `GET /v1/cluster/segments/{name}` — one segment's text, wrapped in
/// JSON. The response is not subject to the request body cap, so big
/// segments always travel in this direction.
pub(crate) fn segment_get(path: &str, shared: &Shared) -> Response {
    let Some(_) = &shared.cluster else {
        return Response::error(404, "not running in cluster mode");
    };
    let Some(store) = &shared.api.store else {
        return Response::error(500, "cluster mode requires a cache store");
    };
    let name = path.strip_prefix("/v1/cluster/segments/").unwrap_or("");
    match store.read_segment(name) {
        Ok(text) => {
            let body = Value::Object(vec![
                ("name".to_string(), Value::String(name.to_string())),
                ("text".to_string(), Value::String(text)),
            ]);
            Response::json(
                200,
                serde_json::to_string(&body).expect("a Value always serializes"),
            )
        }
        Err(e) => Response::error(404, &format!("segment {name:?}: {e}")),
    }
}

/// `POST /v1/cluster/segments/{name}` — put-if-absent import of a
/// pushed segment. Records already present are skipped, so replays and
/// races are harmless.
pub(crate) fn segment_put(path: &str, request: &Request, shared: &Shared) -> Response {
    let Some(cluster) = &shared.cluster else {
        return Response::error(404, "not running in cluster mode");
    };
    let Some(store) = &shared.api.store else {
        return Response::error(500, "cluster mode requires a cache store");
    };
    let name = path.strip_prefix("/v1/cluster/segments/").unwrap_or("");
    if !ResultStore::is_segment_name(name) {
        return Response::error(400, &format!("bad segment name {name:?}"));
    }
    let body = request.body_text();
    let parsed: Result<Value, _> = serde_json::from_str(&body);
    let text = match &parsed {
        Ok(v) => match v.get("text").and_then(Value::as_str) {
            Some(text) => text,
            None => return Response::error(400, "body must be {\"text\": \"…\"}"),
        },
        Err(e) => return Response::error(400, &format!("invalid body: {e}")),
    };
    match store.import_segment_text(text) {
        Ok(report) => {
            cluster.mark_seen(name);
            cluster
                .entries_imported
                .fetch_add(report.imported, Ordering::Relaxed);
            let body = Value::Object(vec![
                ("imported".to_string(), report.imported.to_value()),
                ("skipped".to_string(), report.skipped.to_value()),
            ]);
            Response::json(
                200,
                serde_json::to_string(&body).expect("a Value always serializes"),
            )
        }
        Err(e) => Response::error(400, &format!("import: {e}")),
    }
}

/// One anti-entropy exchange with the peer at `peer_index`: fetch its
/// manifest, pull every segment this node has not seen, push every
/// small segment the peer lacks. Returns `false` when the peer was
/// unreachable.
pub(crate) fn gossip_exchange(shared: &Shared, peer_index: usize) -> bool {
    let Some(cluster) = &shared.cluster else {
        return false;
    };
    let Some(store) = &shared.api.store else {
        return false;
    };
    let peer = &cluster.peers[peer_index].peer;
    let Ok(resp) = client::request(&peer.addr, "GET", "/v1/cluster/segments", None) else {
        return false;
    };
    if resp.status != 200 {
        return false;
    }
    let Ok(remote) = serde_json::from_str::<Manifest>(&resp.body) else {
        return false;
    };
    let local_seen = cluster.seen_snapshot(store);
    for name in plan_pull(&local_seen, &remote) {
        let path = format!("/v1/cluster/segments/{name}");
        let Ok(resp) = client::request(&peer.addr, "GET", &path, None) else {
            continue;
        };
        if resp.status != 200 {
            continue;
        }
        let Ok(wrapped) = serde_json::from_str::<Value>(&resp.body) else {
            continue;
        };
        let Some(text) = wrapped.get("text").and_then(Value::as_str) else {
            continue;
        };
        if let Ok(report) = store.import_segment_text(text) {
            cluster.mark_seen(&name);
            cluster.segments_pulled.fetch_add(1, Ordering::Relaxed);
            cluster
                .entries_imported
                .fetch_add(report.imported, Ordering::Relaxed);
        }
    }
    if let Ok(local) = cluster.manifest(store) {
        for name in plan_push(&local, &remote) {
            let Ok(text) = store.read_segment(&name) else {
                continue;
            };
            if text.len() > PUSH_BODY_BUDGET {
                // Too big to push through the request body cap; the
                // peer will pull it on its own next tick.
                continue;
            }
            let body = Value::Object(vec![("text".to_string(), Value::String(text))]);
            let body = serde_json::to_string(&body).expect("a Value always serializes");
            let path = format!("/v1/cluster/segments/{name}");
            if let Ok(resp) = client::request(&peer.addr, "POST", &path, Some(&body)) {
                if resp.status == 200 {
                    cluster.segments_pushed.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
    *cluster
        .last_exchange
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Instant::now());
    true
}

/// The gossip thread body: every interval, exchange manifests with one
/// random peer. Sleeps in short slices so shutdown stays prompt.
pub(crate) fn gossip_loop(shared: &std::sync::Arc<Shared>) {
    use rand::{Rng as _, SeedableRng as _};
    let Some(cluster) = &shared.cluster else {
        return;
    };
    let interval = cluster.config.gossip_interval;
    // Seed from the node id so two nodes starting together do not pick
    // the same partner sequence in lockstep.
    let seed = cluster.config.node_id.bytes().fold(0u64, |acc, b| {
        acc.wrapping_mul(31).wrapping_add(u64::from(b))
    }) ^ cluster.self_index as u64;
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let slice = Duration::from_millis(20);
    loop {
        let mut waited = Duration::ZERO;
        while waited < interval {
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let step = slice.min(interval - waited);
            std::thread::sleep(step);
            waited += step;
        }
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let others: Vec<usize> = (0..cluster.peers.len())
            .filter(|&i| i != cluster.self_index)
            .collect();
        if others.is_empty() {
            continue;
        }
        let target = others[rng.random_range(0..others.len())];
        gossip_exchange(shared, target);
        cluster.gossip_ticks.fetch_add(1, Ordering::Relaxed);
    }
}

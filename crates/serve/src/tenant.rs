//! Multi-tenant admission: API keys, deterministic token buckets, and
//! a deficit-round-robin weighted-fair queue.
//!
//! Three mechanisms, layered in dispatch order, keep one tenant from
//! starving or crashing the fleet:
//!
//! 1. **Identity** ([`TenantTable::resolve`]): requests carry
//!    `Authorization: Bearer KEY`; keys are compared in constant time.
//!    Probe endpoints (`/healthz`, `/statusz`) always resolve to the
//!    anonymous tenant so readiness checks can never be locked out,
//!    and a server started without a tenant config keeps the exact
//!    pre-tenant behavior (one anonymous tenant, no auth, no limits).
//! 2. **Rate** ([`TokenBucket`]): a deterministic token bucket per
//!    tenant (`rps` + `burst`) answers `429` with the exact refill
//!    delay in `Retry-After`, so the retrying client backs off by the
//!    right amount instead of guessing.
//! 3. **Share** ([`FairQueue`]): the admission queue holds one
//!    sub-queue per tenant with its own depth cap (overflow answered
//!    inline with `503`); workers pop by deficit round-robin over the
//!    configured weights, so a tenant flooding sweeps is bounded to
//!    its weighted share of the worker pool while backlogged.

use crate::http::{Request, Response};
use crate::metrics::Histogram;
use serde::{Deserialize, Serialize as _, Value};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Instant;
use wrsn_engine::CacheStats;

/// The anonymous tenant's index in every [`TenantTable`].
pub const ANONYMOUS: usize = 0;

fn default_weight() -> u32 {
    1
}

/// One tenant as declared in the `--tenants` config file (JSON lines,
/// one object per tenant; blank lines and `#` comments are skipped).
#[derive(Debug, Clone, Deserialize)]
pub struct TenantSpec {
    /// Display name; also the cache namespace for isolated tenants.
    pub name: String,
    /// The API key presented as `Authorization: Bearer KEY`. Omitted
    /// for the anonymous entry (configuring keyless callers).
    #[serde(default)]
    pub key: Option<String>,
    /// Deficit-round-robin weight: under saturation a tenant receives
    /// `weight / sum(weights of backlogged tenants)` of the workers.
    #[serde(default = "default_weight")]
    pub weight: u32,
    /// Sustained requests per second (0 or omitted = unlimited).
    #[serde(default)]
    pub rps: Option<f64>,
    /// Token-bucket burst capacity (defaults to `--default-burst`).
    #[serde(default)]
    pub burst: Option<u64>,
    /// Per-tenant admission sub-queue depth (defaults to the global
    /// `--queue-depth`).
    #[serde(default)]
    pub queue_depth: Option<usize>,
    /// When `true`, the tenant's results live in a private cache
    /// namespace (its name is folded into the fingerprint); otherwise
    /// tenants share one namespace and each other's cached sweeps.
    #[serde(default)]
    pub isolated: bool,
    /// Concurrent async-job slots (defaults to the global `--max-jobs`).
    #[serde(default)]
    pub max_jobs: Option<usize>,
}

/// Parses a tenant config file: one JSON object per line.
///
/// # Errors
///
/// A message naming the offending line on malformed JSON, duplicate
/// names/keys, an empty name, or a zero weight.
pub fn parse_tenants(text: &str) -> Result<Vec<TenantSpec>, String> {
    let mut specs: Vec<TenantSpec> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let spec: TenantSpec =
            serde_json::from_str(line).map_err(|e| format!("tenants file line {}: {e}", i + 1))?;
        if spec.name.trim().is_empty() {
            return Err(format!("tenants file line {}: empty tenant name", i + 1));
        }
        if spec.weight == 0 {
            return Err(format!(
                "tenants file line {}: weight must be at least 1",
                i + 1
            ));
        }
        if specs.iter().any(|s| s.name == spec.name) {
            return Err(format!(
                "tenants file line {}: duplicate tenant name {:?}",
                i + 1,
                spec.name
            ));
        }
        if let Some(key) = &spec.key {
            if key.is_empty() {
                return Err(format!("tenants file line {}: empty API key", i + 1));
            }
            if specs.iter().any(|s| s.key.as_deref() == Some(key)) {
                return Err(format!("tenants file line {}: duplicate API key", i + 1));
            }
        }
        specs.push(spec);
    }
    Ok(specs)
}

/// Constant-time byte comparison: the fold touches every position of
/// the longer input regardless of where (or whether) a mismatch
/// occurs, so timing reveals nothing about how much of a guessed key
/// was right.
#[must_use]
pub fn constant_time_eq(a: &str, b: &str) -> bool {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut diff = a.len() ^ b.len();
    for i in 0..a.len().max(b.len()) {
        let x = a.get(i).copied().unwrap_or(0);
        let y = b.get(i).copied().unwrap_or(0);
        diff |= usize::from(x ^ y);
    }
    diff == 0
}

/// A deterministic token bucket over an explicit microsecond clock:
/// the same `(rate, burst)` and the same sequence of timestamps always
/// produce the same admit/reject decisions, which is what makes the
/// limiter property-testable and the `Retry-After` delay exact.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate: f64,
    burst: f64,
    tokens: f64,
    last_us: u64,
}

impl TokenBucket {
    /// A full bucket admitting `rate_per_s` sustained requests per
    /// second with bursts up to `burst` (clamped to at least 1).
    /// `rate_per_s <= 0` disables limiting entirely.
    #[must_use]
    pub fn new(rate_per_s: f64, burst: u64) -> Self {
        let burst = burst.max(1) as f64;
        TokenBucket {
            rate: rate_per_s,
            burst,
            tokens: burst,
            last_us: 0,
        }
    }

    /// Takes one token at time `now_us` (microseconds on any monotonic
    /// clock; a timestamp earlier than the last one is clamped so the
    /// refill never runs backwards).
    ///
    /// # Errors
    ///
    /// `Err(wait_us)` when the bucket is empty: the exact delay until
    /// one token will have refilled.
    pub fn try_take(&mut self, now_us: u64) -> Result<(), u64> {
        if self.rate <= 0.0 {
            return Ok(());
        }
        let now = now_us.max(self.last_us);
        let dt = (now - self.last_us) as f64 / 1e6;
        self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        self.last_us = now;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            Ok(())
        } else {
            let wait_us = ((1.0 - self.tokens) / self.rate * 1e6).ceil() as u64;
            Err(wait_us.max(1))
        }
    }

    /// Tokens currently available (diagnostics only).
    #[must_use]
    pub fn tokens(&self) -> f64 {
        self.tokens
    }
}

/// Lock-free per-tenant counters surfaced in `/statusz`.
#[derive(Debug, Default)]
pub struct TenantStats {
    /// `/v1` requests attributed to this tenant (admitted or 429'd).
    pub requests: AtomicU64,
    /// Requests bounced by the token bucket.
    pub rate_limited: AtomicU64,
    /// Requests bounced by the tenant's full sub-queue.
    pub queue_rejected: AtomicU64,
    /// Cache hits across the tenant's API calls.
    pub cache_hits: AtomicU64,
    /// Cache misses across the tenant's API calls.
    pub cache_misses: AtomicU64,
    /// Latency of completed `/v1` requests.
    pub latency: Histogram,
}

/// One configured tenant at runtime.
#[derive(Debug)]
pub struct Tenant {
    /// Display name (and isolated-cache namespace).
    pub name: String,
    key: Option<String>,
    /// Deficit-round-robin weight.
    pub weight: u32,
    /// Whether cached results live in a private namespace.
    pub isolated: bool,
    /// Admission sub-queue depth.
    pub queue_depth: usize,
    /// Concurrent async-job cap.
    pub max_jobs: usize,
    bucket: Mutex<TokenBucket>,
    active_jobs: AtomicUsize,
    /// The tenant's counters.
    pub stats: TenantStats,
}

impl Tenant {
    fn from_spec(spec: &TenantSpec, defaults: &TenantDefaults) -> Self {
        let rps = spec.rps.unwrap_or(defaults.rps);
        let burst = spec.burst.unwrap_or(defaults.burst);
        Tenant {
            name: spec.name.clone(),
            key: spec.key.clone(),
            weight: spec.weight.max(1),
            isolated: spec.isolated,
            queue_depth: spec.queue_depth.unwrap_or(defaults.queue_depth).max(1),
            max_jobs: spec.max_jobs.unwrap_or(defaults.max_jobs).max(1),
            bucket: Mutex::new(TokenBucket::new(rps, burst)),
            active_jobs: AtomicUsize::new(0),
            stats: TenantStats::default(),
        }
    }

    fn anonymous(defaults: &TenantDefaults) -> Self {
        Tenant::from_spec(
            &TenantSpec {
                name: "anonymous".to_string(),
                key: None,
                weight: default_weight(),
                rps: None,
                burst: None,
                queue_depth: None,
                isolated: false,
                max_jobs: None,
            },
            defaults,
        )
    }

    /// The cache namespace: `Some(name)` only for isolated tenants.
    #[must_use]
    pub fn namespace(&self) -> Option<&str> {
        self.isolated.then_some(self.name.as_str())
    }

    /// Reserves one async-job slot; `false` when the tenant is at its
    /// job cap.
    pub fn try_reserve_job(&self) -> bool {
        self.active_jobs
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |a| {
                (a < self.max_jobs).then_some(a + 1)
            })
            .is_ok()
    }

    /// Releases a slot taken by [`Tenant::try_reserve_job`].
    pub fn release_job(&self) {
        self.active_jobs.fetch_sub(1, Ordering::SeqCst);
    }

    /// Async jobs the tenant is currently running.
    #[must_use]
    pub fn active_jobs(&self) -> usize {
        self.active_jobs.load(Ordering::SeqCst)
    }
}

/// Fallbacks for fields a [`TenantSpec`] omits.
#[derive(Debug, Clone)]
pub struct TenantDefaults {
    /// Sustained requests per second (0 = unlimited).
    pub rps: f64,
    /// Token-bucket burst capacity.
    pub burst: u64,
    /// Per-tenant sub-queue depth.
    pub queue_depth: usize,
    /// Per-tenant concurrent async-job cap.
    pub max_jobs: usize,
}

/// The fixed set of tenants a server was started with. Index 0 is
/// always the anonymous tenant; the set never changes after startup,
/// so every per-tenant structure is a plain `Vec` indexed by tenant id
/// with no locking on the hot path.
#[derive(Debug)]
pub struct TenantTable {
    tenants: Vec<Tenant>,
    /// Whether a tenant config was supplied: keyed tenants exist and
    /// keyless `/v1` access is only allowed if the config kept an
    /// anonymous entry.
    multi: bool,
    anonymous_configured: bool,
    start: Instant,
}

impl TenantTable {
    /// The single-user table: one anonymous tenant, no auth, no rate
    /// limit — byte-for-byte the pre-tenant server behavior.
    #[must_use]
    pub fn single_user(queue_depth: usize, max_jobs: usize) -> Self {
        let defaults = TenantDefaults {
            rps: 0.0,
            burst: 1,
            queue_depth,
            max_jobs,
        };
        TenantTable {
            tenants: vec![Tenant::anonymous(&defaults)],
            multi: false,
            anonymous_configured: false,
            start: Instant::now(),
        }
    }

    /// Builds the table from a parsed config. An entry without a `key`
    /// configures the anonymous tenant (at most one such entry); when
    /// no entry does, keyless `/v1` requests are answered `401`.
    ///
    /// # Errors
    ///
    /// A message when two entries both try to configure the anonymous
    /// tenant.
    pub fn from_specs(specs: &[TenantSpec], defaults: &TenantDefaults) -> Result<Self, String> {
        let keyless: Vec<&TenantSpec> = specs.iter().filter(|s| s.key.is_none()).collect();
        if keyless.len() > 1 {
            return Err(format!(
                "tenants file: {} keyless (anonymous) entries; at most one is allowed",
                keyless.len()
            ));
        }
        let mut tenants = vec![match keyless.first() {
            Some(spec) => Tenant::from_spec(spec, defaults),
            None => Tenant::anonymous(defaults),
        }];
        tenants.extend(
            specs
                .iter()
                .filter(|s| s.key.is_some())
                .map(|s| Tenant::from_spec(s, defaults)),
        );
        Ok(TenantTable {
            tenants,
            multi: true,
            anonymous_configured: !keyless.is_empty(),
            start: Instant::now(),
        })
    }

    /// The configured tenants, anonymous first.
    #[must_use]
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// The tenant at `index` (panics on a bad index — indices only
    /// come from [`TenantTable::resolve`]).
    #[must_use]
    pub fn tenant(&self, index: usize) -> &Tenant {
        &self.tenants[index]
    }

    /// Whether a tenant config was supplied.
    #[must_use]
    pub fn is_multi_tenant(&self) -> bool {
        self.multi
    }

    /// Microseconds on the table's monotonic clock (the token buckets'
    /// time base).
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Maps a request to its tenant. Probe endpoints always resolve to
    /// the anonymous tenant (a readiness check must never be locked
    /// out by auth). `/v1` requests resolve by Bearer key; a missing
    /// key is `401` (unless the config kept an anonymous entry or no
    /// config was given), a malformed header is `401`, and a presented
    /// but unknown key is `403`.
    ///
    /// # Errors
    ///
    /// The ready-to-send `401`/`403` response.
    pub fn resolve(&self, request: &Request) -> Result<usize, Response> {
        if !request.path.starts_with("/v1/") {
            return Ok(ANONYMOUS);
        }
        if !self.multi {
            // Single-user mode predates authentication: a stray
            // Authorization header was always ignored, and stays so.
            return Ok(ANONYMOUS);
        }
        match request.header("authorization") {
            None => {
                if self.multi && !self.anonymous_configured {
                    Err(Response::error(
                        401,
                        "authentication required: send Authorization: Bearer <key>",
                    ))
                } else {
                    Ok(ANONYMOUS)
                }
            }
            Some(value) => {
                let Some(presented) = strip_bearer(value) else {
                    return Err(Response::error(
                        401,
                        "malformed Authorization header: expected Bearer <key>",
                    ));
                };
                // Scan every key unconditionally so the comparison cost
                // is independent of which (if any) tenant matches.
                let mut found = None;
                for (i, tenant) in self.tenants.iter().enumerate() {
                    if let Some(key) = &tenant.key {
                        if constant_time_eq(key, presented) {
                            found = Some(i);
                        }
                    }
                }
                found.ok_or_else(|| Response::error(403, "unknown API key"))
            }
        }
    }

    /// Takes one rate-limit token for `tenant` at the current time.
    ///
    /// # Errors
    ///
    /// `Err(wait_us)`: the exact refill delay to advertise.
    pub fn admit(&self, tenant: usize) -> Result<(), u64> {
        let mut bucket = self.tenants[tenant]
            .bucket
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        bucket.try_take(self.now_us())
    }

    /// Folds one request's cache stats into the tenant's counters.
    pub fn add_cache(&self, tenant: usize, stats: &CacheStats) {
        let t = &self.tenants[tenant].stats;
        t.cache_hits.fetch_add(stats.hits, Ordering::Relaxed);
        t.cache_misses.fetch_add(stats.misses, Ordering::Relaxed);
    }

    /// The `/statusz` per-tenant breakdown.
    #[must_use]
    pub fn to_value<T>(&self, queue: &FairQueue<T>) -> Value {
        let fields = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let stats = &t.stats;
                let hits = stats.cache_hits.load(Ordering::Relaxed);
                let misses = stats.cache_misses.load(Ordering::Relaxed);
                let lookups = hits + misses;
                let hit_ratio = if lookups == 0 {
                    0.0
                } else {
                    hits as f64 / lookups as f64
                };
                let body = Value::Object(vec![
                    (
                        "requests".to_string(),
                        stats.requests.load(Ordering::Relaxed).to_value(),
                    ),
                    (
                        "rate_limited".to_string(),
                        stats.rate_limited.load(Ordering::Relaxed).to_value(),
                    ),
                    (
                        "queue_rejected".to_string(),
                        stats.queue_rejected.load(Ordering::Relaxed).to_value(),
                    ),
                    ("weight".to_string(), u64::from(t.weight).to_value()),
                    (
                        "queue_depth".to_string(),
                        (queue.class_len(i) as u64).to_value(),
                    ),
                    (
                        "queue_capacity".to_string(),
                        (t.queue_depth as u64).to_value(),
                    ),
                    (
                        "jobs_active".to_string(),
                        (t.active_jobs() as u64).to_value(),
                    ),
                    ("isolated".to_string(), Value::Bool(t.isolated)),
                    ("cache_hits".to_string(), hits.to_value()),
                    ("cache_misses".to_string(), misses.to_value()),
                    ("cache_hit_ratio".to_string(), hit_ratio.to_value()),
                    ("latency_us".to_string(), stats.latency.to_value()),
                ]);
                (t.name.clone(), body)
            })
            .collect();
        Value::Object(fields)
    }
}

/// Extracts the key from a `Bearer <key>` header value (scheme
/// case-insensitive, surrounding whitespace tolerated).
fn strip_bearer(value: &str) -> Option<&str> {
    let value = value.trim();
    let (scheme, rest) = value.split_once(' ')?;
    if !scheme.eq_ignore_ascii_case("bearer") {
        return None;
    }
    let key = rest.trim();
    (!key.is_empty()).then_some(key)
}

struct SubQueue<T> {
    items: VecDeque<T>,
    weight: u32,
    capacity: usize,
    /// Pops the current turn may still take; refreshed to `weight`
    /// when the class reaches the head of the active list.
    deficit: u64,
    /// Whether the class currently sits in the active list.
    queued: bool,
}

struct FairState<T> {
    classes: Vec<SubQueue<T>>,
    /// Round-robin order over classes with pending items.
    active: VecDeque<usize>,
    len: usize,
    closed: bool,
}

/// A bounded weighted-fair admission queue: per-class FIFO sub-queues
/// with non-blocking pushes (per-class depth caps — the caller turns
/// overflow into an inline `503`) and blocking deficit-round-robin
/// pops. With a single class it degenerates to exactly the FIFO
/// behavior of [`crate::BoundedQueue`], including the close contract:
/// after [`FairQueue::close`], pushes fail immediately and pops drain
/// the backlog before returning `None`.
pub struct FairQueue<T> {
    state: Mutex<FairState<T>>,
    available: Condvar,
    total_capacity: usize,
}

impl<T> FairQueue<T> {
    /// A queue with one `(weight, depth)` sub-queue per class.
    #[must_use]
    pub fn new(classes: &[(u32, usize)]) -> Self {
        let classes: Vec<SubQueue<T>> = classes
            .iter()
            .map(|&(weight, capacity)| SubQueue {
                items: VecDeque::new(),
                weight: weight.max(1),
                capacity: capacity.max(1),
                deficit: 0,
                queued: false,
            })
            .collect();
        let total_capacity = classes.iter().map(|c| c.capacity).sum();
        FairQueue {
            state: Mutex::new(FairState {
                classes,
                active: VecDeque::new(),
                len: 0,
                closed: false,
            }),
            available: Condvar::new(),
            total_capacity,
        }
    }

    /// Builds the queue matching a tenant table (one class per tenant,
    /// the tenant's weight and depth cap).
    #[must_use]
    pub fn for_tenants(table: &TenantTable) -> Self {
        let classes: Vec<(u32, usize)> = table
            .tenants()
            .iter()
            .map(|t| (t.weight, t.queue_depth))
            .collect();
        FairQueue::new(&classes)
    }

    /// Enqueues `item` for `class`, or hands it back when that class's
    /// sub-queue is full or the queue is closed.
    ///
    /// # Errors
    ///
    /// `Err(item)` on per-class overflow or after [`FairQueue::close`].
    pub fn try_push(&self, class: usize, item: T) -> Result<(), T> {
        let mut state = self.lock();
        if state.closed || state.classes[class].items.len() >= state.classes[class].capacity {
            return Err(item);
        }
        state.classes[class].items.push_back(item);
        state.len += 1;
        if !state.classes[class].queued {
            state.classes[class].queued = true;
            state.classes[class].deficit = 0;
            state.active.push_back(class);
        }
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks until an item is available (returning the next one in
    /// deficit-round-robin order) or the queue is closed *and* drained
    /// (returning `None`).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = Self::pop_locked(&mut state) {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// One deficit-round-robin step: the class at the head of the
    /// active list earns `weight` pops per turn; when its turn is
    /// spent (or it drains) the next class takes the head.
    fn pop_locked(state: &mut FairState<T>) -> Option<T> {
        while state.len > 0 {
            let class = *state
                .active
                .front()
                .expect("len > 0 implies an active class");
            let q = &mut state.classes[class];
            if q.items.is_empty() {
                q.queued = false;
                q.deficit = 0;
                state.active.pop_front();
                continue;
            }
            if q.deficit == 0 {
                q.deficit = u64::from(q.weight);
            }
            let item = q.items.pop_front().expect("checked non-empty");
            q.deficit -= 1;
            state.len -= 1;
            if q.items.is_empty() {
                q.queued = false;
                q.deficit = 0;
                state.active.pop_front();
            } else if q.deficit == 0 {
                // Turn spent with a backlog left: rotate to the tail.
                state.active.pop_front();
                state.active.push_back(class);
            }
            return Some(item);
        }
        None
    }

    /// Closes the queue: pushes start failing immediately, pops drain
    /// the backlog and then return `None`. Idempotent.
    pub fn close(&self) {
        let mut state = self.lock();
        state.closed = true;
        drop(state);
        self.available.notify_all();
    }

    /// Items currently queued across every class.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len
    }

    /// Whether no items are queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity across every class.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.total_capacity
    }

    /// Items queued for one class.
    #[must_use]
    pub fn class_len(&self, class: usize) -> usize {
        self.lock().classes[class].items.len()
    }

    /// Locks the state, recovering from poisoning (a panicking worker
    /// must not wedge admission; every mutation preserves the queue
    /// invariants, so the state is always reusable).
    fn lock(&self) -> MutexGuard<'_, FairState<T>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T> std::fmt::Debug for FairQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FairQueue")
            .field("len", &self.len())
            .field("capacity", &self.total_capacity)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, key: Option<&str>) -> TenantSpec {
        TenantSpec {
            name: name.to_string(),
            key: key.map(str::to_string),
            weight: 1,
            rps: None,
            burst: None,
            queue_depth: None,
            isolated: false,
            max_jobs: None,
        }
    }

    fn defaults() -> TenantDefaults {
        TenantDefaults {
            rps: 0.0,
            burst: 8,
            queue_depth: 16,
            max_jobs: 4,
        }
    }

    fn get(path: &str, auth: Option<&str>) -> Request {
        Request {
            method: "GET".to_string(),
            path: path.to_string(),
            headers: auth
                .map(|v| vec![("authorization".to_string(), v.to_string())])
                .into_iter()
                .flatten()
                .collect(),
            body: Vec::new(),
        }
    }

    #[test]
    fn config_parses_jsonl_with_comments() {
        let text = "# fleet tenants\n\
                    {\"name\": \"alpha\", \"key\": \"ka\", \"weight\": 3, \"rps\": 50.0, \"isolated\": true}\n\
                    \n\
                    {\"name\": \"beta\", \"key\": \"kb\"}\n";
        let specs = parse_tenants(text).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "alpha");
        assert_eq!(specs[0].weight, 3);
        assert_eq!(specs[0].rps, Some(50.0));
        assert!(specs[0].isolated);
        assert_eq!(specs[1].weight, 1, "weight defaults to 1");
    }

    #[test]
    fn config_rejects_duplicates_and_bad_lines() {
        assert!(parse_tenants(
            "{\"name\": \"a\", \"key\": \"k\"}\n{\"name\": \"a\", \"key\": \"j\"}"
        )
        .unwrap_err()
        .contains("duplicate tenant name"));
        assert!(parse_tenants(
            "{\"name\": \"a\", \"key\": \"k\"}\n{\"name\": \"b\", \"key\": \"k\"}"
        )
        .unwrap_err()
        .contains("duplicate API key"));
        assert!(
            parse_tenants("{\"name\": \"a\", \"key\": \"k\", \"weight\": 0}")
                .unwrap_err()
                .contains("weight")
        );
        assert!(parse_tenants("not json").unwrap_err().contains("line 1"));
    }

    #[test]
    fn constant_time_eq_matches_semantics() {
        assert!(constant_time_eq("secret", "secret"));
        assert!(!constant_time_eq("secret", "secrex"));
        assert!(!constant_time_eq("secret", "secre"));
        assert!(!constant_time_eq("", "x"));
        assert!(constant_time_eq("", ""));
    }

    #[test]
    fn token_bucket_admits_burst_then_throttles_with_exact_delay() {
        let mut b = TokenBucket::new(10.0, 3);
        for _ in 0..3 {
            assert_eq!(b.try_take(0), Ok(()));
        }
        // Bucket empty at t=0: one token refills in exactly 100 ms.
        assert_eq!(b.try_take(0), Err(100_000));
        // 50 ms in: half a token there, half (50 ms) still to wait.
        assert_eq!(b.try_take(50_000), Err(50_000));
        // 100 ms in: the token is back (and consumed again).
        assert_eq!(b.try_take(100_000), Ok(()));
        assert_eq!(b.try_take(100_000), Err(100_000));
    }

    #[test]
    fn token_bucket_clock_never_runs_backwards() {
        let mut b = TokenBucket::new(1.0, 1);
        assert_eq!(b.try_take(5_000_000), Ok(()));
        // An earlier timestamp is clamped: no free refill, no panic.
        assert!(b.try_take(1_000_000).is_err());
        assert_eq!(b.try_take(6_000_000), Ok(()));
    }

    #[test]
    fn unlimited_bucket_always_admits() {
        let mut b = TokenBucket::new(0.0, 1);
        for t in 0..1000 {
            assert_eq!(b.try_take(t), Ok(()));
        }
    }

    #[test]
    fn single_user_table_never_authenticates_or_limits() {
        let table = TenantTable::single_user(64, 8);
        assert!(!table.is_multi_tenant());
        assert_eq!(table.resolve(&get("/v1/solve", None)), Ok(ANONYMOUS));
        // Even a bogus Bearer key maps nowhere to reject against.
        assert_eq!(
            table.resolve(&get("/healthz", Some("Bearer junk"))),
            Ok(ANONYMOUS)
        );
        // And the API itself ignores stray credentials in single-user
        // mode — auth only exists once a tenant config is loaded.
        assert_eq!(
            table.resolve(&get("/v1/solve", Some("Bearer junk"))),
            Ok(ANONYMOUS)
        );
        for _ in 0..10_000 {
            assert_eq!(table.admit(ANONYMOUS), Ok(()));
        }
    }

    #[test]
    fn resolve_distinguishes_401_and_403() {
        let table = TenantTable::from_specs(
            &[spec("alpha", Some("ka")), spec("beta", Some("kb"))],
            &defaults(),
        )
        .unwrap();
        // No credentials where they are required: 401.
        assert_eq!(
            table.resolve(&get("/v1/solve", None)).unwrap_err().status,
            401
        );
        // Malformed header: 401.
        assert_eq!(
            table
                .resolve(&get("/v1/solve", Some("Basic abc")))
                .unwrap_err()
                .status,
            401
        );
        // Unknown key: 403.
        assert_eq!(
            table
                .resolve(&get("/v1/solve", Some("Bearer nope")))
                .unwrap_err()
                .status,
            403
        );
        // Valid keys resolve (anonymous slot 0 is reserved).
        let alpha = table.resolve(&get("/v1/solve", Some("Bearer ka"))).unwrap();
        let beta = table.resolve(&get("/v1/solve", Some("bearer kb"))).unwrap();
        assert_ne!(alpha, ANONYMOUS);
        assert_ne!(beta, ANONYMOUS);
        assert_ne!(alpha, beta);
        assert_eq!(table.tenant(alpha).name, "alpha");
        // Probes are always exempt.
        assert_eq!(table.resolve(&get("/healthz", None)), Ok(ANONYMOUS));
        assert_eq!(
            table.resolve(&get("/statusz", Some("Bearer nope"))),
            Ok(ANONYMOUS)
        );
    }

    #[test]
    fn keyless_config_entry_configures_the_anonymous_tenant() {
        let mut anon = spec("walk-ins", None);
        anon.weight = 2;
        let table =
            TenantTable::from_specs(&[anon, spec("alpha", Some("ka"))], &defaults()).unwrap();
        assert_eq!(table.resolve(&get("/v1/solve", None)), Ok(ANONYMOUS));
        assert_eq!(table.tenant(ANONYMOUS).name, "walk-ins");
        assert_eq!(table.tenant(ANONYMOUS).weight, 2);
        // Two keyless entries are ambiguous.
        assert!(TenantTable::from_specs(&[spec("a", None), spec("b", None)], &defaults()).is_err());
    }

    #[test]
    fn fair_queue_single_class_is_fifo_with_bounded_queue_semantics() {
        let q: FairQueue<i32> = FairQueue::new(&[(1, 2)]);
        q.try_push(0, 1).unwrap();
        q.try_push(0, 2).unwrap();
        assert_eq!(q.try_push(0, 3), Err(3), "depth cap");
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        q.close();
        assert_eq!(q.try_push(0, 4), Err(4), "closed queue rejects pushes");
        assert_eq!(q.pop(), Some(2), "backlog still drains");
        assert_eq!(q.pop(), None, "then pops see the close");
        q.close(); // idempotent
    }

    #[test]
    fn fair_queue_caps_are_per_class() {
        let q: FairQueue<&str> = FairQueue::new(&[(1, 1), (1, 2)]);
        q.try_push(0, "a0").unwrap();
        assert_eq!(q.try_push(0, "a1"), Err("a1"), "class 0 is full");
        q.try_push(1, "b0").unwrap();
        q.try_push(1, "b1").unwrap();
        assert_eq!(q.try_push(1, "b2"), Err("b2"), "class 1 is full");
        assert_eq!(q.len(), 3);
        assert_eq!(q.capacity(), 3);
        assert_eq!(q.class_len(1), 2);
    }

    #[test]
    fn drr_pops_follow_the_weights_under_saturation() {
        // Weight 3:1 with both classes backlogged: each full round
        // serves 3 of class 0 and 1 of class 1.
        let q: FairQueue<(usize, usize)> = FairQueue::new(&[(3, 64), (1, 64)]);
        for i in 0..12 {
            q.try_push(0, (0, i)).unwrap();
        }
        for i in 0..4 {
            q.try_push(1, (1, i)).unwrap();
        }
        let order: Vec<usize> =
            std::iter::from_fn(|| (!q.is_empty()).then(|| q.pop().unwrap().0)).collect();
        assert_eq!(order.len(), 16);
        for round in 0..4 {
            let slice = &order[round * 4..round * 4 + 4];
            assert_eq!(
                slice.iter().filter(|&&c| c == 0).count(),
                3,
                "round {round}: {order:?}"
            );
            assert_eq!(slice.iter().filter(|&&c| c == 1).count(), 1);
        }
        // FIFO within each class.
        let zeros: Vec<usize> = Vec::new();
        let _ = zeros;
    }

    #[test]
    fn drr_does_not_starve_a_late_light_tenant() {
        // A heavy class with a deep backlog; a light class shows up
        // late and must be served within one quantum of the heavy
        // class, not after its whole backlog.
        let q: FairQueue<&str> = FairQueue::new(&[(3, 64), (1, 64)]);
        for _ in 0..20 {
            q.try_push(0, "heavy").unwrap();
        }
        assert_eq!(q.pop(), Some("heavy"));
        q.try_push(1, "light").unwrap();
        let mut pops_until_light = 0;
        loop {
            let item = q.pop().unwrap();
            if item == "light" {
                break;
            }
            pops_until_light += 1;
            assert!(
                pops_until_light <= 3,
                "light tenant starved behind the backlog"
            );
        }
    }

    #[test]
    fn fair_queue_blocking_pop_wakes_on_push_and_close() {
        let q: std::sync::Arc<FairQueue<usize>> = std::sync::Arc::new(FairQueue::new(&[(1, 64)]));
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Some(v) = q.pop() {
                    got.push(v);
                }
                got
            })
        };
        for i in 0..10 {
            let mut item = i;
            loop {
                match q.try_push(0, item) {
                    Ok(()) => break,
                    Err(back) => {
                        item = back;
                        std::thread::yield_now();
                    }
                }
            }
        }
        q.close();
        let got = consumer.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn fair_queue_survives_a_poisoned_lock() {
        let q: FairQueue<i32> = FairQueue::new(&[(1, 8)]);
        q.try_push(0, 1).unwrap();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = q.state.lock().unwrap();
            panic!("poison");
        }));
        std::panic::set_hook(prev);
        q.try_push(0, 2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn job_slots_reserve_and_release() {
        let table = TenantTable::from_specs(
            &[{
                let mut s = spec("alpha", Some("ka"));
                s.max_jobs = Some(2);
                s
            }],
            &defaults(),
        )
        .unwrap();
        let alpha = table.resolve(&get("/v1/solve", Some("Bearer ka"))).unwrap();
        let t = table.tenant(alpha);
        assert!(t.try_reserve_job());
        assert!(t.try_reserve_job());
        assert!(!t.try_reserve_job(), "cap of 2");
        t.release_job();
        assert!(t.try_reserve_job());
        assert_eq!(t.active_jobs(), 2);
    }
}

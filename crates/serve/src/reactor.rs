//! The readiness event loop: one thread that owns the listener, every
//! connection, and the epoll set.
//!
//! The reactor never computes a response itself — it accepts sockets,
//! feeds bytes through each [`Conn`] state machine, pushes parsed
//! requests onto the bounded admission queue, and stitches worker
//! [`Completion`]s back into the owning connection's ordered write
//! queue. Workers signal completions through the shared eventfd
//! [`crate::sys::Waker`]; a 50 ms poll timeout doubles as the clock
//! for idle sweeps and shutdown checks.
//!
//! Tokens are `generation << 32 | slot-index`, so a completion that
//! arrives after its connection died (and the slot was reused) is
//! recognized as stale and dropped instead of corrupting the new
//! connection's pipeline.

use crate::conn::{Conn, FlushStatus, Outgoing, Phase, ReadOutcome};
use crate::dispatch::{Completion, DispatchJob};
use crate::http::{ParseError, Request, Response};
use crate::server::Shared;
use crate::signal;
use crate::sys::{event, Epoll};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Token for the listening socket.
const LISTENER_TOKEN: u64 = u64::MAX;
/// Token for the worker-completion eventfd.
const WAKER_TOKEN: u64 = u64::MAX - 1;

/// How long the reactor blocks in `epoll_wait`; bounds the latency of
/// noticing a shutdown request with no traffic.
const WAIT_MS: i32 = 50;
/// How often idle/draining connections are swept.
const SWEEP_EVERY: Duration = Duration::from_millis(500);
/// How long shutdown waits for in-flight work and unflushed responses
/// before abandoning unresponsive peers.
const STOP_GRACE: Duration = Duration::from_secs(5);

struct Slot {
    gen: u32,
    conn: Option<Conn>,
}

/// The reactor state; owned by the `wrsn-serve-reactor` thread.
pub(crate) struct Reactor {
    shared: Arc<Shared>,
    epoll: Epoll,
    listener: Option<TcpListener>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Requests dispatched to workers whose completions have not been
    /// applied yet (across all connections).
    inflight: usize,
    stopping: bool,
    stop_deadline: Option<Instant>,
}

impl Reactor {
    pub fn new(listener: TcpListener, epoll: Epoll, shared: Arc<Shared>) -> Self {
        Reactor {
            shared,
            epoll,
            listener: Some(listener),
            slots: Vec::new(),
            free: Vec::new(),
            inflight: 0,
            stopping: false,
            stop_deadline: None,
        }
    }

    /// The event loop; returns once shutdown has drained.
    pub fn run(mut self) {
        {
            let Some(listener) = &self.listener else {
                return;
            };
            if self
                .epoll
                .add(listener.as_raw_fd(), LISTENER_TOKEN, event::READ)
                .is_err()
            {
                return;
            }
        }
        let _ = self
            .epoll
            .add(self.shared.waker.fd(), WAKER_TOKEN, event::READ);
        let mut events = Vec::new();
        let mut last_sweep = Instant::now();
        loop {
            if !self.stopping
                && (self.shared.stop.load(Ordering::SeqCst) || signal::shutdown_requested())
            {
                self.stopping = true;
                self.stop_deadline = Some(Instant::now() + STOP_GRACE);
                if let Some(listener) = self.listener.take() {
                    self.epoll.delete(listener.as_raw_fd());
                }
                // Workers drain the backlog, then exit on the closed
                // queue; new parses get an inline 503.
                self.shared.queue.close();
            }
            if self.stopping {
                if self.quiescent() {
                    break;
                }
                if self.stop_deadline.is_some_and(|d| Instant::now() >= d) {
                    break;
                }
            }
            events.clear();
            if self.epoll.wait(&mut events, WAIT_MS).is_err() {
                break;
            }
            for &(token, mask) in &events {
                match token {
                    LISTENER_TOKEN => self.accept_all(),
                    WAKER_TOKEN => self.shared.waker.drain(),
                    _ => self.service(token, mask),
                }
            }
            self.apply_completions();
            let now = Instant::now();
            if now.saturating_duration_since(last_sweep) >= SWEEP_EVERY {
                last_sweep = now;
                self.sweep(now);
            }
        }
        // Dropping the slots closes every remaining socket.
    }

    /// Shutdown is complete: nothing in flight, nothing left to write.
    fn quiescent(&self) -> bool {
        self.inflight == 0
            && self.slots.iter().all(|slot| match &slot.conn {
                None => true,
                Some(conn) => {
                    matches!(conn.phase, Phase::Draining { .. }) || !conn.has_pending_output()
                }
            })
    }

    fn token_of(&self, index: usize) -> u64 {
        (u64::from(self.slots[index].gen) << 32) | index as u64
    }

    fn accept_all(&mut self) {
        loop {
            let Some(listener) = &self.listener else {
                return;
            };
            match listener.accept() {
                Ok((stream, _peer)) => self.admit(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                // Transient failure (e.g. EMFILE): give up this round;
                // the level-triggered listener event retries next wait.
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, mut stream: TcpStream) {
        let shared = Arc::clone(&self.shared);
        if shared.conns_open.load(Ordering::SeqCst) >= shared.max_conns {
            // Admission control at the connection level: answer the 503
            // best-effort and hang up. The write must never stall the
            // reactor — a hostile peer that refuses to read simply
            // loses the rejection body, which is acceptable.
            shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            let response = Response::error(503, "connection limit reached, try again")
                .header("Retry-After", "1");
            if stream.set_nonblocking(true).is_ok() {
                use std::io::Write as _;
                let _ = stream.write(&response.serialize(false));
            }
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        // Pipelined responses are many small writes on a long-lived
        // socket; without TCP_NODELAY, Nagle holds each one for the
        // peer's delayed ACK (~40 ms) and throughput collapses.
        let _ = stream.set_nodelay(true);
        let max_requests = if shared.keep_alive {
            shared.keep_alive_max_requests
        } else {
            1
        };
        let index = self.free.pop().unwrap_or_else(|| {
            self.slots.push(Slot { gen: 0, conn: None });
            self.slots.len() - 1
        });
        let token = self.token_of(index);
        let fd = stream.as_raw_fd();
        let mut conn = Conn::new(stream, max_requests);
        conn.interest = event::READ;
        if self.epoll.add(fd, token, event::READ).is_err() {
            self.free.push(index);
            return;
        }
        self.slots[index].conn = Some(conn);
        shared.conns_open.fetch_add(1, Ordering::SeqCst);
    }

    fn remove(&mut self, index: usize) {
        let slot = &mut self.slots[index];
        if let Some(conn) = slot.conn.take() {
            self.epoll.delete(conn.stream.as_raw_fd());
            slot.gen = slot.gen.wrapping_add(1);
            self.free.push(index);
            self.shared.conns_open.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn service(&mut self, token: u64, mask: u32) {
        let index = (token & u64::from(u32::MAX)) as usize;
        let gen = (token >> 32) as u32;
        let valid = self
            .slots
            .get(index)
            .is_some_and(|s| s.gen == gen && s.conn.is_some());
        if !valid {
            return;
        }
        if event::readable(mask) && !self.handle_readable(index) {
            return;
        }
        if event::writable(mask) {
            self.settle(index);
        }
    }

    /// Read-side progress on one connection. Returns whether the
    /// connection is still alive.
    fn handle_readable(&mut self, index: usize) -> bool {
        let shared = Arc::clone(&self.shared);
        enum AfterRead {
            Dispatch(Vec<(usize, Request)>, ReadOutcome),
            Remove,
        }
        let step = {
            let conn = self.slots[index].conn.as_mut().expect("validated");
            if matches!(conn.phase, Phase::Draining { .. }) {
                match conn.drain_read() {
                    FlushStatus::Close => AfterRead::Remove,
                    FlushStatus::Keep => return true,
                }
            } else {
                let outcome = conn.fill();
                if outcome == ReadOutcome::Error {
                    AfterRead::Remove
                } else {
                    // A parse error still yields the requests parsed
                    // before it; they hold earlier sequence numbers, so
                    // they must be dispatched for the error response's
                    // slot to ever flush.
                    let (parsed, error) = conn.take_requests();
                    match error {
                        None => AfterRead::Dispatch(parsed, outcome),
                        Some(e) => {
                            let response = match e {
                                ParseError::TooLarge => {
                                    Some(Response::error(413, "request too large"))
                                }
                                ParseError::Bad(why) => Some(Response::error(400, &why)),
                                // try_parse never produces Io; treat a
                                // stray one as a dead socket.
                                ParseError::Io(_) => None,
                            };
                            match response {
                                None => AfterRead::Remove,
                                Some(response) => {
                                    shared.metrics.record("other", response.status, 0);
                                    let seq = conn.fail_next_request();
                                    conn.enqueue(
                                        seq,
                                        Outgoing {
                                            bytes: response.serialize(false),
                                            close: true,
                                            drain: true,
                                        },
                                    );
                                    AfterRead::Dispatch(parsed, outcome)
                                }
                            }
                        }
                    }
                }
            }
        };
        match step {
            AfterRead::Remove => {
                self.remove(index);
                false
            }
            AfterRead::Dispatch(parsed, outcome) => {
                for (seq, request) in parsed {
                    self.dispatch(index, seq, request);
                }
                if outcome == ReadOutcome::Eof && !self.handle_eof(index) {
                    return false;
                }
                self.settle(index)
            }
        }
    }

    /// Hands one parsed request to the worker pool (or rejects it
    /// inline: `401`/`403` for failed auth, `429` past the tenant's
    /// rate limit, `503` when the tenant's sub-queue is full or the
    /// queue is closed — none of which may ever occupy a worker).
    fn dispatch(&mut self, index: usize, seq: usize, request: Request) {
        let shared = Arc::clone(&self.shared);
        if seq > 0 {
            shared
                .metrics
                .keepalive_reuses
                .fetch_add(1, Ordering::Relaxed);
        }
        // Tenant admission runs before the request can touch queue
        // space: identity first, then the token bucket.
        let tenant = match shared.tenants.resolve(&request) {
            Ok(tenant) => tenant,
            Err(response) => {
                shared.metrics.record(&request.path, response.status, 0);
                self.reject(index, seq, response);
                return;
            }
        };
        if request.path.starts_with("/v1/") {
            let stats = &shared.tenants.tenant(tenant).stats;
            stats.requests.fetch_add(1, Ordering::Relaxed);
            if let Err(wait_us) = shared.tenants.admit(tenant) {
                stats.rate_limited.fetch_add(1, Ordering::Relaxed);
                shared.metrics.record(&request.path, 429, 0);
                // Advertise the exact refill delay, rounded up to the
                // header's whole-second granularity.
                let retry_after = wait_us.div_ceil(1_000_000).max(1);
                let response = Response::error(
                    429,
                    &format!(
                        "tenant {:?} over its rate limit, retry in {wait_us} us",
                        shared.tenants.tenant(tenant).name
                    ),
                )
                .header("Retry-After", retry_after.to_string());
                self.reject(index, seq, response);
                return;
            }
        }
        let token = self.token_of(index);
        {
            let conn = self.slots[index].conn.as_mut().expect("validated");
            conn.in_flight += 1;
        }
        self.inflight += 1;
        let job = DispatchJob {
            token,
            seq,
            tenant,
            request,
            started: Instant::now(),
        };
        if shared.queue.try_push(tenant, job).is_err() {
            // Admission control: answer the 503 here so a full worker
            // pool never delays the rejection.
            self.inflight -= 1;
            shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
            shared
                .tenants
                .tenant(tenant)
                .stats
                .queue_rejected
                .fetch_add(1, Ordering::Relaxed);
            let response =
                Response::error(503, "server busy, try again").header("Retry-After", "1");
            let conn = self.slots[index].conn.as_mut().expect("validated");
            conn.in_flight -= 1;
            self.reject(index, seq, response);
        }
    }

    /// Answers `response` inline and seals the connection after it:
    /// the rejection never reaches the worker pool.
    fn reject(&mut self, index: usize, seq: usize, response: Response) {
        let conn = self.slots[index].conn.as_mut().expect("validated");
        conn.close_after = Some(seq);
        conn.read_closed = true;
        conn.enqueue(
            seq,
            Outgoing {
                bytes: response.serialize(false),
                close: true,
                drain: true,
            },
        );
    }

    /// The peer closed its write side. Returns whether the connection
    /// is still alive.
    fn handle_eof(&mut self, index: usize) -> bool {
        let shared = Arc::clone(&self.shared);
        enum AfterEof {
            Keep,
            Remove,
        }
        let step = {
            let conn = self.slots[index].conn.as_mut().expect("validated");
            let sealed = conn.read_closed;
            conn.read_closed = true;
            if conn.has_buffered_input() && !sealed {
                // A genuine partial request cut off mid-head.
                let response = Response::error(400, "connection closed mid-head");
                shared.metrics.record("other", response.status, 0);
                let seq = conn.fail_next_request();
                conn.enqueue(
                    seq,
                    Outgoing {
                        bytes: response.serialize(false),
                        close: true,
                        drain: false,
                    },
                );
                AfterEof::Keep
            } else {
                // A sealed stream (`Connection: close`, keep-alive cap)
                // deliberately ignores trailing pipelined bytes — no
                // 400, and no new sequence that would override the
                // close already promised at `close_after`.
                conn.discard_input();
                if conn.in_flight == 0 && !conn.has_pending_output() {
                    // Clean close between requests.
                    AfterEof::Remove
                } else {
                    // Serve what is already in flight, then close.
                    if conn.next_seq > 0 && conn.close_after.is_none() {
                        conn.close_after = Some(conn.next_seq - 1);
                    }
                    AfterEof::Keep
                }
            }
        };
        match step {
            AfterEof::Remove => {
                self.remove(index);
                false
            }
            AfterEof::Keep => true,
        }
    }

    /// Flushes pending output and refreshes the epoll interest mask.
    /// Returns whether the connection is still alive.
    fn settle(&mut self, index: usize) -> bool {
        let status = {
            let Some(conn) = self.slots[index].conn.as_mut() else {
                return false;
            };
            conn.flush()
        };
        if status == FlushStatus::Close {
            self.remove(index);
            return false;
        }
        let update = {
            let conn = self.slots[index].conn.as_ref().expect("just flushed");
            let want = conn.interest_now();
            (conn.interest != want).then(|| (conn.stream.as_raw_fd(), want))
        };
        if let Some((fd, want)) = update {
            let token = self.token_of(index);
            if self.epoll.modify(fd, token, want).is_err() {
                self.remove(index);
                return false;
            }
            self.slots[index]
                .conn
                .as_mut()
                .expect("just flushed")
                .interest = want;
        }
        true
    }

    /// Applies every completion the workers queued since the last pass.
    fn apply_completions(&mut self) {
        let completions: Vec<Completion> = std::mem::take(&mut *self.shared.completions.lock());
        let shared = Arc::clone(&self.shared);
        for completion in completions {
            self.inflight = self.inflight.saturating_sub(1);
            let index = (completion.token & u64::from(u32::MAX)) as usize;
            let gen = (completion.token >> 32) as u32;
            let valid = self
                .slots
                .get(index)
                .is_some_and(|s| s.gen == gen && s.conn.is_some());
            if !valid {
                // The connection died while its request was running.
                continue;
            }
            let stopping =
                self.stopping || shared.stop.load(Ordering::SeqCst) || signal::shutdown_requested();
            {
                let conn = self.slots[index].conn.as_mut().expect("validated");
                conn.in_flight = conn.in_flight.saturating_sub(1);
                let keep = shared.keep_alive
                    && completion.seq + 1 < conn.max_requests
                    && conn.close_after.is_none_or(|ca| completion.seq < ca)
                    && !stopping;
                let outgoing = if completion.truncate {
                    // Cut the serialized response in half and hang up:
                    // the client sees a short read, not a valid short
                    // body.
                    let bytes = completion.response.serialize(false);
                    let cut = (bytes.len() / 2).max(1);
                    Outgoing {
                        bytes: bytes[..cut].to_vec(),
                        close: true,
                        drain: false,
                    }
                } else {
                    Outgoing {
                        bytes: completion.response.serialize(keep),
                        close: !keep,
                        drain: false,
                    }
                };
                conn.enqueue(completion.seq, outgoing);
            }
            self.settle(index);
        }
    }

    /// Closes connections past their idle or draining deadline.
    fn sweep(&mut self, now: Instant) {
        for index in 0..self.slots.len() {
            let expired = self.slots[index]
                .conn
                .as_ref()
                .is_some_and(|c| c.expired(now, self.shared.keep_alive_idle));
            if expired {
                self.remove(index);
            }
        }
    }
}

//! The server: listener, acceptor, bounded admission queue, worker
//! pool, routing, and graceful shutdown.
//!
//! Threading model: one acceptor thread polls a non-blocking
//! [`TcpListener`] (so it can notice shutdown between connections) and
//! pushes accepted sockets onto a [`BoundedQueue`]; on overflow it
//! answers `503` + `Retry-After` itself, inline, so rejection stays
//! cheap no matter how busy the workers are. A fixed pool of worker
//! threads pops sockets, serves one or more requests per connection
//! (keep-alive, when enabled, with an idle timeout and a max-requests
//! cap), routes each through [`ApiContext`], and closes. A per-request
//! deadline ([`ServerConfig::request_timeout`]) turns slow handlers
//! into `504`s instead of wedged workers, and an optional
//! [`ChaosPolicy`] makes the server misbehave deterministically for
//! resilience tests. Shutdown closes the queue; workers drain the
//! backlog, finish in-flight requests, exit, and the shared result
//! store is flushed to disk.

use crate::api::{ApiContext, ApiError, ApiOutcome, SimulateRequest, SolveRequest, SweepRequest};
use crate::chaos::{ChaosDecision, ChaosPolicy, ChaosState};
use crate::http::{read_request, ParseError, Request, Response};
use crate::metrics::Metrics;
use crate::queue::BoundedQueue;
use crate::signal;
use crate::ServeError;
use serde::Deserialize;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the acceptor sleeps between polls of a quiet listener. This
/// bounds the accept latency a fresh connection can see, so it is kept
/// small; at 1 kHz the idle polling cost is still negligible.
const ACCEPT_POLL: Duration = Duration::from_millis(1);

/// Per-connection socket timeouts — a stalled peer cannot pin a worker.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(30);

/// How long to swallow unread request bytes before closing an
/// error-answered connection (see [`drain_before_close`]).
const DRAIN_TIMEOUT: Duration = Duration::from_millis(250);

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7421` (port 0 picks a free one).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Admission queue capacity; overflow is rejected with 503.
    pub queue_depth: usize,
    /// Per-request handler deadline: a handler still running past it is
    /// answered `504` + `Retry-After` while it finishes on a detached
    /// thread (`None` = no deadline).
    pub request_timeout: Option<Duration>,
    /// Serve multiple requests per connection (HTTP/1.1 keep-alive).
    pub keep_alive: bool,
    /// Most requests served over one keep-alive connection before the
    /// server closes it.
    pub keep_alive_max_requests: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub keep_alive_idle: Duration,
    /// Deterministic misbehavior for resilience tests (`None` in
    /// production).
    pub chaos: Option<ChaosPolicy>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7421".to_string(),
            workers: 4,
            queue_depth: 64,
            request_timeout: None,
            keep_alive: false,
            keep_alive_max_requests: 32,
            keep_alive_idle: Duration::from_secs(5),
            chaos: None,
        }
    }
}

struct Shared {
    api: ApiContext,
    metrics: Metrics,
    queue: BoundedQueue<TcpStream>,
    busy: AtomicUsize,
    workers: usize,
    stop: AtomicBool,
    request_timeout: Option<Duration>,
    keep_alive: bool,
    keep_alive_max_requests: usize,
    keep_alive_idle: Duration,
    chaos: Option<ChaosState>,
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] aborts the threads without draining.
pub struct Server;

/// Controls a running server: its bound address, shutdown, and the
/// shared state tests introspect.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and worker pool, and returns the
    /// handle. The listener is ready (connections are accepted) before
    /// this returns.
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] when the address cannot be bound;
    /// [`ServeError::Config`] when the chaos policy is out of range.
    pub fn start(config: &ServerConfig, api: ApiContext) -> Result<ServerHandle, ServeError> {
        if let Some(chaos) = &config.chaos {
            chaos.validate().map_err(ServeError::Config)?;
        }
        let listener = TcpListener::bind(&config.addr).map_err(|e| ServeError::Bind {
            addr: config.addr.clone(),
            message: e.to_string(),
        })?;
        let addr = listener.local_addr().map_err(|e| ServeError::Bind {
            addr: config.addr.clone(),
            message: e.to_string(),
        })?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Bind {
                addr: config.addr.clone(),
                message: format!("set_nonblocking: {e}"),
            })?;
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            api,
            metrics: Metrics::new(),
            queue: BoundedQueue::new(config.queue_depth.max(1)),
            busy: AtomicUsize::new(0),
            workers,
            stop: AtomicBool::new(false),
            request_timeout: config.request_timeout,
            keep_alive: config.keep_alive,
            keep_alive_max_requests: config.keep_alive_max_requests.max(1),
            keep_alive_idle: config.keep_alive_idle,
            chaos: config
                .chaos
                .clone()
                .filter(|p| !p.is_empty())
                .map(ChaosState::new),
        });

        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("wrsn-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .expect("spawning the acceptor thread")
        };
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("wrsn-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawning a worker thread");
            handles.push(handle);
        }
        Ok(ServerHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers: handles,
        })
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared) {
    loop {
        if shared.stop.load(Ordering::SeqCst) || signal::shutdown_requested() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
                let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
                if let Err(mut rejected) = shared.queue.try_push(stream) {
                    // Admission control: answer the 503 here so a full
                    // worker pool never delays the rejection.
                    shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                    let response =
                        Response::error(503, "server busy, try again").header("Retry-After", "1");
                    let _ = response.write_to(&mut rejected);
                    drain_before_close(&mut rejected);
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Transient accept failure (e.g. EMFILE): back off a
                // little and keep serving.
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
    // No more admissions; workers drain what was already accepted.
    shared.queue.close();
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(mut stream) = shared.queue.pop() {
        shared.busy.fetch_add(1, Ordering::SeqCst);
        handle_connection(&mut stream, shared);
        shared.busy.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_connection(stream: &mut TcpStream, shared: &Arc<Shared>) {
    let max = if shared.keep_alive {
        shared.keep_alive_max_requests
    } else {
        1
    };
    for served in 0..max {
        if served > 0 {
            // Between keep-alive requests an idle peer gets a shorter
            // leash than the in-request socket timeout.
            let _ = stream.set_read_timeout(Some(shared.keep_alive_idle));
        }
        let started = Instant::now();
        let request = match read_request(stream) {
            Ok(request) => request,
            Err(e) => {
                let response = match e {
                    ParseError::TooLarge => Response::error(413, "request too large"),
                    ParseError::Bad(why) => Response::error(400, &why),
                    // Peer went away or idled out; nothing to answer.
                    ParseError::Io(_) => return,
                };
                shared
                    .metrics
                    .record("other", response.status, elapsed_us(started));
                let _ = response.write_to(stream);
                drain_before_close(stream);
                return;
            }
        };
        if served > 0 {
            shared
                .metrics
                .keepalive_reuses
                .fetch_add(1, Ordering::Relaxed);
            let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
        }
        let client_close = request
            .header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"));
        let stopping = shared.stop.load(Ordering::SeqCst) || signal::shutdown_requested();
        let keep = shared.keep_alive && served + 1 < max && !client_close && !stopping;

        // Chaos touches only the API; probe endpoints stay honest so
        // readiness checks keep working during a chaos run.
        let decision = match &shared.chaos {
            Some(chaos) if request.path.starts_with("/v1/") => chaos.decide(),
            _ => ChaosDecision::NONE,
        };
        if let Some(delay) = decision.delay {
            std::thread::sleep(delay);
        }
        let response = if decision.inject_fault {
            shared.metrics.chaos_faults.fetch_add(1, Ordering::Relaxed);
            Response::error(500, "chaos: injected fault").header("Retry-After", "1")
        } else {
            route_with_deadline(&request, shared)
        };
        shared
            .metrics
            .record(&request.path, response.status, elapsed_us(started));
        if decision.truncate {
            // Cut the serialized response in half and hang up: the
            // client sees a short read, not a valid short body.
            shared.metrics.chaos_faults.fetch_add(1, Ordering::Relaxed);
            let bytes = response.serialize(false);
            let cut = (bytes.len() / 2).max(1);
            let _ = std::io::Write::write_all(stream, &bytes[..cut]);
            let _ = std::io::Write::flush(stream);
            return;
        }
        if response.write_to_with(stream, keep).is_err() || !keep {
            return;
        }
    }
}

/// Routes the request, racing the handler against the configured
/// deadline. On timeout the worker answers `504` immediately; the
/// handler finishes on its detached thread and its result is dropped.
fn route_with_deadline(request: &Request, shared: &Arc<Shared>) -> Response {
    let Some(timeout) = shared.request_timeout else {
        return route(request, shared);
    };
    let (tx, rx) = std::sync::mpsc::channel();
    let req = request.clone();
    let worker_shared = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("wrsn-serve-handler".to_string())
        .spawn(move || {
            let _ = tx.send(route(&req, &worker_shared));
        });
    if spawned.is_err() {
        // Thread exhaustion: degrade to inline handling rather than
        // failing the request.
        return route(request, shared);
    }
    match rx.recv_timeout(timeout) {
        Ok(response) => response,
        Err(_) => {
            shared.metrics.timeouts.fetch_add(1, Ordering::Relaxed);
            Response::error(504, "request deadline exceeded").header("Retry-After", "1")
        }
    }
}

fn elapsed_us(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Half-closes and swallows whatever the peer has left of its request.
///
/// Needed when a response was written *before* the request was fully
/// read (overflow 503s, 413s): closing a socket with unread bytes
/// pending sends an RST, which can destroy the response before the
/// peer reads it. Bounded by [`DRAIN_TIMEOUT`] so a stalled peer
/// cannot pin the caller.
fn drain_before_close(stream: &mut TcpStream) {
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let _ = stream.set_read_timeout(Some(DRAIN_TIMEOUT));
    let deadline = Instant::now() + DRAIN_TIMEOUT;
    let mut sink = [0u8; 1024];
    while let Ok(n) = std::io::Read::read(stream, &mut sink) {
        if n == 0 || Instant::now() >= deadline {
            break;
        }
    }
}

fn route(request: &Request, shared: &Shared) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => Response::json(200, "{\"status\":\"ok\"}"),
        ("GET", "/statusz") => {
            let body = shared.metrics.to_statusz(
                shared.workers,
                shared.busy.load(Ordering::SeqCst),
                shared.queue.len(),
                shared.queue.capacity(),
                shared.api.store.as_ref().map(|s| s.len()),
            );
            json_response(200, &body)
        }
        ("GET", "/v1/solvers") => json_response(200, &shared.api.solvers().body),
        ("POST", "/v1/solve") => {
            handle_api(request, shared, |api, req: &SolveRequest| api.solve(req))
        }
        ("POST", "/v1/simulate") => handle_api(request, shared, |api, req: &SimulateRequest| {
            api.simulate(req)
        }),
        ("POST", "/v1/sweep") => {
            handle_api(request, shared, |api, req: &SweepRequest| api.sweep(req))
        }
        ("GET", "/v1/solve" | "/v1/simulate" | "/v1/sweep") => {
            Response::error(405, "use POST with a JSON body")
        }
        ("POST", "/healthz" | "/statusz" | "/v1/solvers") => Response::error(405, "use GET"),
        _ => Response::error(404, "no such endpoint"),
    }
}

fn json_response(status: u16, body: &serde::Value) -> Response {
    Response::json(
        status,
        serde_json::to_string(body).expect("a Value always serializes"),
    )
}

fn handle_api<R, F>(request: &Request, shared: &Shared, handler: F) -> Response
where
    R: Deserialize + Default,
    F: FnOnce(&ApiContext, &R) -> Result<ApiOutcome, ApiError>,
{
    let body = request.body_text();
    let parsed: Result<R, _> = if body.trim().is_empty() {
        Ok(R::default())
    } else {
        serde_json::from_str(&body)
    };
    let req = match parsed {
        Ok(req) => req,
        Err(e) => return Response::error(400, &format!("invalid request body: {e}")),
    };
    match handler(&shared.api, &req) {
        Ok(outcome) => {
            shared.metrics.add_cache(&outcome.cache);
            json_response(200, &outcome.body)
                .header("x-cache-hits", outcome.cache.hits.to_string())
                .header("x-cache-misses", outcome.cache.misses.to_string())
        }
        Err(e) => Response::error(e.status, &e.message),
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Cumulative metrics (shared with the worker threads).
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Stops accepting, drains queued and in-flight requests, joins
    /// every thread, and flushes the shared result store.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when the final store flush fails (the
    /// threads are already joined by then).
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        self.shared.stop.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(store) = &self.shared.api.store {
            store.sync()?;
        }
        Ok(())
    }

    /// Serves until SIGINT/SIGTERM (or [`signal::request_shutdown`]),
    /// then shuts down gracefully. Consumes the handle.
    ///
    /// # Errors
    ///
    /// Propagates [`ServerHandle::shutdown`]'s store-flush failure.
    pub fn run_until_signal(self) -> Result<(), ServeError> {
        signal::install_handlers();
        while !signal::shutdown_requested() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{request, ClientResponse};

    fn start(workers: usize, queue_depth: usize) -> ServerHandle {
        start_with(ServerConfig {
            workers,
            queue_depth,
            ..ServerConfig::default()
        })
    }

    fn start_with(mut config: ServerConfig) -> ServerHandle {
        config.addr = "127.0.0.1:0".to_string();
        Server::start(&config, ApiContext::new()).unwrap()
    }

    fn get(addr: SocketAddr, path: &str) -> ClientResponse {
        request(&addr.to_string(), "GET", path, None).unwrap()
    }

    #[test]
    fn healthz_round_trips() {
        let server = start(2, 8);
        let resp = get(server.addr(), "/healthz");
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("ok"));
        server.shutdown().unwrap();
    }

    #[test]
    fn unknown_paths_and_methods_get_404_405() {
        let server = start(2, 8);
        let addr = server.addr();
        assert_eq!(get(addr, "/nope").status, 404);
        assert_eq!(get(addr, "/v1/solve").status, 405);
        let resp = request(&addr.to_string(), "POST", "/healthz", Some("{}")).unwrap();
        assert_eq!(resp.status, 405);
        server.shutdown().unwrap();
    }

    #[test]
    fn malformed_json_is_a_400() {
        let server = start(2, 8);
        let resp = request(
            &server.addr().to_string(),
            "POST",
            "/v1/solve",
            Some("{not json"),
        )
        .unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("error"));
        server.shutdown().unwrap();
    }

    #[test]
    fn statusz_counts_requests() {
        let server = start(2, 8);
        let addr = server.addr();
        let _ = get(addr, "/healthz");
        let resp = get(addr, "/statusz");
        assert_eq!(resp.status, 200);
        let v: serde::Value = serde_json::from_str(&resp.body).unwrap();
        let healthz = v
            .get("endpoints")
            .and_then(|e| e.get("/healthz"))
            .expect("healthz counted");
        assert_eq!(
            healthz.get("requests").and_then(serde::Value::as_u64),
            Some(1)
        );
        server.shutdown().unwrap();
    }

    #[test]
    fn shutdown_drains_and_joins() {
        let server = start(1, 4);
        let addr = server.addr();
        let _ = get(addr, "/healthz");
        server.shutdown().unwrap();
        // The socket no longer accepts once shut down.
        assert!(request(&addr.to_string(), "GET", "/healthz", None).is_err());
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        use std::io::{Read as _, Write as _};
        let server = start_with(ServerConfig {
            workers: 1,
            keep_alive: true,
            keep_alive_max_requests: 8,
            ..ServerConfig::default()
        });
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut read_one = |expect_keep: bool| {
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            // Responses are Content-Length framed; read the head then
            // the exact body.
            let mut head = Vec::new();
            let mut byte = [0u8; 1];
            while !head.ends_with(b"\r\n\r\n") {
                assert_eq!(stream.read(&mut byte).unwrap(), 1, "server closed early");
                head.push(byte[0]);
            }
            let head = String::from_utf8(head).unwrap();
            let wanted = if expect_keep { "keep-alive" } else { "close" };
            assert!(
                head.to_ascii_lowercase()
                    .contains(&format!("connection: {wanted}")),
                "{head}"
            );
            let length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            let mut body = vec![0u8; length];
            stream.read_exact(&mut body).unwrap();
        };
        for _ in 0..7 {
            read_one(true);
        }
        // The 8th request exhausts the per-connection cap.
        read_one(false);
        assert!(
            server
                .metrics()
                .keepalive_reuses
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 7
        );
        server.shutdown().unwrap();
    }

    #[test]
    fn client_connection_close_is_honored_under_keep_alive() {
        let server = start_with(ServerConfig {
            workers: 1,
            keep_alive: true,
            ..ServerConfig::default()
        });
        // The plain client sends `Connection: close` and reads to EOF;
        // if the server held the socket open this would hang until the
        // read timeout instead of completing instantly.
        let resp = get(server.addr(), "/healthz");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("connection"), Some("close"));
        server.shutdown().unwrap();
    }

    #[test]
    fn slow_handlers_answer_504_within_the_deadline() {
        let server = start_with(ServerConfig {
            workers: 1,
            // Any real solve takes longer than a nanosecond.
            request_timeout: Some(Duration::from_nanos(1)),
            ..ServerConfig::default()
        });
        let resp = request(&server.addr().to_string(), "POST", "/v1/solve", Some("{}")).unwrap();
        assert_eq!(resp.status, 504);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(resp.body.contains("deadline"));
        assert!(
            server
                .metrics()
                .timeouts
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );
        server.shutdown().unwrap();
    }

    #[test]
    fn certain_chaos_faults_api_paths_but_not_probes() {
        let server = start_with(ServerConfig {
            workers: 2,
            chaos: Some(ChaosPolicy::seeded(1).faults(1.0)),
            ..ServerConfig::default()
        });
        let addr = server.addr();
        assert_eq!(get(addr, "/healthz").status, 200, "probes are exempt");
        assert_eq!(get(addr, "/statusz").status, 200);
        let resp = request(&addr.to_string(), "GET", "/v1/solvers", None).unwrap();
        assert_eq!(resp.status, 500);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(
            server
                .metrics()
                .chaos_faults
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );
        server.shutdown().unwrap();
    }

    #[test]
    fn out_of_range_chaos_policy_is_a_config_error() {
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            chaos: Some(ChaosPolicy::seeded(0).faults(1.5)),
            ..ServerConfig::default()
        };
        match Server::start(&config, ApiContext::new()) {
            Err(err) => assert!(matches!(err, ServeError::Config(_)), "{err}"),
            Ok(_) => panic!("out-of-range chaos probability was accepted"),
        }
    }
}

//! The server: configuration, startup, shared state, and graceful
//! shutdown around the readiness reactor.
//!
//! Threading model: one reactor thread (`wrsn-serve-reactor`) owns the
//! nonblocking listener and every connection, multiplexed through an
//! epoll set (see [`crate::reactor`]); connections are per-socket
//! state machines (read → parse → dispatch → buffered write,
//! [`crate::conn`]) with full HTTP/1.1 pipelining. A fixed pool of CPU
//! worker threads pops parsed requests off a [`BoundedQueue`] — the
//! admission bound; overflow is answered `503` + `Retry-After` by the
//! reactor inline — routes each through [`ApiContext`]
//! ([`crate::dispatch`]), and hands the completion back through an
//! eventfd wakeup. Long sweeps go through the bounded async job API
//! ([`crate::jobs`]) on their own threads instead of occupying a
//! worker for the whole run.
//!
//! A per-request deadline ([`ServerConfig::request_timeout`]) turns
//! slow handlers into `504`s instead of wedged workers, and an
//! optional [`ChaosPolicy`] makes the server misbehave
//! deterministically for resilience tests. Shutdown closes the
//! listener and the queue; workers drain the backlog, the reactor
//! flushes in-flight responses, every thread (including job threads)
//! joins, and the shared result store is flushed to disk.

use crate::api::ApiContext;
use crate::chaos::{ChaosPolicy, ChaosState};
use crate::cluster::{gossip_loop, ClusterState};
use crate::dispatch::{worker_loop, Completion, DispatchJob};
use crate::jobs::{self, Jobs};
use crate::metrics::Metrics;
use crate::reactor::Reactor;
use crate::signal;
use crate::sys;
use crate::tenant::{FairQueue, TenantDefaults, TenantSpec, TenantTable};
use crate::ServeError;
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7421` (port 0 picks a free one).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Admission queue capacity; overflow is rejected with 503.
    pub queue_depth: usize,
    /// Per-request handler deadline: a handler still running past it is
    /// answered `504` + `Retry-After` while it finishes on a detached
    /// thread (`None` = no deadline).
    pub request_timeout: Option<Duration>,
    /// Serve multiple requests per connection (HTTP/1.1 keep-alive).
    pub keep_alive: bool,
    /// Most requests served over one keep-alive connection before the
    /// server closes it.
    pub keep_alive_max_requests: usize,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub keep_alive_idle: Duration,
    /// Most connections the reactor keeps open at once; accepts beyond
    /// it are answered `503` + `Retry-After` and closed.
    pub max_conns: usize,
    /// Most async sweep jobs (`POST /v1/jobs`) running concurrently;
    /// submissions past it are rejected with `503` + `Retry-After`.
    pub max_jobs: usize,
    /// Deterministic misbehavior for resilience tests (`None` in
    /// production).
    pub chaos: Option<ChaosPolicy>,
    /// The tenant roster (`--tenants FILE`). `None` keeps the exact
    /// single-user behavior: one anonymous tenant, no auth, no rate
    /// limit, a plain FIFO admission queue.
    pub tenants: Option<Vec<TenantSpec>>,
    /// Default sustained requests/second for tenants that omit `rps`
    /// (0 = unlimited).
    pub default_rps: f64,
    /// Default token-bucket burst for tenants that omit `burst`.
    pub default_burst: u64,
    /// Cluster fabric membership (`--cluster-peers`). `None` keeps the
    /// exact single-node behavior: no forwarding, no gossip thread, no
    /// `cluster` section in `/statusz`.
    pub cluster: Option<wrsn_cluster::ClusterConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7421".to_string(),
            workers: 4,
            queue_depth: 64,
            request_timeout: None,
            keep_alive: false,
            keep_alive_max_requests: 32,
            keep_alive_idle: Duration::from_secs(5),
            max_conns: 4096,
            max_jobs: 8,
            chaos: None,
            tenants: None,
            default_rps: 0.0,
            default_burst: 16,
            cluster: None,
        }
    }
}

/// State shared between the reactor, the worker pool, and job threads.
pub(crate) struct Shared {
    pub(crate) api: ApiContext,
    pub(crate) metrics: Metrics,
    pub(crate) tenants: TenantTable,
    pub(crate) queue: FairQueue<DispatchJob>,
    pub(crate) completions: Mutex<Vec<Completion>>,
    pub(crate) waker: sys::Waker,
    pub(crate) busy: AtomicUsize,
    pub(crate) workers: usize,
    pub(crate) stop: AtomicBool,
    pub(crate) conns_open: AtomicUsize,
    pub(crate) max_conns: usize,
    pub(crate) request_timeout: Option<Duration>,
    pub(crate) keep_alive: bool,
    pub(crate) keep_alive_max_requests: usize,
    pub(crate) keep_alive_idle: Duration,
    pub(crate) chaos: Option<ChaosState>,
    pub(crate) jobs: Jobs,
    pub(crate) cluster: Option<ClusterState>,
}

/// A running server. Dropping the handle without calling
/// [`ServerHandle::shutdown`] aborts the threads without draining.
pub struct Server;

/// Controls a running server: its bound address, shutdown, and the
/// shared state tests introspect.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    gossip: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the reactor and worker pool, and returns the
    /// handle. The listener is ready (connections are accepted) before
    /// this returns.
    ///
    /// # Errors
    ///
    /// [`ServeError::Bind`] when the address cannot be bound or the
    /// epoll/eventfd setup fails; [`ServeError::Config`] when the
    /// chaos policy is out of range.
    pub fn start(config: &ServerConfig, api: ApiContext) -> Result<ServerHandle, ServeError> {
        if let Some(chaos) = &config.chaos {
            chaos.validate().map_err(ServeError::Config)?;
        }
        let cluster = match &config.cluster {
            Some(spec) => {
                if api.store.is_none() {
                    return Err(ServeError::Config(
                        "cluster mode requires a cache store (--cache)".to_string(),
                    ));
                }
                Some(ClusterState::new(spec.clone()).map_err(ServeError::Config)?)
            }
            None => None,
        };
        let tenants = match &config.tenants {
            Some(specs) => TenantTable::from_specs(
                specs,
                &TenantDefaults {
                    rps: config.default_rps,
                    burst: config.default_burst.max(1),
                    queue_depth: config.queue_depth.max(1),
                    max_jobs: config.max_jobs.max(1),
                },
            )
            .map_err(ServeError::Config)?,
            None => TenantTable::single_user(config.queue_depth.max(1), config.max_jobs.max(1)),
        };
        let queue = FairQueue::for_tenants(&tenants);
        let bind_err = |message: String| ServeError::Bind {
            addr: config.addr.clone(),
            message,
        };
        let listener = TcpListener::bind(&config.addr).map_err(|e| bind_err(e.to_string()))?;
        let addr = listener.local_addr().map_err(|e| bind_err(e.to_string()))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| bind_err(format!("set_nonblocking: {e}")))?;
        let epoll = sys::Epoll::new().map_err(|e| bind_err(format!("epoll_create1: {e}")))?;
        let waker = sys::Waker::new().map_err(|e| bind_err(format!("eventfd: {e}")))?;
        let workers = config.workers.max(1);
        // With a store attached, jobs journal their specs and reports
        // under it so they survive a crash or restart (see crate::jobs).
        let jobs_dir = api.store.as_ref().and_then(|store| {
            let dir = store.dir().join("jobs");
            match std::fs::create_dir_all(&dir) {
                Ok(()) => Some(dir),
                Err(e) => {
                    eprintln!(
                        "wrsn-serve: cannot create job journal dir {}: {e}; jobs are not durable",
                        dir.display()
                    );
                    None
                }
            }
        });
        let shared = Arc::new(Shared {
            api,
            metrics: Metrics::new(),
            tenants,
            queue,
            completions: Mutex::new(Vec::new()),
            waker,
            busy: AtomicUsize::new(0),
            workers,
            stop: AtomicBool::new(false),
            conns_open: AtomicUsize::new(0),
            max_conns: config.max_conns.max(1),
            request_timeout: config.request_timeout,
            keep_alive: config.keep_alive,
            keep_alive_max_requests: config.keep_alive_max_requests.max(1),
            keep_alive_idle: config.keep_alive_idle,
            chaos: config
                .chaos
                .clone()
                .filter(|p| !p.is_empty())
                .map(ChaosState::new),
            jobs: Jobs::new(config.max_jobs, jobs_dir),
            cluster,
        });
        // Reload finished jobs and respawn interrupted ones before the
        // listener opens, so the first poll after a restart already
        // sees them.
        jobs::restore(&shared);

        let reactor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("wrsn-serve-reactor".to_string())
                .spawn(move || Reactor::new(listener, epoll, shared).run())
                .expect("spawning the reactor thread")
        };
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared = shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("wrsn-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawning a worker thread");
            handles.push(handle);
        }
        let gossip = shared.cluster.as_ref().map(|_| {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("wrsn-serve-gossip".to_string())
                .spawn(move || gossip_loop(&shared))
                .expect("spawning the gossip thread")
        });
        Ok(ServerHandle {
            addr,
            shared,
            reactor: Some(reactor),
            workers: handles,
            gossip,
        })
    }
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Cumulative metrics (shared with the worker threads).
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.shared.metrics
    }

    /// Stops accepting, drains queued and in-flight requests, joins
    /// every thread (reactor, workers, job threads), and flushes the
    /// shared result store.
    ///
    /// # Errors
    ///
    /// [`ServeError::Store`] when the final store flush fails (the
    /// threads are already joined by then).
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        if let Some(reactor) = self.reactor.take() {
            let _ = reactor.join();
        }
        // The reactor closes the queue on its way out; repeat here in
        // case it died early, so the workers still unblock.
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        if let Some(gossip) = self.gossip.take() {
            let _ = gossip.join();
        }
        self.shared.jobs.join_all();
        if let Some(store) = &self.shared.api.store {
            store.sync()?;
        }
        Ok(())
    }

    /// Serves until SIGINT/SIGTERM (or [`signal::request_shutdown`]),
    /// then shuts down gracefully. Consumes the handle.
    ///
    /// # Errors
    ///
    /// Propagates [`ServerHandle::shutdown`]'s store-flush failure.
    pub fn run_until_signal(self) -> Result<(), ServeError> {
        signal::install_handlers();
        while !signal::shutdown_requested() {
            std::thread::sleep(Duration::from_millis(50));
        }
        self.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{request, ClientResponse};

    fn start(workers: usize, queue_depth: usize) -> ServerHandle {
        start_with(ServerConfig {
            workers,
            queue_depth,
            ..ServerConfig::default()
        })
    }

    fn start_with(mut config: ServerConfig) -> ServerHandle {
        config.addr = "127.0.0.1:0".to_string();
        Server::start(&config, ApiContext::new()).unwrap()
    }

    fn get(addr: SocketAddr, path: &str) -> ClientResponse {
        request(&addr.to_string(), "GET", path, None).unwrap()
    }

    #[test]
    fn healthz_round_trips() {
        let server = start(2, 8);
        let resp = get(server.addr(), "/healthz");
        assert_eq!(resp.status, 200);
        assert!(resp.body.contains("ok"));
        server.shutdown().unwrap();
    }

    #[test]
    fn unknown_paths_and_methods_get_404_405() {
        let server = start(2, 8);
        let addr = server.addr();
        assert_eq!(get(addr, "/nope").status, 404);
        assert_eq!(get(addr, "/v1/solve").status, 405);
        let resp = request(&addr.to_string(), "POST", "/healthz", Some("{}")).unwrap();
        assert_eq!(resp.status, 405);
        server.shutdown().unwrap();
    }

    #[test]
    fn malformed_json_is_a_400() {
        let server = start(2, 8);
        let resp = request(
            &server.addr().to_string(),
            "POST",
            "/v1/solve",
            Some("{not json"),
        )
        .unwrap();
        assert_eq!(resp.status, 400);
        assert!(resp.body.contains("error"));
        server.shutdown().unwrap();
    }

    #[test]
    fn statusz_counts_requests() {
        let server = start(2, 8);
        let addr = server.addr();
        let _ = get(addr, "/healthz");
        let resp = get(addr, "/statusz");
        assert_eq!(resp.status, 200);
        let v: serde::Value = serde_json::from_str(&resp.body).unwrap();
        let healthz = v
            .get("endpoints")
            .and_then(|e| e.get("/healthz"))
            .expect("healthz counted");
        assert_eq!(
            healthz.get("requests").and_then(serde::Value::as_u64),
            Some(1)
        );
        server.shutdown().unwrap();
    }

    #[test]
    fn shutdown_drains_and_joins() {
        let server = start(1, 4);
        let addr = server.addr();
        let _ = get(addr, "/healthz");
        server.shutdown().unwrap();
        // The socket no longer accepts once shut down.
        assert!(request(&addr.to_string(), "GET", "/healthz", None).is_err());
    }

    #[test]
    fn keep_alive_serves_many_requests_on_one_connection() {
        use std::io::{Read as _, Write as _};
        let server = start_with(ServerConfig {
            workers: 1,
            keep_alive: true,
            keep_alive_max_requests: 8,
            ..ServerConfig::default()
        });
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        let mut read_one = |expect_keep: bool| {
            stream
                .write_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            // Responses are Content-Length framed; read the head then
            // the exact body.
            let mut head = Vec::new();
            let mut byte = [0u8; 1];
            while !head.ends_with(b"\r\n\r\n") {
                assert_eq!(stream.read(&mut byte).unwrap(), 1, "server closed early");
                head.push(byte[0]);
            }
            let head = String::from_utf8(head).unwrap();
            let wanted = if expect_keep { "keep-alive" } else { "close" };
            assert!(
                head.to_ascii_lowercase()
                    .contains(&format!("connection: {wanted}")),
                "{head}"
            );
            let length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            let mut body = vec![0u8; length];
            stream.read_exact(&mut body).unwrap();
        };
        for _ in 0..7 {
            read_one(true);
        }
        // The 8th request exhausts the per-connection cap.
        read_one(false);
        assert!(
            server
                .metrics()
                .keepalive_reuses
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 7
        );
        server.shutdown().unwrap();
    }

    #[test]
    fn client_connection_close_is_honored_under_keep_alive() {
        let server = start_with(ServerConfig {
            workers: 1,
            keep_alive: true,
            ..ServerConfig::default()
        });
        // The plain client sends `Connection: close` and reads to EOF;
        // if the server held the socket open this would hang until the
        // read timeout instead of completing instantly.
        let resp = get(server.addr(), "/healthz");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("connection"), Some("close"));
        server.shutdown().unwrap();
    }

    #[test]
    fn slow_handlers_answer_504_within_the_deadline() {
        let server = start_with(ServerConfig {
            workers: 1,
            // Any real solve takes longer than a nanosecond.
            request_timeout: Some(Duration::from_nanos(1)),
            ..ServerConfig::default()
        });
        let resp = request(&server.addr().to_string(), "POST", "/v1/solve", Some("{}")).unwrap();
        assert_eq!(resp.status, 504);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(resp.body.contains("deadline"));
        assert!(
            server
                .metrics()
                .timeouts
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );
        server.shutdown().unwrap();
    }

    #[test]
    fn certain_chaos_faults_api_paths_but_not_probes() {
        let server = start_with(ServerConfig {
            workers: 2,
            chaos: Some(ChaosPolicy::seeded(1).faults(1.0)),
            ..ServerConfig::default()
        });
        let addr = server.addr();
        assert_eq!(get(addr, "/healthz").status, 200, "probes are exempt");
        assert_eq!(get(addr, "/statusz").status, 200);
        let resp = request(&addr.to_string(), "GET", "/v1/solvers", None).unwrap();
        assert_eq!(resp.status, 500);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(
            server
                .metrics()
                .chaos_faults
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );
        server.shutdown().unwrap();
    }

    #[test]
    fn out_of_range_chaos_policy_is_a_config_error() {
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            chaos: Some(ChaosPolicy::seeded(0).faults(1.5)),
            ..ServerConfig::default()
        };
        match Server::start(&config, ApiContext::new()) {
            Err(err) => assert!(matches!(err, ServeError::Config(_)), "{err}"),
            Ok(_) => panic!("out-of-range chaos probability was accepted"),
        }
    }

    #[test]
    fn pipelined_requests_answer_in_order_on_one_connection() {
        use std::io::{Read as _, Write as _};
        let server = start_with(ServerConfig {
            workers: 4,
            keep_alive: true,
            keep_alive_max_requests: 16,
            ..ServerConfig::default()
        });
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Write three requests back-to-back before reading anything;
        // the last one closes the connection.
        stream
            .write_all(
                b"GET /healthz HTTP/1.1\r\n\r\n\
                  GET /nope HTTP/1.1\r\n\r\n\
                  GET /statusz HTTP/1.1\r\nConnection: close\r\n\r\n",
            )
            .unwrap();
        let mut wire = Vec::new();
        stream.read_to_end(&mut wire).unwrap();
        let text = String::from_utf8_lossy(&wire);
        let statuses: Vec<&str> = text
            .split("HTTP/1.1 ")
            .skip(1)
            .map(|chunk| &chunk[..3])
            .collect();
        assert_eq!(statuses, ["200", "404", "200"], "{text}");
        assert!(
            text.rfind("Connection: close").unwrap() > text.rfind("HTTP/1.1 200").unwrap(),
            "final response closes: {text}"
        );
        server.shutdown().unwrap();
    }

    #[test]
    fn max_conns_overflow_is_rejected_with_503() {
        let server = start_with(ServerConfig {
            workers: 1,
            keep_alive: true,
            max_conns: 1,
            ..ServerConfig::default()
        });
        use std::io::Read as _;
        // Occupy the single slot with an idle keep-alive connection.
        let _held = std::net::TcpStream::connect(server.addr()).unwrap();
        // Give the reactor a beat to register it.
        std::thread::sleep(Duration::from_millis(50));
        let mut second = std::net::TcpStream::connect(server.addr()).unwrap();
        second
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        let mut wire = Vec::new();
        second.read_to_end(&mut wire).unwrap();
        let text = String::from_utf8_lossy(&wire);
        assert!(text.starts_with("HTTP/1.1 503"), "{text}");
        assert!(text.contains("Retry-After: 1"), "{text}");
        assert!(
            server
                .metrics()
                .rejected
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );
        server.shutdown().unwrap();
    }

    fn cached_context(dir: &std::path::Path) -> ApiContext {
        let mut api = ApiContext::new();
        api.store = Some(std::sync::Arc::new(
            wrsn_engine::ResultStore::open(dir).unwrap(),
        ));
        api
    }

    fn poll_job_until_done(addr: &str, id: u64) -> serde::Value {
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            assert!(std::time::Instant::now() < deadline, "job never finished");
            let resp = request(addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
            assert_eq!(resp.status, 200, "{}", resp.body);
            let v: serde::Value = serde_json::from_str(&resp.body).unwrap();
            match v.get("state").and_then(serde::Value::as_str) {
                Some("done") => break v,
                Some("running") => std::thread::sleep(Duration::from_millis(20)),
                other => panic!("unexpected job state {other:?}: {}", resp.body),
            }
        }
    }

    #[test]
    fn finished_jobs_survive_a_server_restart() {
        let dir = std::env::temp_dir().join("wrsn-serve-job-restart");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServerConfig::default()
        };
        let spec = "{\"instance\": {\"posts\": 5, \"nodes\": 12, \"field\": 150.0}, \"seeds\": 3}";
        let server = Server::start(&config, cached_context(&dir)).unwrap();
        let addr = server.addr().to_string();
        let resp = request(&addr, "POST", "/v1/jobs", Some(spec)).unwrap();
        assert_eq!(resp.status, 202, "{}", resp.body);
        let v: serde::Value = serde_json::from_str(&resp.body).unwrap();
        let id = v.get("id").and_then(serde::Value::as_u64).unwrap();
        let before = poll_job_until_done(&addr, id);
        server.shutdown().unwrap();
        // A fresh server over the same store remembers the finished job
        // from its journal, byte-identical report included.
        let server = Server::start(&config, cached_context(&dir)).unwrap();
        let addr = server.addr().to_string();
        let after = poll_job_until_done(&addr, id);
        assert_eq!(
            serde_json::to_string(before.get("report").unwrap()).unwrap(),
            serde_json::to_string(after.get("report").unwrap()).unwrap(),
            "restored report must be byte-identical"
        );
        assert_eq!(
            after.get("done").and_then(serde::Value::as_u64),
            Some(3),
            "restored terminal jobs report full progress"
        );
        // New submissions continue past the restored id.
        let resp = request(&addr, "POST", "/v1/jobs", Some(spec)).unwrap();
        let v: serde::Value = serde_json::from_str(&resp.body).unwrap();
        assert!(v.get("id").and_then(serde::Value::as_u64).unwrap() > id);
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn interrupted_jobs_resume_on_restart() {
        let dir = std::env::temp_dir().join("wrsn-serve-job-resume");
        let _ = std::fs::remove_dir_all(&dir);
        let jobs = dir.join("jobs");
        std::fs::create_dir_all(&jobs).unwrap();
        // A journal a crashed server would leave behind: submitted (and
        // acknowledged with a 202) but still running, no report yet.
        std::fs::write(
            jobs.join("job-00000007.json"),
            "{\"id\":7,\"state\":\"running\",\"total\":3,\"request\":             {\"instance\":{\"posts\":5,\"nodes\":12,\"field\":150.0},\"seeds\":3}}\n",
        )
        .unwrap();
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            ..ServerConfig::default()
        };
        let server = Server::start(&config, cached_context(&dir)).unwrap();
        let addr = server.addr().to_string();
        let v = poll_job_until_done(&addr, 7);
        assert!(v.get("report").is_some(), "resumed job produced a report");
        // The resumption is visible in the statusz io section.
        let resp = request(&addr, "GET", "/statusz", None).unwrap();
        let status: serde::Value = serde_json::from_str(&resp.body).unwrap();
        let io = status.get("io").expect("io section with a store");
        assert_eq!(
            io.get("jobs_resumed").and_then(serde::Value::as_u64),
            Some(1)
        );
        server.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn job_round_trip_submits_polls_and_streams_events() {
        let server = start(2, 8);
        let addr = server.addr().to_string();
        let spec = "{\"instance\": {\"posts\": 5, \"nodes\": 12, \"field\": 150.0}, \"seeds\": 3}";
        let resp = request(&addr, "POST", "/v1/jobs", Some(spec)).unwrap();
        assert_eq!(resp.status, 202, "{}", resp.body);
        let v: serde::Value = serde_json::from_str(&resp.body).unwrap();
        let id = v.get("id").and_then(serde::Value::as_u64).unwrap();
        assert_eq!(v.get("total").and_then(serde::Value::as_u64), Some(3));
        // Poll until done.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let report = loop {
            assert!(std::time::Instant::now() < deadline, "job never finished");
            let resp = request(&addr, "GET", &format!("/v1/jobs/{id}"), None).unwrap();
            assert_eq!(resp.status, 200);
            let v: serde::Value = serde_json::from_str(&resp.body).unwrap();
            match v.get("state").and_then(serde::Value::as_str) {
                Some("done") => break resp.body,
                Some("running") => std::thread::sleep(Duration::from_millis(20)),
                other => panic!("unexpected job state {other:?}: {}", resp.body),
            }
        };
        assert!(report.contains("\"report\""));
        // The event stream saw every seed, cursored from zero.
        let resp = request(&addr, "GET", &format!("/v1/jobs/{id}/events?since=0"), None).unwrap();
        assert_eq!(resp.status, 200);
        let v: serde::Value = serde_json::from_str(&resp.body).unwrap();
        let events = v.get("events").and_then(serde::Value::as_array).unwrap();
        assert_eq!(events.len(), 3, "{}", resp.body);
        assert_eq!(v.get("next").and_then(serde::Value::as_u64), Some(3));
        // Cursoring past the end returns an empty page.
        let resp = request(&addr, "GET", &format!("/v1/jobs/{id}/events?since=3"), None).unwrap();
        let v: serde::Value = serde_json::from_str(&resp.body).unwrap();
        let events = v.get("events").and_then(serde::Value::as_array).unwrap();
        assert!(events.is_empty());
        // Unknown ids and malformed ids are client errors.
        assert_eq!(
            request(&addr, "GET", "/v1/jobs/9999", None).unwrap().status,
            404
        );
        assert_eq!(
            request(&addr, "GET", "/v1/jobs/abc", None).unwrap().status,
            400
        );
        server.shutdown().unwrap();
    }
}

//! A matching minimal HTTP/1.1 client and the `loadgen` harness.
//!
//! The client speaks exactly the dialect the server emits:
//! `Content-Length` framing, with two connection styles — the one-shot
//! [`request`] (`Connection: close`, read to EOF) and the persistent
//! [`Connection`] (keep-alive, many requests per socket, optionally
//! pipelined). On top of the one-shot [`request`] sits
//! [`request_with_retry`]: a [`RetryPolicy`] with decorrelated-jitter
//! exponential backoff that honors `Retry-After`, and an optional
//! shared [`CircuitBreaker`] that stops hammering a failing server
//! (half-open probing brings it back).
//!
//! Two load harnesses report exact (not bucketed) p50/p95/p99
//! latencies plus throughput: [`loadgen`] fans one-shot requests
//! across threads (connect-per-request, the retry/chaos-era path),
//! while [`loadgen_keep_alive`] opens a fixed fleet of persistent
//! connections up front and drives them with pipelined batches — the
//! harness that exercises the reactor's concurrency and pipelining.
//! [`run_job`] drives the async job API end to end (submit → cursor
//! the event stream → fetch the final report).

use crate::ServeError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A response as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// The status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// The body as text.
    pub body: String,
}

impl ClientResponse {
    /// The first header named `name` (lowercase), if any.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Performs one request against `addr` (e.g. `127.0.0.1:7421`) and
/// reads the full response. `body` is sent as JSON when present.
///
/// # Errors
///
/// [`ServeError::Client`] on connect, write, read, or parse failure.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<ClientResponse, ServeError> {
    request_auth(addr, method, path, body, None)
}

/// [`request`] with an optional API key sent as
/// `Authorization: Bearer {key}` — how a tenant identifies itself to a
/// multi-tenant server.
///
/// # Errors
///
/// Same as [`request`].
pub fn request_auth(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    key: Option<&str>,
) -> Result<ClientResponse, ServeError> {
    request_raw(addr, method, path, body, &bearer_header(key))
}

/// [`request`] with arbitrary extra header lines — the cluster
/// forwarding path, which must tag requests with its loop-guard header
/// while passing the caller's `Authorization` through.
///
/// # Errors
///
/// Same as [`request`].
pub fn request_with_headers(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    extra: &[(&str, &str)],
) -> Result<ClientResponse, ServeError> {
    let mut lines = String::new();
    for (name, value) in extra {
        lines.push_str(&format!("{name}: {value}\r\n"));
    }
    request_raw(addr, method, path, body, &lines)
}

/// The shared one-shot request core: `extra` is zero or more complete
/// `Name: value\r\n` header lines.
fn request_raw(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    extra: &str,
) -> Result<ClientResponse, ServeError> {
    let client = |m: String| ServeError::Client(m);
    let mut stream =
        TcpStream::connect(addr).map_err(|e| client(format!("connect {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| client(format!("timeout: {e}")))?;
    let body = body.unwrap_or("");
    let text = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\n{extra}Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(text.as_bytes())
        .map_err(|e| client(format!("write: {e}")))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| client(format!("read: {e}")))?;
    parse_response(&raw).map_err(client)
}

/// The `Authorization` header line (with trailing CRLF) for an optional
/// API key; empty when no key is configured.
fn bearer_header(key: Option<&str>) -> String {
    match key {
        Some(key) => format!("Authorization: Bearer {key}\r\n"),
        None => String::new(),
    }
}

/// Parses a response head (status line + header lines, no trailing
/// blank line) into a status code and lowercased headers.
fn parse_response_head(head: &str) -> Result<(u16, Vec<(String, String)>), String> {
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok((status, headers))
}

fn parse_response(raw: &[u8]) -> Result<ClientResponse, String> {
    let text = String::from_utf8_lossy(raw);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(format!("no header/body separator in {} bytes", raw.len()));
    };
    let (status, headers) = parse_response_head(head)?;
    // A body shorter than its advertised Content-Length means the
    // server hung up mid-response; surface that as an error (and thus
    // retryable) instead of silently returning the stump.
    let advertised = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    if let Some(expected) = advertised {
        if body.len() < expected {
            return Err(format!(
                "truncated body: got {} of {expected} bytes",
                body.len()
            ));
        }
    }
    Ok(ClientResponse {
        status,
        headers,
        body: body.to_string(),
    })
}

/// Tries to lift one `Content-Length`-framed response off the front of
/// `buf`. Returns the response, how many bytes it consumed, and
/// whether the server announced `Connection: close` — or `None` when
/// the buffer does not yet hold a complete response.
fn try_parse_framed(buf: &[u8]) -> Result<Option<(ClientResponse, usize, bool)>, String> {
    let Some(head_end) = buf.windows(4).position(|w| w == b"\r\n\r\n") else {
        return Ok(None);
    };
    let head = String::from_utf8_lossy(&buf[..head_end]);
    let (status, headers) = parse_response_head(&head)?;
    let length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
        .unwrap_or(0);
    let total = head_end + 4 + length;
    if buf.len() < total {
        return Ok(None);
    }
    let body = String::from_utf8_lossy(&buf[head_end + 4..total]).into_owned();
    let close = headers
        .iter()
        .any(|(n, v)| n == "connection" && v.eq_ignore_ascii_case("close"));
    Ok(Some((
        ClientResponse {
            status,
            headers,
            body,
        },
        total,
        close,
    )))
}

/// A persistent keep-alive connection: many requests per socket, with
/// optional pipelining (several [`Connection::send`]s before the
/// matching [`Connection::recv`]s — the server answers strictly in
/// order).
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
    buf: Vec<u8>,
    closing: bool,
}

impl Connection {
    /// Opens a keep-alive connection to `addr`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Client`] on connect or socket-option failure.
    pub fn connect(addr: &str) -> Result<Self, ServeError> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| ServeError::Client(format!("connect {addr}: {e}")))?;
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .map_err(|e| ServeError::Client(format!("timeout: {e}")))?;
        // Pipelined batches are small writes; don't let Nagle pace them.
        let _ = stream.set_nodelay(true);
        Ok(Connection {
            stream,
            buf: Vec::new(),
            closing: false,
        })
    }

    /// Writes one request without waiting for the response. Call
    /// repeatedly to pipeline; collect answers with [`Connection::recv`]
    /// in the same order.
    ///
    /// # Errors
    ///
    /// [`ServeError::Client`] on write failure.
    pub fn send(&mut self, method: &str, path: &str, body: Option<&str>) -> Result<(), ServeError> {
        self.send_auth(method, path, body, None)
    }

    /// [`Connection::send`] with an optional API key sent as
    /// `Authorization: Bearer {key}`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Client`] on write failure.
    pub fn send_auth(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        key: Option<&str>,
    ) -> Result<(), ServeError> {
        let body = body.unwrap_or("");
        let auth = bearer_header(key);
        let text = format!(
            "{method} {path} HTTP/1.1\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n{auth}\r\n{body}",
            body.len()
        );
        self.stream
            .write_all(text.as_bytes())
            .map_err(|e| ServeError::Client(format!("write: {e}")))
    }

    /// Reads the next in-order response, blocking until its
    /// `Content-Length`-framed body is complete.
    ///
    /// # Errors
    ///
    /// [`ServeError::Client`] on read failure, malformed framing, or
    /// EOF mid-response.
    pub fn recv(&mut self) -> Result<ClientResponse, ServeError> {
        loop {
            match try_parse_framed(&self.buf).map_err(ServeError::Client)? {
                Some((resp, used, close)) => {
                    self.buf.drain(..used);
                    self.closing |= close;
                    return Ok(resp);
                }
                None => {
                    let mut chunk = [0u8; 8192];
                    let n = self
                        .stream
                        .read(&mut chunk)
                        .map_err(|e| ServeError::Client(format!("read: {e}")))?;
                    if n == 0 {
                        return Err(ServeError::Client(format!(
                            "connection closed with {} buffered bytes and no complete response",
                            self.buf.len()
                        )));
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                }
            }
        }
    }

    /// One request–response round trip on this connection.
    ///
    /// # Errors
    ///
    /// [`ServeError::Client`] on write, read, or parse failure.
    pub fn roundtrip(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> Result<ClientResponse, ServeError> {
        self.send(method, path, body)?;
        self.recv()
    }

    /// Whether the server announced `Connection: close` on a response
    /// already received — the caller should reconnect before sending
    /// more.
    #[must_use]
    pub fn server_will_close(&self) -> bool {
        self.closing
    }
}

/// How [`request_with_retry`] paces its attempts and when its breaker
/// trips.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Extra attempts after the first (0 = behave like [`request`]).
    pub max_retries: u32,
    /// Minimum backoff between attempts.
    pub base: Duration,
    /// Ceiling on any single backoff sleep (also clamps `Retry-After`).
    pub cap: Duration,
    /// Seed for the jitter stream (loadgen derives one per thread).
    pub seed: u64,
    /// Consecutive failures that open the circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker blocks before half-open probing.
    pub breaker_cooldown: Duration,
}

impl Default for RetryPolicy {
    /// Six retries, 10 ms–2 s decorrelated-jitter backoff, breaker at
    /// five consecutive failures with a 200 ms cooldown.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 6,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(2),
            seed: 0,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// The same policy with a different jitter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Statuses worth retrying: the server (or an intermediary) says "not
/// now", not "never".
#[must_use]
pub fn retryable_status(status: u16) -> bool {
    matches!(status, 429 | 500 | 502 | 503 | 504)
}

/// Decorrelated jitter (the AWS architecture-blog variant):
/// `sleep = min(cap, uniform(base, prev * 3))`. Grows roughly
/// exponentially while decorrelating concurrent clients.
fn next_backoff(rng: &mut SmallRng, base: Duration, cap: Duration, prev: Duration) -> Duration {
    let lo = base.as_secs_f64();
    let hi = (prev.as_secs_f64() * 3.0).max(lo);
    let chosen = if hi > lo {
        rng.random_range(lo..hi)
    } else {
        lo
    };
    Duration::from_secs_f64(chosen.min(cap.as_secs_f64()))
}

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests are blocked until the cooldown elapses.
    Open,
    /// One probe request is in flight; its outcome decides.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    opens: u64,
}

/// A half-open circuit breaker shared by a client fleet: after
/// `threshold` consecutive failures it opens and blocks everyone for
/// `cooldown`, then admits exactly one probe; the probe's success
/// closes it, its failure re-opens it.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive
    /// failures, cooling down for `cooldown` before probing.
    #[must_use]
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                opens: 0,
            }),
        }
    }

    /// A breaker configured from a [`RetryPolicy`].
    #[must_use]
    pub fn from_policy(policy: &RetryPolicy) -> Self {
        CircuitBreaker::new(policy.breaker_threshold, policy.breaker_cooldown)
    }

    /// The current state (transitions Open → HalfOpen are made by
    /// [`CircuitBreaker::try_acquire`], not by the clock alone).
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .state
    }

    /// How many times the breaker has opened.
    #[must_use]
    pub fn opens(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .opens
    }

    /// Whether a request may proceed right now. While open, returns
    /// `false` until the cooldown elapses, then admits a single
    /// half-open probe (subsequent callers keep getting `false` until
    /// the probe reports back).
    #[must_use]
    pub fn try_acquire(&self) -> bool {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .is_some_and(|at| at.elapsed() >= self.cooldown);
                if cooled {
                    inner.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Reports a successful request: closes the breaker and resets the
    /// failure streak.
    pub fn record_success(&self) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.opened_at = None;
    }

    /// Reports a failed request: a failed half-open probe re-opens the
    /// breaker immediately; in the closed state the failure streak
    /// opens it at the threshold.
    pub fn record_failure(&self) {
        let mut inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let trip = match inner.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => inner.consecutive_failures >= self.threshold,
            BreakerState::Open => false,
        };
        if trip {
            inner.state = BreakerState::Open;
            inner.opened_at = Some(Instant::now());
            inner.opens += 1;
        }
    }
}

/// What [`request_with_retry`] went through to get its response.
#[derive(Debug, Clone)]
pub struct RetryOutcome {
    /// The final response (its status may still be non-200 if the
    /// retry budget ran out on a retryable status).
    pub response: ClientResponse,
    /// Attempts beyond the first.
    pub retries: u64,
    /// Retryable statuses observed along the way (429/5xx).
    pub retryable_status: u64,
    /// Rate-limit rejections (`429`) observed along the way — its own
    /// bucket so throttling is distinguishable from overload `503`s.
    pub rate_limited: u64,
    /// Retryable statuses observed along the way, broken down by status
    /// code (sorted by status).
    pub retries_by_status: Vec<(u16, u64)>,
    /// Transport-level failures observed along the way (connection
    /// reset, truncated response, refused connect).
    pub transport_resets: u64,
}

/// Bumps `status`'s counter in a sorted `(status, count)` list.
fn bump_status(list: &mut Vec<(u16, u64)>, status: u16) {
    match list.binary_search_by_key(&status, |&(s, _)| s) {
        Ok(i) => list[i].1 += 1,
        Err(i) => list.insert(i, (status, 1)),
    }
}

/// Folds `from` into `into`, summing counts per status.
fn merge_status(into: &mut Vec<(u16, u64)>, from: &[(u16, u64)]) {
    for &(status, count) in from {
        match into.binary_search_by_key(&status, |&(s, _)| s) {
            Ok(i) => into[i].1 += count,
            Err(i) => into.insert(i, (status, count)),
        }
    }
}

/// [`request`] wrapped in retries with decorrelated-jitter backoff.
///
/// Transport errors and retryable statuses (429/500/502/503/504) are
/// retried up to `policy.max_retries` times; a `Retry-After` header is
/// honored (clamped to `[base, cap]`). When a shared `breaker` is
/// given, every attempt first acquires it, successes and failures feed
/// it, and open periods are waited out without consuming retries.
///
/// # Errors
///
/// [`ServeError::Client`] when the final attempt still failed at the
/// transport level. A non-200 final status is returned as an outcome,
/// not an error.
pub fn request_with_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
    breaker: Option<&CircuitBreaker>,
) -> Result<RetryOutcome, ServeError> {
    request_with_retry_auth(addr, method, path, body, None, policy, breaker)
}

/// [`request_with_retry`] with an optional API key sent as
/// `Authorization: Bearer {key}` on every attempt.
///
/// # Errors
///
/// Same as [`request_with_retry`].
pub fn request_with_retry_auth(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    key: Option<&str>,
    policy: &RetryPolicy,
    breaker: Option<&CircuitBreaker>,
) -> Result<RetryOutcome, ServeError> {
    retry_via(policy, breaker, || {
        request_auth(addr, method, path, body, key)
    })
}

/// [`request_with_retry`] sending arbitrary extra headers on every
/// attempt (see [`request_with_headers`]).
///
/// # Errors
///
/// Same as [`request_with_retry`].
pub fn request_with_retry_headers(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    extra: &[(&str, &str)],
    policy: &RetryPolicy,
    breaker: Option<&CircuitBreaker>,
) -> Result<RetryOutcome, ServeError> {
    retry_via(policy, breaker, || {
        request_with_headers(addr, method, path, body, extra)
    })
}

/// The shared retry loop: backoff, `Retry-After`, and breaker wiring
/// around any one-shot request closure.
fn retry_via(
    policy: &RetryPolicy,
    breaker: Option<&CircuitBreaker>,
    attempt: impl Fn() -> Result<ClientResponse, ServeError>,
) -> Result<RetryOutcome, ServeError> {
    let mut rng = SmallRng::seed_from_u64(policy.seed);
    let mut prev = policy.base;
    let mut outcome = RetryOutcome {
        response: ClientResponse {
            status: 0,
            headers: Vec::new(),
            body: String::new(),
        },
        retries: 0,
        retryable_status: 0,
        rate_limited: 0,
        retries_by_status: Vec::new(),
        transport_resets: 0,
    };
    let mut attempts = 0u32;
    loop {
        if let Some(b) = breaker {
            // An open breaker means *wait*, not *fail*: these sleeps
            // are bounded by the cooldown and consume no retry budget.
            while !b.try_acquire() {
                std::thread::sleep(
                    policy
                        .breaker_cooldown
                        .max(Duration::from_millis(1))
                        .min(Duration::from_millis(20)),
                );
            }
        }
        let result = attempt();
        let retry_after = match &result {
            Ok(resp) if !retryable_status(resp.status) => {
                if let Some(b) = breaker {
                    b.record_success();
                }
                outcome.response = resp.clone();
                return Ok(outcome);
            }
            Ok(resp) => {
                outcome.retryable_status += 1;
                if resp.status == 429 {
                    outcome.rate_limited += 1;
                }
                bump_status(&mut outcome.retries_by_status, resp.status);
                resp.header("retry-after")
                    .and_then(|v| v.parse::<u64>().ok())
                    .map(Duration::from_secs)
            }
            Err(_) => {
                outcome.transport_resets += 1;
                None
            }
        };
        if let Some(b) = breaker {
            b.record_failure();
        }
        if attempts >= policy.max_retries {
            return match result {
                Ok(resp) => {
                    outcome.response = resp;
                    Ok(outcome)
                }
                Err(e) => Err(e),
            };
        }
        attempts += 1;
        outcome.retries += 1;
        let sleep = match retry_after {
            // The server named a pause; respect it within our bounds.
            Some(after) => after.max(policy.base).min(policy.cap),
            None => {
                prev = next_backoff(&mut rng, policy.base, policy.cap, prev);
                prev
            }
        };
        std::thread::sleep(sleep);
    }
}

/// What one loadgen run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests that completed with status 200 (eventually, when
    /// retries are enabled).
    pub ok: u64,
    /// Requests whose *final* status was not 200.
    pub non_ok: u64,
    /// Requests that terminally failed at the transport level.
    pub errors: u64,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Sorted per-request latencies (successful requests only).
    pub latencies: Vec<Duration>,
    /// Retry attempts spent across all requests (zero without a retry
    /// policy).
    pub retries: u64,
    /// Retryable statuses (429/5xx, e.g. a 503 + `Retry-After`)
    /// observed along the way — distinguishable from transport resets
    /// so retry behavior is measurable.
    pub retryable_status: u64,
    /// Rate-limit rejections (`429`) observed along the way — its own
    /// bucket so a throttled tenant can see exactly how often the
    /// server pushed back, separately from overload `503`s.
    pub rate_limited: u64,
    /// Retryable statuses observed along the way broken down by status
    /// code (sorted by status) — e.g. `[(429, 31), (503, 4)]`.
    pub retries_by_status: Vec<(u16, u64)>,
    /// Transport-level failures (connection reset, truncated response)
    /// observed along the way, whether or not a retry recovered them.
    pub transport_resets: u64,
    /// Times the shared circuit breaker opened during the run.
    pub breaker_opens: u64,
    /// Concurrent connections the run held open: the thread count for
    /// the connect-per-request [`loadgen`], the socket-fleet size for
    /// [`loadgen_keep_alive`].
    pub connections: usize,
}

impl LoadgenReport {
    /// Completed requests (any status) per wall-clock second.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        let total = (self.ok + self.non_ok) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            total / secs
        } else {
            0.0
        }
    }

    /// The exact `q`-quantile latency from the sorted samples.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank =
            ((q * self.latencies.len() as f64).ceil() as usize).clamp(1, self.latencies.len());
        self.latencies[rank - 1]
    }
}

/// What one loadgen worker thread tallied.
#[derive(Debug, Default)]
struct ThreadTally {
    ok: u64,
    non_ok: u64,
    errors: u64,
    retries: u64,
    retryable_status: u64,
    rate_limited: u64,
    retries_by_status: Vec<(u16, u64)>,
    transport_resets: u64,
    latencies: Vec<Duration>,
}

/// Fans `requests` identical (`method`, `path`, `body`) requests over
/// `concurrency` threads against `addr` and collects latencies. With a
/// [`RetryPolicy`], every request retries through a fleet-shared
/// [`CircuitBreaker`] (per-thread jitter seeds are derived from the
/// policy's), and the report carries the chaos-era counters.
///
/// # Errors
///
/// [`ServeError::Client`] only when the very first probe request fails
/// — a dead server fails fast instead of producing a report of pure
/// errors. Individual failures during the run are counted, not fatal.
pub fn loadgen(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    concurrency: usize,
    requests: u64,
    retry: Option<&RetryPolicy>,
) -> Result<LoadgenReport, ServeError> {
    loadgen_auth(addr, method, path, body, None, concurrency, requests, retry)
}

/// [`loadgen`] with an optional API key sent as
/// `Authorization: Bearer {key}` on every request — the harness for
/// driving one tenant's share of a multi-tenant server.
///
/// # Errors
///
/// Same as [`loadgen`].
#[allow(clippy::too_many_arguments)]
pub fn loadgen_auth(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    key: Option<&str>,
    concurrency: usize,
    requests: u64,
    retry: Option<&RetryPolicy>,
) -> Result<LoadgenReport, ServeError> {
    let breaker = retry.map(CircuitBreaker::from_policy);
    // Probe first so misconfiguration is an error, not a zero report
    // (under chaos the probe itself retries, so an injected fault
    // cannot fail an otherwise healthy run).
    match retry {
        Some(policy) => {
            request_with_retry_auth(addr, method, path, body, key, policy, breaker.as_ref())?;
        }
        None => {
            request_auth(addr, method, path, body, key)?;
        }
    }
    let concurrency = concurrency.max(1);
    let per_thread = requests / concurrency as u64;
    let remainder = requests % concurrency as u64;
    let started = Instant::now();
    let breaker_ref = breaker.as_ref();
    let results: Vec<ThreadTally> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(concurrency);
        for t in 0..concurrency {
            let quota = per_thread + u64::from((t as u64) < remainder);
            handles.push(scope.spawn(move || {
                let mut tally = ThreadTally {
                    latencies: Vec::with_capacity(quota as usize),
                    ..ThreadTally::default()
                };
                // Decorrelate threads without sharing rng state.
                let policy = retry.map(|p| {
                    p.clone()
                        .with_seed(p.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                });
                for _ in 0..quota {
                    let t0 = Instant::now();
                    match &policy {
                        Some(policy) => {
                            match request_with_retry_auth(
                                addr,
                                method,
                                path,
                                body,
                                key,
                                policy,
                                breaker_ref,
                            ) {
                                Ok(outcome) => {
                                    tally.retries += outcome.retries;
                                    tally.retryable_status += outcome.retryable_status;
                                    tally.rate_limited += outcome.rate_limited;
                                    merge_status(
                                        &mut tally.retries_by_status,
                                        &outcome.retries_by_status,
                                    );
                                    tally.transport_resets += outcome.transport_resets;
                                    if outcome.response.status == 200 {
                                        tally.ok += 1;
                                        tally.latencies.push(t0.elapsed());
                                    } else {
                                        tally.non_ok += 1;
                                    }
                                }
                                Err(_) => tally.errors += 1,
                            }
                        }
                        None => match request_auth(addr, method, path, body, key) {
                            Ok(resp) if resp.status == 200 => {
                                tally.ok += 1;
                                tally.latencies.push(t0.elapsed());
                            }
                            Ok(resp) => {
                                // Distinguish "back off and retry"
                                // (e.g. admission-control 503s) from
                                // terminal statuses.
                                if retryable_status(resp.status) {
                                    tally.retryable_status += 1;
                                    bump_status(&mut tally.retries_by_status, resp.status);
                                }
                                if resp.status == 429 {
                                    tally.rate_limited += 1;
                                }
                                tally.non_ok += 1;
                            }
                            Err(_) => {
                                tally.transport_resets += 1;
                                tally.errors += 1;
                            }
                        },
                    }
                }
                tally
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    let mut report = LoadgenReport {
        ok: 0,
        non_ok: 0,
        errors: 0,
        elapsed,
        latencies: Vec::new(),
        retries: 0,
        retryable_status: 0,
        rate_limited: 0,
        retries_by_status: Vec::new(),
        transport_resets: 0,
        breaker_opens: breaker.as_ref().map_or(0, CircuitBreaker::opens),
        connections: concurrency,
    };
    for tally in results {
        report.ok += tally.ok;
        report.non_ok += tally.non_ok;
        report.errors += tally.errors;
        report.retries += tally.retries;
        report.retryable_status += tally.retryable_status;
        report.rate_limited += tally.rate_limited;
        merge_status(&mut report.retries_by_status, &tally.retries_by_status);
        report.transport_resets += tally.transport_resets;
        report.latencies.extend(tally.latencies);
    }
    report.latencies.sort_unstable();
    Ok(report)
}

/// The one request a load run repeats: where to send it and what it
/// says.
#[derive(Clone, Copy)]
struct RequestSpec<'a> {
    addr: &'a str,
    method: &'a str,
    path: &'a str,
    body: Option<&'a str>,
    key: Option<&'a str>,
}

/// Drives one persistent connection through its request quota in
/// pipelined batches, reconnecting when the server closes it (e.g. at
/// its per-connection request cap).
fn drive_connection(
    spec: RequestSpec<'_>,
    mut conn: Connection,
    quota: u64,
    pipeline: usize,
    tally: &mut ThreadTally,
) {
    let mut remaining = quota;
    let mut retried_stale = false;
    while remaining > 0 {
        let batch = (pipeline as u64).min(remaining);
        let t0 = Instant::now();
        let mut sent = 0u64;
        for _ in 0..batch {
            if conn
                .send_auth(spec.method, spec.path, spec.body, spec.key)
                .is_err()
            {
                break;
            }
            sent += 1;
        }
        let mut received = 0u64;
        let mut broken = sent < batch;
        for _ in 0..sent {
            match conn.recv() {
                Ok(resp) => {
                    received += 1;
                    if resp.status == 200 {
                        tally.ok += 1;
                        // Batch-relative latency: later responses in a
                        // deep pipeline carry their queueing delay.
                        tally.latencies.push(t0.elapsed());
                    } else {
                        if retryable_status(resp.status) {
                            tally.retryable_status += 1;
                            bump_status(&mut tally.retries_by_status, resp.status);
                        }
                        if resp.status == 429 {
                            tally.rate_limited += 1;
                        }
                        tally.non_ok += 1;
                    }
                }
                Err(_) => {
                    broken = true;
                    break;
                }
            }
        }
        if broken && received == 0 && !retried_stale {
            // Stale keep-alive connection: the server closed it while
            // it sat idle (keep-alive idle timeout, max-requests cap)
            // and nothing came back. Standard client behavior is to
            // retry the batch once on a fresh socket — the requests
            // were never processed, so nothing is double-counted.
            tally.transport_resets += 1;
            match Connection::connect(spec.addr) {
                Ok(fresh) => {
                    conn = fresh;
                    retried_stale = true;
                    continue;
                }
                Err(_) => {
                    tally.errors += remaining;
                    return;
                }
            }
        }
        retried_stale = false;
        let unanswered = batch - received;
        if unanswered > 0 {
            tally.errors += unanswered;
            tally.transport_resets += 1;
        }
        remaining -= batch;
        if broken || conn.server_will_close() {
            match Connection::connect(spec.addr) {
                Ok(fresh) => conn = fresh,
                Err(_) => {
                    tally.errors += remaining;
                    tally.transport_resets += 1;
                    return;
                }
            }
        }
    }
}

/// Fans `requests` identical requests over a fleet of `connections`
/// persistent keep-alive connections, `pipeline` requests per write
/// batch. Every socket is opened before the clock starts, so the
/// server demonstrably holds the whole fleet concurrently; the fleet
/// is then spread over up to `available_parallelism` driver threads.
///
/// # Errors
///
/// [`ServeError::Client`] when the initial probe request fails or any
/// of the fleet's sockets cannot be opened — a dead or conn-capped
/// server fails fast. Failures during the run are counted, not fatal.
pub fn loadgen_keep_alive(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    connections: usize,
    requests: u64,
    pipeline: usize,
) -> Result<LoadgenReport, ServeError> {
    loadgen_keep_alive_auth(
        addr,
        method,
        path,
        body,
        None,
        connections,
        requests,
        pipeline,
    )
}

/// [`loadgen_keep_alive`] with an optional API key sent as
/// `Authorization: Bearer {key}` on every request.
///
/// # Errors
///
/// Same as [`loadgen_keep_alive`].
#[allow(clippy::too_many_arguments)]
pub fn loadgen_keep_alive_auth(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    key: Option<&str>,
    connections: usize,
    requests: u64,
    pipeline: usize,
) -> Result<LoadgenReport, ServeError> {
    let connections = connections.max(1);
    let pipeline = pipeline.max(1);
    let spec = RequestSpec {
        addr,
        method,
        path,
        body,
        key,
    };
    // Probe first so misconfiguration is an error, not a zero report.
    request_auth(addr, method, path, body, key)?;
    let per_conn = requests / connections as u64;
    let remainder = requests % connections as u64;
    let mut fleet: Vec<(Connection, u64)> = Vec::with_capacity(connections);
    for c in 0..connections {
        let quota = per_conn + u64::from((c as u64) < remainder);
        fleet.push((Connection::connect(addr)?, quota));
    }
    let threads = std::thread::available_parallelism()
        .map_or(8, std::num::NonZeroUsize::get)
        .min(connections);
    // Deal the fleet round-robin so quota remainders spread evenly.
    let mut groups: Vec<Vec<(Connection, u64)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, pair) in fleet.into_iter().enumerate() {
        groups[i % threads].push(pair);
    }
    let started = Instant::now();
    let results: Vec<ThreadTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = groups
            .into_iter()
            .map(|group| {
                scope.spawn(move || {
                    let mut tally = ThreadTally::default();
                    for (conn, quota) in group {
                        drive_connection(spec, conn, quota, pipeline, &mut tally);
                    }
                    tally
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    let mut report = LoadgenReport {
        ok: 0,
        non_ok: 0,
        errors: 0,
        elapsed,
        latencies: Vec::new(),
        retries: 0,
        retryable_status: 0,
        rate_limited: 0,
        retries_by_status: Vec::new(),
        transport_resets: 0,
        breaker_opens: 0,
        connections,
    };
    for tally in results {
        report.ok += tally.ok;
        report.non_ok += tally.non_ok;
        report.errors += tally.errors;
        report.retryable_status += tally.retryable_status;
        report.rate_limited += tally.rate_limited;
        merge_status(&mut report.retries_by_status, &tally.retries_by_status);
        report.transport_resets += tally.transport_resets;
        report.latencies.extend(tally.latencies);
    }
    report.latencies.sort_unstable();
    Ok(report)
}

/// What one async job round trip produced.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The server-assigned job id.
    pub id: u64,
    /// Terminal state: `"done"` or `"failed"`.
    pub state: String,
    /// Progress events collected from the cursor stream.
    pub events: Vec<serde::Value>,
    /// The final `GET /v1/jobs/{id}` body — carries the full sweep
    /// report (byte-identical to `/v1/sweep`) under `"report"` when
    /// the job succeeded.
    pub final_body: String,
}

/// Submits `spec` to `POST /v1/jobs` and follows the job to its
/// terminal state: cursors `GET /v1/jobs/{id}/events` until the state
/// leaves `"running"`, then fetches the final poll body.
///
/// # Errors
///
/// [`ServeError::Client`] on transport failure, a non-202 submit, a
/// malformed body, or when the job outlives `deadline`.
pub fn run_job(
    addr: &str,
    spec: Option<&str>,
    poll_every: Duration,
    deadline: Duration,
) -> Result<JobOutcome, ServeError> {
    let submitted = request(addr, "POST", "/v1/jobs", spec)?;
    if submitted.status != 202 {
        return Err(ServeError::Client(format!(
            "job submit: status {} body {}",
            submitted.status, submitted.body
        )));
    }
    let parsed: serde::Value = serde_json::from_str(&submitted.body)
        .map_err(|e| ServeError::Client(format!("job submit body: {e}")))?;
    let id = parsed
        .get("id")
        .and_then(serde::Value::as_u64)
        .ok_or_else(|| ServeError::Client(format!("no job id in {}", submitted.body)))?;
    let started = Instant::now();
    let mut cursor = 0u64;
    let mut events: Vec<serde::Value> = Vec::new();
    let state = loop {
        let resp = request(
            addr,
            "GET",
            &format!("/v1/jobs/{id}/events?since={cursor}"),
            None,
        )?;
        let page: serde::Value = serde_json::from_str(&resp.body)
            .map_err(|e| ServeError::Client(format!("job events body: {e}")))?;
        if let Some(serde::Value::Array(batch)) = page.get("events") {
            events.extend(batch.iter().cloned());
        }
        cursor = page
            .get("next")
            .and_then(serde::Value::as_u64)
            .unwrap_or(cursor);
        let state = page
            .get("state")
            .and_then(serde::Value::as_str)
            .unwrap_or("running")
            .to_string();
        if state != "running" {
            break state;
        }
        if started.elapsed() > deadline {
            return Err(ServeError::Client(format!(
                "job {id} still running after {deadline:?}"
            )));
        }
        std::thread::sleep(poll_every);
    };
    let final_poll = request(addr, "GET", &format!("/v1/jobs/{id}"), None)?;
    Ok(JobOutcome {
        id,
        state,
        events,
        final_body: final_poll.body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\n\r\n{\"error\":\"busy\"}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(resp.body.contains("busy"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }

    fn empty_report(latencies: Vec<Duration>, elapsed: Duration) -> LoadgenReport {
        LoadgenReport {
            ok: 0,
            non_ok: 0,
            errors: 0,
            elapsed,
            latencies,
            retries: 0,
            retryable_status: 0,
            rate_limited: 0,
            retries_by_status: Vec::new(),
            transport_resets: 0,
            breaker_opens: 0,
            connections: 0,
        }
    }

    #[test]
    fn quantiles_are_exact_order_statistics() {
        let mut latencies: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        latencies.sort_unstable();
        let report = LoadgenReport {
            ok: 100,
            ..empty_report(latencies, Duration::from_secs(1))
        };
        assert_eq!(report.quantile(0.50), Duration::from_millis(50));
        assert_eq!(report.quantile(0.95), Duration::from_millis(95));
        assert_eq!(report.quantile(0.99), Duration::from_millis(99));
        assert!((report.throughput_rps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_safe() {
        let report = empty_report(Vec::new(), Duration::ZERO);
        assert_eq!(report.quantile(0.5), Duration::ZERO);
        assert_eq!(report.throughput_rps(), 0.0);
    }

    #[test]
    fn request_against_a_dead_port_errors() {
        // Port 9 (discard) is almost certainly closed in the test
        // environment; a refused connection must surface as Client.
        let err = request("127.0.0.1:9", "GET", "/healthz", None).unwrap_err();
        assert!(matches!(err, ServeError::Client(_)));
    }

    #[test]
    fn truncated_body_is_a_parse_error() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 20\r\n\r\n{\"cut\":";
        let err = parse_response(raw).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        // An exact-length body still parses.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n{}";
        assert_eq!(parse_response(raw).unwrap().body, "{}");
    }

    #[test]
    fn retryable_statuses_are_the_not_now_codes() {
        for code in [429, 500, 502, 503, 504] {
            assert!(retryable_status(code), "{code}");
        }
        for code in [200, 400, 404, 405, 413] {
            assert!(!retryable_status(code), "{code}");
        }
    }

    #[test]
    fn backoff_grows_within_bounds_and_respects_the_cap() {
        let mut rng = SmallRng::seed_from_u64(5);
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        let mut prev = base;
        for _ in 0..50 {
            let next = next_backoff(&mut rng, base, cap, prev);
            assert!(next >= base, "{next:?} below base");
            assert!(next <= cap, "{next:?} above cap");
            prev = next;
        }
        // Degenerate case: prev * 3 == base (empty jitter range).
        let next = next_backoff(&mut rng, base, cap, Duration::ZERO);
        assert_eq!(next, base);
    }

    #[test]
    fn breaker_opens_half_opens_and_recloses() {
        let cooldown = Duration::from_millis(10);
        let breaker = CircuitBreaker::new(3, cooldown);
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.try_acquire());

        // Three consecutive failures trip it open.
        breaker.record_failure();
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Closed);
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.opens(), 1);
        assert!(!breaker.try_acquire(), "open breaker blocks immediately");

        // After the cooldown exactly one probe gets through.
        std::thread::sleep(cooldown + Duration::from_millis(5));
        assert!(breaker.try_acquire(), "cooldown elapsed: probe admitted");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(!breaker.try_acquire(), "only one probe at a time");

        // A failed probe re-opens; a successful one closes for good.
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.opens(), 2);
        std::thread::sleep(cooldown + Duration::from_millis(5));
        assert!(breaker.try_acquire());
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.try_acquire());
        assert_eq!(breaker.opens(), 2, "success does not add an open");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let breaker = CircuitBreaker::new(3, Duration::from_millis(1));
        breaker.record_failure();
        breaker.record_failure();
        breaker.record_success();
        breaker.record_failure();
        breaker.record_failure();
        assert_eq!(
            breaker.state(),
            BreakerState::Closed,
            "interleaved successes keep the streak below threshold"
        );
    }

    #[test]
    fn framed_parser_waits_for_complete_responses() {
        // No header/body separator yet.
        assert!(try_parse_framed(b"HTTP/1.1 200 OK\r\n").unwrap().is_none());
        // Head complete, body still short.
        let partial = b"HTTP/1.1 200 OK\r\nContent-Length: 5\r\n\r\nab";
        assert!(try_parse_framed(partial).unwrap().is_none());
        // Complete response followed by the start of the next one.
        let mut raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n{}".to_vec();
        raw.extend_from_slice(b"HTTP/1.1 404 Not Found\r\n");
        let (resp, used, close) = try_parse_framed(&raw).unwrap().unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "{}");
        assert_eq!(used, raw.len() - b"HTTP/1.1 404 Not Found\r\n".len());
        assert!(!close);
        // Connection: close is surfaced.
        let closing = b"HTTP/1.1 200 OK\r\nConnection: close\r\nContent-Length: 0\r\n\r\n";
        let (_, _, close) = try_parse_framed(closing).unwrap().unwrap();
        assert!(close);
    }

    #[test]
    fn keep_alive_connection_pipelines_and_reuses_the_socket() {
        let server = crate::Server::start(
            &crate::ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                queue_depth: 8,
                keep_alive: true,
                keep_alive_max_requests: 64,
                ..crate::ServerConfig::default()
            },
            crate::api::ApiContext::new(),
        )
        .unwrap();
        let addr = server.addr().to_string();
        let mut conn = Connection::connect(&addr).unwrap();
        // Sequential reuse.
        for _ in 0..3 {
            let resp = conn.roundtrip("GET", "/healthz", None).unwrap();
            assert_eq!(resp.status, 200);
        }
        // Pipelined batch: three sends, then three in-order receives.
        conn.send("GET", "/healthz", None).unwrap();
        conn.send("GET", "/nope", None).unwrap();
        conn.send("GET", "/v1/solvers", None).unwrap();
        assert_eq!(conn.recv().unwrap().status, 200);
        assert_eq!(conn.recv().unwrap().status, 404);
        let solvers = conn.recv().unwrap();
        assert_eq!(solvers.status, 200);
        assert!(solvers.body.contains("rfh"), "{}", solvers.body);
        assert!(!conn.server_will_close());
        server.shutdown().unwrap();
    }

    #[test]
    fn keep_alive_loadgen_spreads_quota_over_the_fleet() {
        let server = crate::Server::start(
            &crate::ServerConfig {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                queue_depth: 32,
                keep_alive: true,
                keep_alive_max_requests: 64,
                ..crate::ServerConfig::default()
            },
            crate::api::ApiContext::new(),
        )
        .unwrap();
        let addr = server.addr().to_string();
        let report = loadgen_keep_alive(&addr, "GET", "/healthz", None, 4, 40, 3).unwrap();
        assert_eq!(
            report.ok, 40,
            "errors={} non_ok={}",
            report.errors, report.non_ok
        );
        assert_eq!(report.connections, 4);
        assert_eq!(report.latencies.len(), 40);
        server.shutdown().unwrap();
    }

    #[test]
    fn retry_against_a_dead_port_spends_its_budget_then_errors() {
        let policy = RetryPolicy {
            max_retries: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            ..RetryPolicy::default()
        };
        let err =
            request_with_retry("127.0.0.1:9", "GET", "/healthz", None, &policy, None).unwrap_err();
        assert!(matches!(err, ServeError::Client(_)));
    }
}

//! A matching minimal HTTP/1.1 client and the `loadgen` harness.
//!
//! The client speaks exactly the dialect the server emits: one request
//! per connection, `Content-Length` framing, `Connection: close`. On
//! top of the one-shot [`request`] sits [`request_with_retry`]: a
//! [`RetryPolicy`] with exponential backoff + decorrelated jitter that
//! honors `Retry-After`, and an optional shared [`CircuitBreaker`]
//! that stops hammering a failing server (half-open probing brings it
//! back). The loadgen fans identical requests across threads and
//! reports exact (not bucketed) p50/p95/p99 latencies plus throughput
//! and — under retries — the chaos-era counters (retries, retryable
//! 503s, transport resets, breaker opens).

use crate::ServeError;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// A response as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// The status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// The body as text.
    pub body: String,
}

impl ClientResponse {
    /// The first header named `name` (lowercase), if any.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Performs one request against `addr` (e.g. `127.0.0.1:7421`) and
/// reads the full response. `body` is sent as JSON when present.
///
/// # Errors
///
/// [`ServeError::Client`] on connect, write, read, or parse failure.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<ClientResponse, ServeError> {
    let client = |m: String| ServeError::Client(m);
    let mut stream =
        TcpStream::connect(addr).map_err(|e| client(format!("connect {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| client(format!("timeout: {e}")))?;
    let body = body.unwrap_or("");
    let text = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(text.as_bytes())
        .map_err(|e| client(format!("write: {e}")))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| client(format!("read: {e}")))?;
    parse_response(&raw).map_err(client)
}

fn parse_response(raw: &[u8]) -> Result<ClientResponse, String> {
    let text = String::from_utf8_lossy(raw);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(format!("no header/body separator in {} bytes", raw.len()));
    };
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    // A body shorter than its advertised Content-Length means the
    // server hung up mid-response; surface that as an error (and thus
    // retryable) instead of silently returning the stump.
    let advertised = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    if let Some(expected) = advertised {
        if body.len() < expected {
            return Err(format!(
                "truncated body: got {} of {expected} bytes",
                body.len()
            ));
        }
    }
    Ok(ClientResponse {
        status,
        headers,
        body: body.to_string(),
    })
}

/// How [`request_with_retry`] paces its attempts and when its breaker
/// trips.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Extra attempts after the first (0 = behave like [`request`]).
    pub max_retries: u32,
    /// Minimum backoff between attempts.
    pub base: Duration,
    /// Ceiling on any single backoff sleep (also clamps `Retry-After`).
    pub cap: Duration,
    /// Seed for the jitter stream (loadgen derives one per thread).
    pub seed: u64,
    /// Consecutive failures that open the circuit breaker.
    pub breaker_threshold: u32,
    /// How long an open breaker blocks before half-open probing.
    pub breaker_cooldown: Duration,
}

impl Default for RetryPolicy {
    /// Six retries, 10 ms–2 s decorrelated-jitter backoff, breaker at
    /// five consecutive failures with a 200 ms cooldown.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 6,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(2),
            seed: 0,
            breaker_threshold: 5,
            breaker_cooldown: Duration::from_millis(200),
        }
    }
}

impl RetryPolicy {
    /// The same policy with a different jitter seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Statuses worth retrying: the server (or an intermediary) says "not
/// now", not "never".
#[must_use]
pub fn retryable_status(status: u16) -> bool {
    matches!(status, 429 | 500 | 502 | 503 | 504)
}

/// Decorrelated jitter (the AWS architecture-blog variant):
/// `sleep = min(cap, uniform(base, prev * 3))`. Grows roughly
/// exponentially while decorrelating concurrent clients.
fn next_backoff(rng: &mut SmallRng, base: Duration, cap: Duration, prev: Duration) -> Duration {
    let lo = base.as_secs_f64();
    let hi = (prev.as_secs_f64() * 3.0).max(lo);
    let chosen = if hi > lo {
        rng.random_range(lo..hi)
    } else {
        lo
    };
    Duration::from_secs_f64(chosen.min(cap.as_secs_f64()))
}

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Requests flow normally.
    Closed,
    /// Requests are blocked until the cooldown elapses.
    Open,
    /// One probe request is in flight; its outcome decides.
    HalfOpen,
}

#[derive(Debug)]
struct BreakerInner {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
    opens: u64,
}

/// A half-open circuit breaker shared by a client fleet: after
/// `threshold` consecutive failures it opens and blocks everyone for
/// `cooldown`, then admits exactly one probe; the probe's success
/// closes it, its failure re-opens it.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown: Duration,
    inner: Mutex<BreakerInner>,
}

impl CircuitBreaker {
    /// A closed breaker tripping after `threshold` consecutive
    /// failures, cooling down for `cooldown` before probing.
    #[must_use]
    pub fn new(threshold: u32, cooldown: Duration) -> Self {
        CircuitBreaker {
            threshold: threshold.max(1),
            cooldown,
            inner: Mutex::new(BreakerInner {
                state: BreakerState::Closed,
                consecutive_failures: 0,
                opened_at: None,
                opens: 0,
            }),
        }
    }

    /// A breaker configured from a [`RetryPolicy`].
    #[must_use]
    pub fn from_policy(policy: &RetryPolicy) -> Self {
        CircuitBreaker::new(policy.breaker_threshold, policy.breaker_cooldown)
    }

    /// The current state (transitions Open → HalfOpen are made by
    /// [`CircuitBreaker::try_acquire`], not by the clock alone).
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.inner.lock().expect("breaker lock").state
    }

    /// How many times the breaker has opened.
    #[must_use]
    pub fn opens(&self) -> u64 {
        self.inner.lock().expect("breaker lock").opens
    }

    /// Whether a request may proceed right now. While open, returns
    /// `false` until the cooldown elapses, then admits a single
    /// half-open probe (subsequent callers keep getting `false` until
    /// the probe reports back).
    #[must_use]
    pub fn try_acquire(&self) -> bool {
        let mut inner = self.inner.lock().expect("breaker lock");
        match inner.state {
            BreakerState::Closed => true,
            BreakerState::HalfOpen => false,
            BreakerState::Open => {
                let cooled = inner
                    .opened_at
                    .is_some_and(|at| at.elapsed() >= self.cooldown);
                if cooled {
                    inner.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Reports a successful request: closes the breaker and resets the
    /// failure streak.
    pub fn record_success(&self) {
        let mut inner = self.inner.lock().expect("breaker lock");
        inner.state = BreakerState::Closed;
        inner.consecutive_failures = 0;
        inner.opened_at = None;
    }

    /// Reports a failed request: a failed half-open probe re-opens the
    /// breaker immediately; in the closed state the failure streak
    /// opens it at the threshold.
    pub fn record_failure(&self) {
        let mut inner = self.inner.lock().expect("breaker lock");
        inner.consecutive_failures = inner.consecutive_failures.saturating_add(1);
        let trip = match inner.state {
            BreakerState::HalfOpen => true,
            BreakerState::Closed => inner.consecutive_failures >= self.threshold,
            BreakerState::Open => false,
        };
        if trip {
            inner.state = BreakerState::Open;
            inner.opened_at = Some(Instant::now());
            inner.opens += 1;
        }
    }
}

/// What [`request_with_retry`] went through to get its response.
#[derive(Debug, Clone)]
pub struct RetryOutcome {
    /// The final response (its status may still be non-200 if the
    /// retry budget ran out on a retryable status).
    pub response: ClientResponse,
    /// Attempts beyond the first.
    pub retries: u64,
    /// Retryable statuses observed along the way (429/5xx).
    pub retryable_status: u64,
    /// Transport-level failures observed along the way (connection
    /// reset, truncated response, refused connect).
    pub transport_resets: u64,
}

/// [`request`] wrapped in retries with decorrelated-jitter backoff.
///
/// Transport errors and retryable statuses (429/500/502/503/504) are
/// retried up to `policy.max_retries` times; a `Retry-After` header is
/// honored (clamped to `[base, cap]`). When a shared `breaker` is
/// given, every attempt first acquires it, successes and failures feed
/// it, and open periods are waited out without consuming retries.
///
/// # Errors
///
/// [`ServeError::Client`] when the final attempt still failed at the
/// transport level. A non-200 final status is returned as an outcome,
/// not an error.
pub fn request_with_retry(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    policy: &RetryPolicy,
    breaker: Option<&CircuitBreaker>,
) -> Result<RetryOutcome, ServeError> {
    let mut rng = SmallRng::seed_from_u64(policy.seed);
    let mut prev = policy.base;
    let mut outcome = RetryOutcome {
        response: ClientResponse {
            status: 0,
            headers: Vec::new(),
            body: String::new(),
        },
        retries: 0,
        retryable_status: 0,
        transport_resets: 0,
    };
    let mut attempts = 0u32;
    loop {
        if let Some(b) = breaker {
            // An open breaker means *wait*, not *fail*: these sleeps
            // are bounded by the cooldown and consume no retry budget.
            while !b.try_acquire() {
                std::thread::sleep(
                    policy
                        .breaker_cooldown
                        .max(Duration::from_millis(1))
                        .min(Duration::from_millis(20)),
                );
            }
        }
        let result = request(addr, method, path, body);
        let retry_after = match &result {
            Ok(resp) if !retryable_status(resp.status) => {
                if let Some(b) = breaker {
                    b.record_success();
                }
                outcome.response = resp.clone();
                return Ok(outcome);
            }
            Ok(resp) => {
                outcome.retryable_status += 1;
                resp.header("retry-after")
                    .and_then(|v| v.parse::<u64>().ok())
                    .map(Duration::from_secs)
            }
            Err(_) => {
                outcome.transport_resets += 1;
                None
            }
        };
        if let Some(b) = breaker {
            b.record_failure();
        }
        if attempts >= policy.max_retries {
            return match result {
                Ok(resp) => {
                    outcome.response = resp;
                    Ok(outcome)
                }
                Err(e) => Err(e),
            };
        }
        attempts += 1;
        outcome.retries += 1;
        let sleep = match retry_after {
            // The server named a pause; respect it within our bounds.
            Some(after) => after.max(policy.base).min(policy.cap),
            None => {
                prev = next_backoff(&mut rng, policy.base, policy.cap, prev);
                prev
            }
        };
        std::thread::sleep(sleep);
    }
}

/// What one loadgen run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests that completed with status 200 (eventually, when
    /// retries are enabled).
    pub ok: u64,
    /// Requests whose *final* status was not 200.
    pub non_ok: u64,
    /// Requests that terminally failed at the transport level.
    pub errors: u64,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Sorted per-request latencies (successful requests only).
    pub latencies: Vec<Duration>,
    /// Retry attempts spent across all requests (zero without a retry
    /// policy).
    pub retries: u64,
    /// Retryable statuses (429/5xx, e.g. a 503 + `Retry-After`)
    /// observed along the way — distinguishable from transport resets
    /// so retry behavior is measurable.
    pub retryable_status: u64,
    /// Transport-level failures (connection reset, truncated response)
    /// observed along the way, whether or not a retry recovered them.
    pub transport_resets: u64,
    /// Times the shared circuit breaker opened during the run.
    pub breaker_opens: u64,
}

impl LoadgenReport {
    /// Completed requests (any status) per wall-clock second.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        let total = (self.ok + self.non_ok) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            total / secs
        } else {
            0.0
        }
    }

    /// The exact `q`-quantile latency from the sorted samples.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank =
            ((q * self.latencies.len() as f64).ceil() as usize).clamp(1, self.latencies.len());
        self.latencies[rank - 1]
    }
}

/// What one loadgen worker thread tallied.
#[derive(Debug, Default)]
struct ThreadTally {
    ok: u64,
    non_ok: u64,
    errors: u64,
    retries: u64,
    retryable_status: u64,
    transport_resets: u64,
    latencies: Vec<Duration>,
}

/// Fans `requests` identical (`method`, `path`, `body`) requests over
/// `concurrency` threads against `addr` and collects latencies. With a
/// [`RetryPolicy`], every request retries through a fleet-shared
/// [`CircuitBreaker`] (per-thread jitter seeds are derived from the
/// policy's), and the report carries the chaos-era counters.
///
/// # Errors
///
/// [`ServeError::Client`] only when the very first probe request fails
/// — a dead server fails fast instead of producing a report of pure
/// errors. Individual failures during the run are counted, not fatal.
pub fn loadgen(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    concurrency: usize,
    requests: u64,
    retry: Option<&RetryPolicy>,
) -> Result<LoadgenReport, ServeError> {
    let breaker = retry.map(CircuitBreaker::from_policy);
    // Probe first so misconfiguration is an error, not a zero report
    // (under chaos the probe itself retries, so an injected fault
    // cannot fail an otherwise healthy run).
    match retry {
        Some(policy) => {
            request_with_retry(addr, method, path, body, policy, breaker.as_ref())?;
        }
        None => {
            request(addr, method, path, body)?;
        }
    }
    let concurrency = concurrency.max(1);
    let per_thread = requests / concurrency as u64;
    let remainder = requests % concurrency as u64;
    let started = Instant::now();
    let breaker_ref = breaker.as_ref();
    let results: Vec<ThreadTally> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(concurrency);
        for t in 0..concurrency {
            let quota = per_thread + u64::from((t as u64) < remainder);
            handles.push(scope.spawn(move || {
                let mut tally = ThreadTally {
                    latencies: Vec::with_capacity(quota as usize),
                    ..ThreadTally::default()
                };
                // Decorrelate threads without sharing rng state.
                let policy = retry.map(|p| {
                    p.clone()
                        .with_seed(p.seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
                });
                for _ in 0..quota {
                    let t0 = Instant::now();
                    match &policy {
                        Some(policy) => {
                            match request_with_retry(addr, method, path, body, policy, breaker_ref)
                            {
                                Ok(outcome) => {
                                    tally.retries += outcome.retries;
                                    tally.retryable_status += outcome.retryable_status;
                                    tally.transport_resets += outcome.transport_resets;
                                    if outcome.response.status == 200 {
                                        tally.ok += 1;
                                        tally.latencies.push(t0.elapsed());
                                    } else {
                                        tally.non_ok += 1;
                                    }
                                }
                                Err(_) => tally.errors += 1,
                            }
                        }
                        None => match request(addr, method, path, body) {
                            Ok(resp) if resp.status == 200 => {
                                tally.ok += 1;
                                tally.latencies.push(t0.elapsed());
                            }
                            Ok(resp) => {
                                // Distinguish "back off and retry"
                                // (e.g. admission-control 503s) from
                                // terminal statuses.
                                if retryable_status(resp.status) {
                                    tally.retryable_status += 1;
                                }
                                tally.non_ok += 1;
                            }
                            Err(_) => {
                                tally.transport_resets += 1;
                                tally.errors += 1;
                            }
                        },
                    }
                }
                tally
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    let mut report = LoadgenReport {
        ok: 0,
        non_ok: 0,
        errors: 0,
        elapsed,
        latencies: Vec::new(),
        retries: 0,
        retryable_status: 0,
        transport_resets: 0,
        breaker_opens: breaker.as_ref().map_or(0, CircuitBreaker::opens),
    };
    for tally in results {
        report.ok += tally.ok;
        report.non_ok += tally.non_ok;
        report.errors += tally.errors;
        report.retries += tally.retries;
        report.retryable_status += tally.retryable_status;
        report.transport_resets += tally.transport_resets;
        report.latencies.extend(tally.latencies);
    }
    report.latencies.sort_unstable();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\n\r\n{\"error\":\"busy\"}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(resp.body.contains("busy"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }

    fn empty_report(latencies: Vec<Duration>, elapsed: Duration) -> LoadgenReport {
        LoadgenReport {
            ok: 0,
            non_ok: 0,
            errors: 0,
            elapsed,
            latencies,
            retries: 0,
            retryable_status: 0,
            transport_resets: 0,
            breaker_opens: 0,
        }
    }

    #[test]
    fn quantiles_are_exact_order_statistics() {
        let mut latencies: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        latencies.sort_unstable();
        let report = LoadgenReport {
            ok: 100,
            ..empty_report(latencies, Duration::from_secs(1))
        };
        assert_eq!(report.quantile(0.50), Duration::from_millis(50));
        assert_eq!(report.quantile(0.95), Duration::from_millis(95));
        assert_eq!(report.quantile(0.99), Duration::from_millis(99));
        assert!((report.throughput_rps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_safe() {
        let report = empty_report(Vec::new(), Duration::ZERO);
        assert_eq!(report.quantile(0.5), Duration::ZERO);
        assert_eq!(report.throughput_rps(), 0.0);
    }

    #[test]
    fn request_against_a_dead_port_errors() {
        // Port 9 (discard) is almost certainly closed in the test
        // environment; a refused connection must surface as Client.
        let err = request("127.0.0.1:9", "GET", "/healthz", None).unwrap_err();
        assert!(matches!(err, ServeError::Client(_)));
    }

    #[test]
    fn truncated_body_is_a_parse_error() {
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 20\r\n\r\n{\"cut\":";
        let err = parse_response(raw).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        // An exact-length body still parses.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\r\n{}";
        assert_eq!(parse_response(raw).unwrap().body, "{}");
    }

    #[test]
    fn retryable_statuses_are_the_not_now_codes() {
        for code in [429, 500, 502, 503, 504] {
            assert!(retryable_status(code), "{code}");
        }
        for code in [200, 400, 404, 405, 413] {
            assert!(!retryable_status(code), "{code}");
        }
    }

    #[test]
    fn backoff_grows_within_bounds_and_respects_the_cap() {
        let mut rng = SmallRng::seed_from_u64(5);
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(200);
        let mut prev = base;
        for _ in 0..50 {
            let next = next_backoff(&mut rng, base, cap, prev);
            assert!(next >= base, "{next:?} below base");
            assert!(next <= cap, "{next:?} above cap");
            prev = next;
        }
        // Degenerate case: prev * 3 == base (empty jitter range).
        let next = next_backoff(&mut rng, base, cap, Duration::ZERO);
        assert_eq!(next, base);
    }

    #[test]
    fn breaker_opens_half_opens_and_recloses() {
        let cooldown = Duration::from_millis(10);
        let breaker = CircuitBreaker::new(3, cooldown);
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.try_acquire());

        // Three consecutive failures trip it open.
        breaker.record_failure();
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Closed);
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.opens(), 1);
        assert!(!breaker.try_acquire(), "open breaker blocks immediately");

        // After the cooldown exactly one probe gets through.
        std::thread::sleep(cooldown + Duration::from_millis(5));
        assert!(breaker.try_acquire(), "cooldown elapsed: probe admitted");
        assert_eq!(breaker.state(), BreakerState::HalfOpen);
        assert!(!breaker.try_acquire(), "only one probe at a time");

        // A failed probe re-opens; a successful one closes for good.
        breaker.record_failure();
        assert_eq!(breaker.state(), BreakerState::Open);
        assert_eq!(breaker.opens(), 2);
        std::thread::sleep(cooldown + Duration::from_millis(5));
        assert!(breaker.try_acquire());
        breaker.record_success();
        assert_eq!(breaker.state(), BreakerState::Closed);
        assert!(breaker.try_acquire());
        assert_eq!(breaker.opens(), 2, "success does not add an open");
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let breaker = CircuitBreaker::new(3, Duration::from_millis(1));
        breaker.record_failure();
        breaker.record_failure();
        breaker.record_success();
        breaker.record_failure();
        breaker.record_failure();
        assert_eq!(
            breaker.state(),
            BreakerState::Closed,
            "interleaved successes keep the streak below threshold"
        );
    }

    #[test]
    fn retry_against_a_dead_port_spends_its_budget_then_errors() {
        let policy = RetryPolicy {
            max_retries: 2,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(2),
            ..RetryPolicy::default()
        };
        let err =
            request_with_retry("127.0.0.1:9", "GET", "/healthz", None, &policy, None).unwrap_err();
        assert!(matches!(err, ServeError::Client(_)));
    }
}

//! A matching minimal HTTP/1.1 client and the `loadgen` harness.
//!
//! The client speaks exactly the dialect the server emits: one request
//! per connection, `Content-Length` framing, `Connection: close`. The
//! loadgen fans identical requests across threads and reports exact
//! (not bucketed) p50/p95/p99 latencies plus throughput.

use crate::ServeError;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A response as the client sees it.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// The status code.
    pub status: u16,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// The body as text.
    pub body: String,
}

impl ClientResponse {
    /// The first header named `name` (lowercase), if any.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Performs one request against `addr` (e.g. `127.0.0.1:7421`) and
/// reads the full response. `body` is sent as JSON when present.
///
/// # Errors
///
/// [`ServeError::Client`] on connect, write, read, or parse failure.
pub fn request(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<ClientResponse, ServeError> {
    let client = |m: String| ServeError::Client(m);
    let mut stream =
        TcpStream::connect(addr).map_err(|e| client(format!("connect {addr}: {e}")))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| client(format!("timeout: {e}")))?;
    let body = body.unwrap_or("");
    let text = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(text.as_bytes())
        .map_err(|e| client(format!("write: {e}")))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| client(format!("read: {e}")))?;
    parse_response(&raw).map_err(client)
}

fn parse_response(raw: &[u8]) -> Result<ClientResponse, String> {
    let text = String::from_utf8_lossy(raw);
    let Some((head, body)) = text.split_once("\r\n\r\n") else {
        return Err(format!("no header/body separator in {} bytes", raw.len()));
    };
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(ClientResponse {
        status,
        headers,
        body: body.to_string(),
    })
}

/// What one loadgen run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Requests that completed with status 200.
    pub ok: u64,
    /// Requests that completed with any other status (e.g. 503).
    pub non_ok: u64,
    /// Requests that failed at the transport level.
    pub errors: u64,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Sorted per-request latencies (successful requests only).
    pub latencies: Vec<Duration>,
}

impl LoadgenReport {
    /// Completed requests (any status) per wall-clock second.
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        let total = (self.ok + self.non_ok) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            total / secs
        } else {
            0.0
        }
    }

    /// The exact `q`-quantile latency from the sorted samples.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let rank =
            ((q * self.latencies.len() as f64).ceil() as usize).clamp(1, self.latencies.len());
        self.latencies[rank - 1]
    }
}

/// Fans `requests` identical (`method`, `path`, `body`) requests over
/// `concurrency` threads against `addr` and collects latencies.
///
/// # Errors
///
/// [`ServeError::Client`] only when the very first probe request fails
/// — a dead server fails fast instead of producing a report of pure
/// errors. Individual failures during the run are counted, not fatal.
pub fn loadgen(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
    concurrency: usize,
    requests: u64,
) -> Result<LoadgenReport, ServeError> {
    // Probe first so misconfiguration is an error, not a zero report.
    request(addr, method, path, body)?;
    let concurrency = concurrency.max(1);
    let per_thread = requests / concurrency as u64;
    let remainder = requests % concurrency as u64;
    let started = Instant::now();
    let results: Vec<(u64, u64, u64, Vec<Duration>)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(concurrency);
        for t in 0..concurrency {
            let quota = per_thread + u64::from((t as u64) < remainder);
            handles.push(scope.spawn(move || {
                let mut ok = 0;
                let mut non_ok = 0;
                let mut errors = 0;
                let mut latencies = Vec::with_capacity(quota as usize);
                for _ in 0..quota {
                    let t0 = Instant::now();
                    match request(addr, method, path, body) {
                        Ok(resp) if resp.status == 200 => {
                            ok += 1;
                            latencies.push(t0.elapsed());
                        }
                        Ok(_) => non_ok += 1,
                        Err(_) => errors += 1,
                    }
                }
                (ok, non_ok, errors, latencies)
            }));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("loadgen thread panicked"))
            .collect()
    });
    let elapsed = started.elapsed();
    let mut report = LoadgenReport {
        ok: 0,
        non_ok: 0,
        errors: 0,
        elapsed,
        latencies: Vec::new(),
    };
    for (ok, non_ok, errors, latencies) in results {
        report.ok += ok;
        report.non_ok += non_ok;
        report.errors += errors;
        report.latencies.extend(latencies);
    }
    report.latencies.sort_unstable();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_response() {
        let raw = b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\n\r\n{\"error\":\"busy\"}";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert!(resp.body.contains("busy"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_err());
        assert!(parse_response(b"HTTP/1.1 abc\r\n\r\n").is_err());
    }

    #[test]
    fn quantiles_are_exact_order_statistics() {
        let mut latencies: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        latencies.sort_unstable();
        let report = LoadgenReport {
            ok: 100,
            non_ok: 0,
            errors: 0,
            elapsed: Duration::from_secs(1),
            latencies,
        };
        assert_eq!(report.quantile(0.50), Duration::from_millis(50));
        assert_eq!(report.quantile(0.95), Duration::from_millis(95));
        assert_eq!(report.quantile(0.99), Duration::from_millis(99));
        assert!((report.throughput_rps() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_report_is_safe() {
        let report = LoadgenReport {
            ok: 0,
            non_ok: 0,
            errors: 0,
            elapsed: Duration::ZERO,
            latencies: Vec::new(),
        };
        assert_eq!(report.quantile(0.5), Duration::ZERO);
        assert_eq!(report.throughput_rps(), 0.0);
    }

    #[test]
    fn request_against_a_dead_port_errors() {
        // Port 9 (discard) is almost certainly closed in the test
        // environment; a refused connection must surface as Client.
        let err = request("127.0.0.1:9", "GET", "/healthz", None).unwrap_err();
        assert!(matches!(err, ServeError::Client(_)));
    }
}

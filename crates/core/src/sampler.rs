//! Random-instance sampling for experiments.

use crate::{ChargeSpec, GeometricInstanceBuilder, Instance};
use std::fmt;
use wrsn_energy::{RadioParams, TxLevels};
use wrsn_geom::Field;

/// Draws random connected instances in the paper's evaluation style:
/// posts uniform in a square field, base station at the lower-left
/// corner.
///
/// Uniform placement can strand a post beyond `d_max` of every potential
/// relay, which makes the instance unroutable; the paper's setup silently
/// assumes connectivity. `sample` makes that explicit by redrawing from
/// seed-derived sub-seeds until the connectivity validation passes, so a
/// given `(sampler, seed)` pair is still fully deterministic.
///
/// # Examples
///
/// ```
/// use wrsn_core::InstanceSampler;
/// use wrsn_geom::Field;
///
/// let sampler = InstanceSampler::new(Field::square(500.0), 100, 400);
/// let a = sampler.sample(7);
/// let b = sampler.sample(7);
/// assert_eq!(a, b);
/// assert_eq!(a.num_posts(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct InstanceSampler {
    field: Field,
    num_posts: usize,
    num_nodes: u32,
    levels: TxLevels,
    radio: RadioParams,
    charge: ChargeSpec,
    max_nodes_per_post: Option<u32>,
}

impl InstanceSampler {
    /// Creates a sampler with the paper's default radio, levels, and
    /// normalized charging model.
    #[must_use]
    pub fn new(field: Field, num_posts: usize, num_nodes: u32) -> Self {
        InstanceSampler {
            field,
            num_posts,
            num_nodes,
            levels: TxLevels::icdcs2010(),
            radio: RadioParams::icdcs2010(),
            charge: ChargeSpec::normalized(),
            max_nodes_per_post: None,
        }
    }

    /// Sets the transmission level set.
    #[must_use]
    pub fn levels(mut self, levels: TxLevels) -> Self {
        self.levels = levels;
        self
    }

    /// Sets the radio model.
    #[must_use]
    pub fn radio(mut self, radio: RadioParams) -> Self {
        self.radio = radio;
        self
    }

    /// Sets the charging model.
    #[must_use]
    pub fn charge(mut self, charge: ChargeSpec) -> Self {
        self.charge = charge;
        self
    }

    /// Caps the nodes deployable per post.
    #[must_use]
    pub fn max_nodes_per_post(mut self, cap: u32) -> Self {
        self.max_nodes_per_post = Some(cap);
        self
    }

    /// Draws the instance for `seed`, redrawing post sets (from sub-seeds
    /// derived deterministically from `seed`) until one is connected.
    ///
    /// # Panics
    ///
    /// Panics if the node budget or cap is infeasible for the post count,
    /// or if no connected layout is found within 10 000 redraws — at the
    /// paper's densities a redraw is rarely needed even once. Use
    /// [`try_sample`](InstanceSampler::try_sample) when the configuration
    /// comes from user input rather than experiment code.
    #[must_use]
    pub fn sample(&self, seed: u64) -> Instance {
        match self.try_sample(seed) {
            Ok(inst) => inst,
            Err(e @ crate::BuildError::Disconnected { .. }) => panic!(
                "no connected layout for {} posts in {} within 10000 redraws: {e}",
                self.num_posts, self.field
            ),
            Err(e) => panic!("sampler configuration is infeasible: {e}"),
        }
    }

    /// Fallible variant of [`sample`](InstanceSampler::sample) for
    /// configurations coming from user input (e.g. CLI flags).
    ///
    /// # Errors
    ///
    /// Returns the underlying [`BuildError`](crate::BuildError) when the
    /// node budget or cap is infeasible for the post count, or the last
    /// `Disconnected` error when no connected layout is found within
    /// 10 000 redraws.
    pub fn try_sample(&self, seed: u64) -> Result<Instance, crate::BuildError> {
        let mut last_disconnect = None;
        for attempt in 0..10_000u64 {
            let sub_seed = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(attempt);
            let posts = self.field.random_posts(self.num_posts, sub_seed);
            let mut builder = GeometricInstanceBuilder::new(posts, self.num_nodes)
                .levels(self.levels.clone())
                .radio(self.radio)
                .charge(self.charge.clone());
            if let Some(cap) = self.max_nodes_per_post {
                builder = builder.max_nodes_per_post(cap);
            }
            match builder.build() {
                Ok(inst) => return Ok(inst),
                Err(e @ crate::BuildError::Disconnected { .. }) => {
                    last_disconnect = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_disconnect.expect("10000 attempts always set the last disconnect error"))
    }
}

impl fmt::Display for InstanceSampler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sampler({}, N={}, M={})",
            self.field, self.num_posts, self.num_nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic_and_connected() {
        let s = InstanceSampler::new(Field::square(500.0), 100, 400);
        let a = s.sample(11);
        assert_eq!(a, s.sample(11));
        assert!(a.energy_digraph().all_reach(a.bs()));
    }

    #[test]
    fn different_seeds_differ() {
        let s = InstanceSampler::new(Field::square(300.0), 20, 40);
        assert_ne!(s.sample(1), s.sample(2));
    }

    #[test]
    fn sparse_layouts_eventually_connect() {
        // 10 posts in 300x300 with d_max = 75 is frequently disconnected;
        // the sampler must still deliver.
        let s = InstanceSampler::new(Field::square(300.0), 10, 20);
        for seed in 0..5 {
            let inst = s.sample(seed);
            assert!(inst.energy_digraph().all_reach(inst.bs()));
        }
    }

    #[test]
    fn options_propagate() {
        let s = InstanceSampler::new(Field::square(200.0), 8, 16)
            .levels(TxLevels::evenly_spaced(6, 25.0))
            .max_nodes_per_post(3)
            .charge(ChargeSpec::linear(0.01));
        let inst = s.sample(3);
        assert_eq!(inst.max_nodes_per_post(), Some(3));
        assert!((inst.charge().eta() - 0.01).abs() < 1e-12);
        assert_eq!(
            inst.geometry().unwrap().levels.ranges(),
            &[25.0, 50.0, 75.0, 100.0, 125.0, 150.0]
        );
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_budget_panics() {
        let s = InstanceSampler::new(Field::square(200.0), 5, 3);
        let _ = s.sample(0);
    }

    #[test]
    fn try_sample_reports_infeasible_budget_instead_of_panicking() {
        let s = InstanceSampler::new(Field::square(200.0), 5, 3);
        assert!(s.try_sample(0).is_err());
    }

    #[test]
    fn try_sample_matches_sample_on_feasible_configs() {
        let s = InstanceSampler::new(Field::square(300.0), 20, 40);
        assert_eq!(s.try_sample(4).unwrap(), s.sample(4));
    }
}

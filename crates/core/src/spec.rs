//! Serializable instance specifications.
//!
//! [`Instance`] keeps its invariants behind private fields, so it is not
//! directly (de)serializable. [`InstanceSpec`] is the plain-data twin: a
//! JSON-friendly description that can be saved, shared, and rebuilt into
//! a validated [`Instance`] — the artifact a research group would check
//! into a repo to pin an experiment.
//!
//! # Examples
//!
//! ```
//! use wrsn_core::{InstanceSampler, InstanceSpec};
//! use wrsn_geom::Field;
//!
//! let original = InstanceSampler::new(Field::square(200.0), 8, 16).sample(1);
//! let spec = InstanceSpec::from_instance(&original).expect("geometric");
//! let json = spec.to_json();
//! let rebuilt = InstanceSpec::from_json(&json).unwrap().build().unwrap();
//! assert_eq!(rebuilt, original);
//! ```

use crate::{BuildError, ChargeSpec, GainKind, GeometricInstanceBuilder, Instance};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use wrsn_energy::{Energy, RadioParams, TxLevels};
use wrsn_geom::Point;

/// Error reading an [`InstanceSpec`] from JSON.
#[derive(Debug)]
pub enum SpecError {
    /// The document was not valid JSON for the spec schema.
    Parse(serde_json::Error),
    /// The spec parsed but described an invalid instance.
    Build(BuildError),
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "parsing instance spec: {e}"),
            SpecError::Build(e) => write!(f, "spec describes an invalid instance: {e}"),
        }
    }
}

impl Error for SpecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SpecError::Parse(e) => Some(e),
            SpecError::Build(e) => Some(e),
        }
    }
}

/// The serializable gain-curve description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum GainSpec {
    /// `k(m) = m`.
    Linear,
    /// `k(m) = m^p`.
    Sublinear {
        /// The exponent `p ∈ (0, 1]`.
        exponent: f64,
    },
    /// Tabulated `k(m)` samples starting at `k(1) = 1`.
    Measured {
        /// The samples.
        samples: Vec<f64>,
    },
}

/// A plain-data, JSON-serializable description of a geometric instance.
///
/// Explicit-adjacency instances (the NP-reduction gadgets) are built
/// programmatically and are intentionally not covered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstanceSpec {
    /// Post coordinates in meters, `(x, y)`.
    pub posts: Vec<(f64, f64)>,
    /// Base-station coordinates.
    pub base_station: (f64, f64),
    /// Total sensor-node budget.
    pub num_nodes: u32,
    /// Transmission ranges in meters, strictly increasing.
    pub ranges_m: Vec<f64>,
    /// Radio `α` in nanojoules per bit.
    pub alpha_nj: f64,
    /// Radio `β` in picojoules per bit per m^γ.
    pub beta_pj: f64,
    /// Radio loss exponent `γ`.
    pub gamma: f64,
    /// Single-node charging efficiency `η`.
    pub eta: f64,
    /// The gain curve.
    pub gain: GainSpec,
    /// Optional per-post node cap.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub max_nodes_per_post: Option<u32>,
    /// Optional per-post report rates (bits per round; default 1).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub report_rates: Option<Vec<f64>>,
    /// Optional per-post sensing energy in nanojoules per round.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sensing_nj: Option<Vec<f64>>,
}

impl InstanceSpec {
    /// Extracts the spec from a geometric instance. Returns `None` for
    /// explicit-adjacency instances (no geometry to describe).
    #[must_use]
    pub fn from_instance(instance: &Instance) -> Option<Self> {
        let geo = instance.geometry()?;
        let charge = instance.charge();
        let gain = match charge.gain() {
            GainKind::Linear => GainSpec::Linear,
            GainKind::Sublinear(p) => GainSpec::Sublinear { exponent: *p },
            GainKind::Measured(samples) => GainSpec::Measured {
                samples: samples.clone(),
            },
        };
        let rates = instance.report_rates();
        let sensing: Vec<f64> = (0..instance.num_posts())
            .map(|p| instance.sensing_energy(p).as_njoules())
            .collect();
        Some(InstanceSpec {
            posts: geo.posts.iter().map(|p| (p.x, p.y)).collect(),
            base_station: (geo.base_station.x, geo.base_station.y),
            num_nodes: instance.num_nodes(),
            ranges_m: geo.levels.ranges().to_vec(),
            alpha_nj: geo.radio.alpha().as_njoules(),
            beta_pj: geo.radio.beta_pj(),
            gamma: geo.radio.gamma(),
            eta: charge.eta(),
            gain,
            max_nodes_per_post: instance.max_nodes_per_post(),
            report_rates: if rates.iter().all(|&r| r == 1.0) {
                None
            } else {
                Some(rates.to_vec())
            },
            sensing_nj: if sensing.iter().all(|&s| s == 0.0) {
                None
            } else {
                Some(sensing)
            },
        })
    }

    /// Builds (and fully validates) the instance this spec describes.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for inconsistent specs (disconnected,
    /// budget too small, malformed profiles, …).
    ///
    /// # Panics
    ///
    /// Panics if radio/level/charge parameters are out of their domains
    /// (e.g. non-increasing ranges) — the same contracts as the typed
    /// constructors they feed.
    pub fn build(&self) -> Result<Instance, BuildError> {
        let gain = match &self.gain {
            GainSpec::Linear => GainKind::Linear,
            GainSpec::Sublinear { exponent } => GainKind::Sublinear(*exponent),
            GainSpec::Measured { samples } => GainKind::Measured(samples.clone()),
        };
        let mut builder = GeometricInstanceBuilder::new(
            self.posts.iter().map(|&(x, y)| Point::new(x, y)).collect(),
            self.num_nodes,
        )
        .base_station(Point::new(self.base_station.0, self.base_station.1))
        .levels(TxLevels::new(self.ranges_m.clone()))
        .radio(RadioParams::new(
            Energy::from_njoules(self.alpha_nj),
            self.beta_pj,
            self.gamma,
        ))
        .charge(ChargeSpec::new(self.eta, gain));
        if let Some(cap) = self.max_nodes_per_post {
            builder = builder.max_nodes_per_post(cap);
        }
        if let Some(rates) = &self.report_rates {
            builder = builder.report_rates(rates.clone());
        }
        if let Some(sensing) = &self.sensing_nj {
            builder = builder
                .sensing_energies(sensing.iter().map(|&nj| Energy::from_njoules(nj)).collect());
        }
        builder.build()
    }

    /// Serializes to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec is always serializable")
    }

    /// Parses a spec from JSON (without building it yet).
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::Parse`] on malformed JSON.
    pub fn from_json(json: &str) -> Result<Self, SpecError> {
        serde_json::from_str(json).map_err(SpecError::Parse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstanceBuilder, InstanceSampler};
    use wrsn_geom::Field;

    #[test]
    fn roundtrip_preserves_everything() {
        let inst = InstanceSampler::new(Field::square(250.0), 12, 30)
            .levels(TxLevels::evenly_spaced(4, 25.0))
            .charge(ChargeSpec::new(0.02, GainKind::Sublinear(0.9)))
            .max_nodes_per_post(6)
            .sample(7);
        let spec = InstanceSpec::from_instance(&inst).unwrap();
        let rebuilt = InstanceSpec::from_json(&spec.to_json())
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(rebuilt, inst);
    }

    #[test]
    fn roundtrip_with_profiles() {
        let posts = Field::square(100.0).random_posts(3, 9);
        let inst = GeometricInstanceBuilder::new(posts, 9)
            .report_rates(vec![1.0, 2.0, 0.5])
            .sensing_energies(vec![
                Energy::from_njoules(5.0),
                Energy::ZERO,
                Energy::from_njoules(1.5),
            ])
            .build()
            .unwrap();
        let spec = InstanceSpec::from_instance(&inst).unwrap();
        assert!(spec.report_rates.is_some());
        assert!(spec.sensing_nj.is_some());
        assert_eq!(spec.build().unwrap(), inst);
    }

    #[test]
    fn default_profiles_are_omitted_from_json() {
        let inst = InstanceSampler::new(Field::square(150.0), 4, 8).sample(1);
        let spec = InstanceSpec::from_instance(&inst).unwrap();
        let json = spec.to_json();
        assert!(!json.contains("report_rates"));
        assert!(!json.contains("sensing_nj"));
        assert!(!json.contains("max_nodes_per_post"));
    }

    #[test]
    fn explicit_instances_have_no_spec() {
        let inst = InstanceBuilder::new(1, 1)
            .uplink(0, 1, Energy::from_njoules(1.0))
            .build()
            .unwrap();
        assert!(InstanceSpec::from_instance(&inst).is_none());
    }

    #[test]
    fn malformed_json_is_a_parse_error() {
        let err = InstanceSpec::from_json("{not json").unwrap_err();
        assert!(matches!(err, SpecError::Parse(_)));
        assert!(format!("{err}").contains("parsing"));
    }

    #[test]
    fn inconsistent_spec_is_a_build_error() {
        let inst = InstanceSampler::new(Field::square(150.0), 4, 8).sample(1);
        let mut spec = InstanceSpec::from_instance(&inst).unwrap();
        spec.num_nodes = 2; // fewer nodes than posts
        assert!(matches!(spec.build(), Err(BuildError::TooFewNodes { .. })));
    }

    #[test]
    fn measured_gain_roundtrips() {
        let inst = InstanceSampler::new(Field::square(150.0), 4, 8)
            .charge(ChargeSpec::new(
                0.5,
                GainKind::Measured(vec![1.0, 1.7, 2.1]),
            ))
            .sample(3);
        let spec = InstanceSpec::from_instance(&inst).unwrap();
        assert!(matches!(spec.gain, GainSpec::Measured { .. }));
        assert_eq!(spec.build().unwrap(), inst);
    }
}

//! The Incremental Deployment-Based heuristic (paper Section V-B).

use crate::{
    optimal_cost, CostEvaluator, Deployment, Instance, RoutingTree, Solution, SolveError, Solver,
};

/// The IDB heuristic: start with one node per post, then place the
/// remaining `M − N` nodes in rounds of `δ`, each round exhaustively
/// trying every way to spread `δ` nodes over the posts and keeping the
/// one whose *optimally routed* total recharging cost is lowest.
///
/// With `δ = 1` this is greedy coordinate ascent on the exact objective
/// `f(m) = Σ_p dist_m(p → BS)`; each candidate is scored with a single
/// reverse Dijkstra. Larger `δ` explores
/// `C(N+δ−1, δ)` candidates per round, trading time for lookahead.
///
/// # Examples
///
/// ```
/// use wrsn_core::{Idb, InstanceSampler, Solver};
/// use wrsn_geom::Field;
///
/// let inst = InstanceSampler::new(Field::square(200.0), 8, 16).sample(5);
/// let sol = Idb::new(1).solve(&inst)?;
/// assert_eq!(sol.deployment().total(), 16);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Idb {
    delta: u32,
}

impl Idb {
    /// Creates IDB with batch size `delta` (the paper's `δ`).
    ///
    /// # Panics
    ///
    /// Panics if `delta == 0`.
    #[must_use]
    pub fn new(delta: u32) -> Self {
        assert!(delta >= 1, "IDB batch size must be at least 1");
        Idb { delta }
    }

    /// The batch size `δ`.
    #[must_use]
    pub fn delta(&self) -> u32 {
        self.delta
    }

    /// The `δ = 1` fast path: greedy coordinate ascent driven by the
    /// incremental [`CostEvaluator`] (one decrease-only repair per
    /// candidate instead of a full Dijkstra).
    #[allow(clippy::needless_range_loop)] // probes every post index
    fn solve_incremental(&self, instance: &Instance) -> Result<Solution, SolveError> {
        let n = instance.num_posts();
        let cap = instance
            .max_nodes_per_post()
            .unwrap_or(instance.num_nodes());
        let mut eval = CostEvaluator::new(instance);
        if eval.set_deployment(&vec![1u32; n]).is_none() {
            let dep = Deployment::ones(n);
            // Surface which post is stranded.
            return Err(match optimal_cost(instance, &dep) {
                Err(e) => e,
                Ok(_) => SolveError::Unroutable { post: 0 },
            });
        }
        let mut counts = vec![1u32; n];
        for _ in 0..(instance.num_nodes() - n as u32) {
            let mut best: Option<(f64, usize)> = None;
            for p in 0..n {
                if counts[p] >= cap {
                    continue;
                }
                let cost = eval.probe_add(p);
                if best.is_none_or(|(b, _)| cost < b) {
                    best = Some((cost, p));
                }
            }
            let (_, p) = best.expect("cap feasibility was validated at build time");
            eval.commit_add(p);
            counts[p] += 1;
        }
        let dep = eval.deployment();
        let tree = RoutingTree::new(eval.parents(), instance)
            .expect("shortest-path parents use existing links");
        Ok(Solution::evaluated(self.name(), instance, dep, tree))
    }

    /// Enumerates all multisets of `k` posts (combinations with
    /// repetition), invoking `visit` with the per-post increment vector.
    fn for_each_batch(n: usize, k: u32, visit: &mut impl FnMut(&[u32])) {
        fn rec(increments: &mut Vec<u32>, start: usize, left: u32, visit: &mut impl FnMut(&[u32])) {
            if left == 0 {
                visit(increments);
                return;
            }
            if start >= increments.len() {
                return;
            }
            // Give `c` of the remaining nodes to post `start`.
            for c in (0..=left).rev() {
                increments[start] += c;
                rec(increments, start + 1, left - c, visit);
                increments[start] -= c;
            }
        }
        let mut increments = vec![0u32; n];
        rec(&mut increments, 0, k, visit);
    }
}

impl Default for Idb {
    /// `δ = 1`, the configuration the paper's evaluation favors.
    fn default() -> Self {
        Idb::new(1)
    }
}

impl Solver for Idb {
    fn name(&self) -> &'static str {
        "IDB"
    }

    fn solve(&self, instance: &Instance) -> Result<Solution, SolveError> {
        if self.delta == 1 {
            return self.solve_incremental(instance);
        }
        let n = instance.num_posts();
        let cap = instance.max_nodes_per_post();
        let mut eval = CostEvaluator::new(instance);
        let mut dep = Deployment::ones(n);
        if eval.set_deployment(dep.counts()).is_none() {
            return Err(match optimal_cost(instance, &dep) {
                Err(e) => e,
                Ok(_) => SolveError::Unroutable { post: 0 },
            });
        }
        let mut remaining = instance.num_nodes() - n as u32;
        while remaining > 0 {
            let batch = self.delta.min(remaining);
            let mut best: Option<(f64, Vec<u32>)> = None;
            let mut scratch = dep.counts().to_vec();
            Idb::for_each_batch(n, batch, &mut |inc| {
                // Respect the per-post cap.
                if let Some(cap) = cap {
                    if inc.iter().zip(dep.counts()).any(|(&i, &m)| m + i > cap) {
                        return;
                    }
                }
                for (p, &i) in inc.iter().enumerate() {
                    scratch[p] += i;
                }
                if let Some(cost) = eval.set_deployment(&scratch) {
                    if best.as_ref().is_none_or(|(b, _)| cost < *b) {
                        best = Some((cost, scratch.clone()));
                    }
                }
                scratch.copy_from_slice(dep.counts());
            });
            let (_, counts) = best.ok_or(SolveError::Unroutable { post: 0 })?;
            dep = Deployment::new(counts);
            remaining -= batch;
        }
        let (_, tree) = optimal_cost(instance, &dep)?;
        Ok(Solution::evaluated(self.name(), instance, dep, tree))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstanceBuilder, InstanceSampler, Rfh};
    use wrsn_energy::Energy;
    use wrsn_geom::Field;

    fn e(nj: f64) -> Energy {
        Energy::from_njoules(nj)
    }

    #[test]
    fn batch_enumeration_counts() {
        // C(n+k-1, k) multisets.
        let mut count = 0;
        Idb::for_each_batch(4, 2, &mut |_| count += 1);
        assert_eq!(count, 10); // C(5,2)
        count = 0;
        Idb::for_each_batch(3, 1, &mut |_| count += 1);
        assert_eq!(count, 3);
        count = 0;
        Idb::for_each_batch(2, 3, &mut |inc| {
            assert_eq!(inc.iter().sum::<u32>(), 3);
            count += 1;
        });
        assert_eq!(count, 4);
    }

    #[test]
    fn greedy_places_extra_nodes_on_the_relay() {
        // Chain: 1 -> 0 -> BS; the relay (post 0) carries double traffic,
        // so extra nodes should go there first.
        let inst = InstanceBuilder::new(2, 5)
            .rx_energy(e(2.0))
            .uplink(0, 2, e(4.0))
            .uplink(1, 0, e(4.0))
            .build()
            .unwrap();
        let sol = Idb::new(1).solve(&inst).unwrap();
        assert!(sol.deployment().count(0) > sol.deployment().count(1));
        assert_eq!(sol.deployment().total(), 5);
    }

    #[test]
    fn exact_budget_no_spares() {
        let inst = InstanceSampler::new(Field::square(150.0), 5, 5).sample(2);
        let sol = Idb::new(1).solve(&inst).unwrap();
        assert_eq!(sol.deployment().counts(), &[1, 1, 1, 1, 1]);
    }

    #[test]
    fn delta_values_agree_on_easy_instance() {
        let inst = InstanceSampler::new(Field::square(200.0), 6, 14).sample(10);
        let d1 = Idb::new(1).solve(&inst).unwrap();
        let d2 = Idb::new(2).solve(&inst).unwrap();
        let d4 = Idb::new(4).solve(&inst).unwrap();
        // Larger lookahead can only do as well or better... not in
        // general (greedy paths differ), but all must be valid and close.
        for s in [&d1, &d2, &d4] {
            assert!(s.deployment().is_valid_for(&inst));
        }
        let lo = d1.total_cost().min(d2.total_cost()).min(d4.total_cost());
        let hi = d1.total_cost().max(d2.total_cost()).max(d4.total_cost());
        assert!(hi.as_njoules() <= lo.as_njoules() * 1.05);
    }

    #[test]
    fn delta_larger_than_remaining_is_clamped() {
        let inst = InstanceSampler::new(Field::square(100.0), 3, 4).sample(6);
        let sol = Idb::new(10).solve(&inst).unwrap();
        assert_eq!(sol.deployment().total(), 4);
    }

    #[test]
    fn respects_cap() {
        let inst = InstanceSampler::new(Field::square(100.0), 3, 6)
            .max_nodes_per_post(2)
            .sample(6);
        let sol = Idb::new(1).solve(&inst).unwrap();
        assert_eq!(sol.deployment().counts(), &[2, 2, 2]);
    }

    #[test]
    fn usually_beats_rfh() {
        // The paper reports IDB(1) leading RFH; on small random fields it
        // should never lose by more than a whisker.
        let mut wins = 0;
        for seed in 0..6 {
            let inst = InstanceSampler::new(Field::square(200.0), 10, 24).sample(seed);
            let idb = Idb::new(1).solve(&inst).unwrap();
            let rfh = Rfh::default().solve(&inst).unwrap();
            assert!(idb.total_cost().as_njoules() <= rfh.total_cost().as_njoules() * 1.02);
            if idb.total_cost() < rfh.total_cost() {
                wins += 1;
            }
        }
        assert!(wins >= 3, "IDB won only {wins}/6");
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_delta_rejected() {
        let _ = Idb::new(0);
    }

    #[test]
    fn name_and_accessors() {
        let idb = Idb::new(2);
        assert_eq!(idb.name(), "IDB");
        assert_eq!(idb.delta(), 2);
        assert_eq!(Idb::default(), Idb::new(1));
    }
}

//! # wrsn-core — joint deployment and routing for rechargeable WSNs
//!
//! The primary contribution of *"How Wireless Power Charging Technology
//! Affects Sensor Network Deployment and Routing"* (ICDCS 2010): given `N`
//! posts, `M ≥ N` sensor nodes, a base station, and discrete radio power
//! levels, decide **simultaneously**
//!
//! 1. how many nodes to deploy at each post (charging a post with `m`
//!    co-located nodes is `m`-times as efficient), and
//! 2. the routing arrangement (power level + parent per post),
//!
//! so that the *total recharging cost* — charger energy needed to replace
//! what the network consumes reporting one bit from every post — is
//! minimized. The decision problem is NP-complete ([`reduction`] implements
//! the paper's 3-CNF SAT reduction as executable code).
//!
//! ## Solvers
//!
//! | type | paper section | strategy |
//! |---|---|---|
//! | [`Rfh`] | V-A | routing-first heuristic: minimum-energy fat tree → workload-concentrated trimming → sibling merging → workload-proportional allocation; optionally iterated |
//! | [`Idb`] | V-B | incremental deployment: add `δ` nodes per round wherever the optimally-routed cost drops most |
//! | [`ExhaustiveSearch`] | VI-C | enumerate every deployment (small instances) |
//! | [`BranchAndBound`] | — | exact, same answers as exhaustive, prunes with a monotonicity bound |
//!
//! All implement the [`Solver`] trait and return a [`Solution`] (deployment
//! + routing tree + cost).
//!
//! # Examples
//!
//! ```
//! use wrsn_core::{Idb, InstanceSampler, Rfh, Solver};
//! use wrsn_geom::Field;
//!
//! let inst = InstanceSampler::new(Field::square(200.0), 10, 20).sample(42);
//! let rfh = Rfh::iterative(7).solve(&inst)?;
//! let idb = Idb::new(1).solve(&inst)?;
//! // IDB(1) is greedy on the exact objective and usually wins.
//! assert!(idb.total_cost() <= rfh.total_cost() * 1.10);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod allocate;
mod baseline;
mod cost;
mod deployment;
mod error;
mod eval;
mod exact;
mod idb;
mod instance;
mod rfh;
mod routing;
mod sampler;
mod scenario;
mod solution;
mod spec;

pub mod reduction;

pub use allocate::{greedy_allocate, greedy_allocate_by_efficiency, lagrange_allocate};
pub use baseline::{min_lifetime_rounds, LifetimeBalanced, UniformDeployment};
pub use cost::{cost_digraph, optimal_cost, tree_cost};
pub use deployment::Deployment;
pub use error::{BuildError, SolveError};
pub use eval::CostEvaluator;
pub use exact::{BranchAndBound, ExhaustiveSearch};
pub use idb::Idb;
pub use instance::{
    ChargeSpec, GainKind, GeometricInstanceBuilder, Geometry, Instance, InstanceBuilder, PostId,
};
pub use rfh::{AllocatorKind, MergePolicy, Rfh, RfhReport, WorkloadMetric};
pub use routing::{RoutingTree, TreeError};
pub use sampler::InstanceSampler;
pub use scenario::ScenarioSpec;
pub use solution::Solution;
pub use spec::{GainSpec, InstanceSpec, SpecError};

/// A deployment/routing algorithm that solves an [`Instance`].
///
/// # Examples
///
/// Solvers are object safe, so heterogeneous comparisons are one loop:
///
/// ```
/// use wrsn_core::{Idb, InstanceSampler, Rfh, Solver, UniformDeployment};
/// use wrsn_geom::Field;
///
/// let inst = InstanceSampler::new(Field::square(150.0), 5, 15).sample(2);
/// let solvers: Vec<Box<dyn Solver>> =
///     vec![Box::new(Rfh::basic()), Box::new(Idb::new(1)), Box::new(UniformDeployment::new())];
/// for s in &solvers {
///     let sol = s.solve(&inst)?;
///     println!("{}: {}", s.name(), sol.total_cost());
/// }
/// # Ok::<(), wrsn_core::SolveError>(())
/// ```
pub trait Solver {
    /// A short human-readable algorithm name for reports and benches.
    fn name(&self) -> &'static str;

    /// Computes a deployment and routing arrangement for `instance`.
    ///
    /// # Errors
    ///
    /// Returns a [`SolveError`] if the algorithm cannot handle the
    /// instance (e.g. an exhaustive search over too many deployments).
    fn solve(&self, instance: &Instance) -> Result<Solution, SolveError>;

    /// Like [`solve`](Solver::solve), but also returns the solver's cost
    /// trace: the total cost after each improvement step, ending at the
    /// returned solution's cost.
    ///
    /// One-shot solvers use this default, a single-entry trace. Iterative
    /// solvers (notably [`Rfh`]) override it to expose their real
    /// per-iteration history, which is what the paper's convergence plot
    /// (Fig. 6) is drawn from.
    ///
    /// # Errors
    ///
    /// Same conditions as [`solve`](Solver::solve).
    fn solve_traced(
        &self,
        instance: &Instance,
    ) -> Result<(Solution, Vec<wrsn_energy::Energy>), SolveError> {
        let solution = self.solve(instance)?;
        let cost = solution.total_cost();
        Ok((solution, vec![cost]))
    }
}

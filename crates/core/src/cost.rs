//! The total-recharging-cost objective.
//!
//! For a fixed deployment `m`, transmitting one bit from `u` to `v` costs
//! the charger
//!
//! ```text
//! c_m(u → v) = e_tx(u,v) / η(m_u)  +  e_rx / η(m_v)      (rx term absent at the BS)
//! ```
//!
//! which is additive along paths — so the *optimal* routing for `m` is
//! every post's cheapest path to the base station under `c_m`, computable
//! with a single reverse Dijkstra, and the joint problem is
//! `min_m Σ_p dist_m(p)`. These functions are the shared substrate of
//! every solver in this crate.

use crate::{Deployment, Instance, RoutingTree, SolveError};
use wrsn_energy::Energy;
use wrsn_graph::{dijkstra_to, Digraph};

/// Builds the digraph whose edge weights (in nanojoules) are per-bit
/// recharging costs `c_m(u → v)` under `deployment`.
///
/// # Panics
///
/// Panics if `deployment` does not match the instance's post count.
///
/// # Examples
///
/// ```
/// use wrsn_core::{cost_digraph, Deployment, InstanceSampler};
/// use wrsn_geom::Field;
///
/// let inst = InstanceSampler::new(Field::square(150.0), 5, 10).sample(1);
/// let g = cost_digraph(&inst, &Deployment::ones(5));
/// assert_eq!(g.node_count(), 6); // posts + base station
/// ```
#[must_use]
pub fn cost_digraph(instance: &Instance, deployment: &Deployment) -> Digraph {
    assert_eq!(
        deployment.num_posts(),
        instance.num_posts(),
        "deployment size does not match instance"
    );
    let bs = instance.bs();
    let mut g = Digraph::new(instance.num_posts() + 1);
    let eff: Vec<f64> = deployment
        .counts()
        .iter()
        .map(|&m| instance.charge_efficiency(m))
        .collect();
    let rx = instance.rx_energy();
    for u in 0..instance.num_posts() {
        for &(v, tx) in instance.uplinks(u) {
            let mut w = tx.as_njoules() / eff[u];
            if v != bs {
                w += rx.as_njoules() / eff[v];
            }
            g.add_edge(u, v, w);
        }
    }
    g
}

/// The minimum total recharging cost achievable under `deployment`, and a
/// routing tree achieving it: every post follows its cheapest path to the
/// base station under `c_m`.
///
/// # Errors
///
/// Returns [`SolveError::Unroutable`] if some post cannot reach the base
/// station (impossible for validated instances, but explicit instances
/// with asymmetric links are checked again here for robustness).
///
/// # Examples
///
/// ```
/// use wrsn_core::{optimal_cost, Deployment, InstanceSampler};
/// use wrsn_geom::Field;
///
/// let inst = InstanceSampler::new(Field::square(150.0), 5, 10).sample(1);
/// let sparse = Deployment::ones(5);
/// let mut packed = sparse.clone();
/// for _ in 0..5 { packed.add(0); }
/// let (c1, _) = optimal_cost(&inst, &sparse)?;
/// let (c2, tree) = optimal_cost(&inst, &packed)?;
/// assert!(c2 < c1); // extra nodes make charging cheaper
/// assert_eq!(tree.num_posts(), 5);
/// # Ok::<(), wrsn_core::SolveError>(())
/// ```
pub fn optimal_cost(
    instance: &Instance,
    deployment: &Deployment,
) -> Result<(Energy, RoutingTree), SolveError> {
    let g = cost_digraph(instance, deployment);
    let sp = dijkstra_to(&g, instance.bs());
    let mut total = 0.0;
    let mut parents = Vec::with_capacity(instance.num_posts());
    for p in 0..instance.num_posts() {
        let Some(d) = sp.distance(p) else {
            return Err(SolveError::Unroutable { post: p });
        };
        // Weighted by the post's report rate; plus the deployment-
        // dependent recharging cost of its idle (sensing) consumption.
        total += d * instance.report_rate(p)
            + instance.sensing_energy(p).as_njoules()
                / instance.charge_efficiency(deployment.count(p));
        parents.push(
            sp.via(p)
                .expect("reachable non-target posts have a next hop"),
        );
    }
    let tree = RoutingTree::new(parents, instance)
        .expect("shortest-path tree uses existing links and is acyclic");
    Ok((Energy::from_njoules(total), tree))
}

/// The total recharging cost of a *given* routing tree under `deployment`:
///
/// ```text
/// C = Σ_p E_p / η(m_p)
/// ```
///
/// where `E_p` is the per-round energy of post `p`
/// ([`RoutingTree::per_post_energy`]). Heuristics that fix a tree first
/// (RFH) are evaluated with this; it always dominates
/// [`optimal_cost`]`(instance, deployment)`.
///
/// # Panics
///
/// Panics if the tree or deployment do not match the instance.
///
/// # Examples
///
/// ```
/// use wrsn_core::{optimal_cost, tree_cost, Deployment, InstanceSampler};
/// use wrsn_geom::Field;
///
/// let inst = InstanceSampler::new(Field::square(150.0), 5, 10).sample(1);
/// let dep = Deployment::ones(5);
/// let (optimal, tree) = optimal_cost(&inst, &dep)?;
/// // Evaluating the optimal tree reproduces the optimal cost.
/// let evaluated = tree_cost(&inst, &dep, &tree);
/// assert!((evaluated.as_njoules() - optimal.as_njoules()).abs() < 1e-9);
/// # Ok::<(), wrsn_core::SolveError>(())
/// ```
#[must_use]
pub fn tree_cost(instance: &Instance, deployment: &Deployment, tree: &RoutingTree) -> Energy {
    assert_eq!(deployment.num_posts(), instance.num_posts());
    let energies = tree.per_post_energy(instance);
    energies
        .iter()
        .enumerate()
        .zip(deployment.counts())
        .map(|((p, &e), &m)| (e + instance.sensing_energy(p)) / instance.charge_efficiency(m))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::InstanceBuilder;

    fn e(nj: f64) -> Energy {
        Energy::from_njoules(nj)
    }

    /// Chain 1 -> 0 -> BS with rx cost 2, tx cost 4.
    fn chain() -> Instance {
        InstanceBuilder::new(2, 4)
            .rx_energy(e(2.0))
            .uplink(0, 2, e(4.0))
            .uplink(1, 0, e(4.0))
            .build()
            .unwrap()
    }

    #[test]
    fn cost_digraph_scales_by_efficiency() {
        let inst = chain();
        let dep = Deployment::new(vec![2, 2]);
        let g = cost_digraph(&inst, &dep);
        // 1 -> 0: tx 4 / 2 + rx 2 / 2 = 3; 0 -> bs: 4 / 2 = 2.
        assert_eq!(g.out(1), &[(0, 3.0)]);
        assert_eq!(g.out(0), &[(2, 2.0)]);
    }

    #[test]
    fn optimal_cost_on_chain() {
        let inst = chain();
        // All nodes at post 0 except the mandatory one at post 1.
        let dep = Deployment::new(vec![3, 1]);
        let (cost, tree) = optimal_cost(&inst, &dep).unwrap();
        // post0: 4/3; post1: 4/1 + 2/3 (rx at 0) + 4/3 (forward) = 4 + 2.
        let expected = 4.0 / 3.0 + (4.0 + 2.0 / 3.0 + 4.0 / 3.0);
        assert!((cost.as_njoules() - expected).abs() < 1e-9);
        assert_eq!(tree.parents(), &[2, 0]);
    }

    #[test]
    fn optimal_cost_picks_route_by_deployment() {
        // Post 2 can go via post 0 or post 1 (same energies); whichever
        // holds more nodes is cheaper.
        let inst = InstanceBuilder::new(3, 5)
            .rx_energy(e(2.0))
            .uplink(0, 3, e(4.0))
            .uplink(1, 3, e(4.0))
            .uplink(2, 0, e(4.0))
            .uplink(2, 1, e(4.0))
            .build()
            .unwrap();
        let via0 = Deployment::new(vec![3, 1, 1]);
        let (_, t0) = optimal_cost(&inst, &via0).unwrap();
        assert_eq!(t0.parent(2), 0);
        let via1 = Deployment::new(vec![1, 3, 1]);
        let (_, t1) = optimal_cost(&inst, &via1).unwrap();
        assert_eq!(t1.parent(2), 1);
    }

    #[test]
    fn tree_cost_matches_optimal_when_tree_is_optimal() {
        let inst = chain();
        for dep in [
            Deployment::new(vec![1, 3]),
            Deployment::new(vec![2, 2]),
            Deployment::new(vec![3, 1]),
        ] {
            let (cost, tree) = optimal_cost(&inst, &dep).unwrap();
            let via_tree = tree_cost(&inst, &dep, &tree);
            assert!(
                (cost.as_njoules() - via_tree.as_njoules()).abs() < 1e-9,
                "dep {dep}: {cost} vs {via_tree}"
            );
        }
    }

    #[test]
    fn tree_cost_dominates_optimal() {
        let inst = InstanceBuilder::new(3, 6)
            .rx_energy(e(2.0))
            .uplink(0, 3, e(4.0))
            .uplink(1, 3, e(16.0))
            .uplink(1, 0, e(4.0))
            .uplink(2, 1, e(4.0))
            .build()
            .unwrap();
        let dep = Deployment::new(vec![4, 1, 1]);
        // Deliberately bad tree: post 1 transmits straight to the BS at
        // the expensive level.
        let bad = RoutingTree::new(vec![3, 3, 1], &inst).unwrap();
        let (opt, _) = optimal_cost(&inst, &dep).unwrap();
        assert!(tree_cost(&inst, &dep, &bad) > opt);
    }

    #[test]
    fn adding_nodes_never_hurts() {
        let inst = InstanceBuilder::new(2, 6)
            .rx_energy(e(2.0))
            .uplink(0, 2, e(4.0))
            .uplink(1, 0, e(4.0))
            .build()
            .unwrap();
        let base = Deployment::new(vec![1, 1]);
        let (c0, _) = optimal_cost(&inst, &base).unwrap();
        for p in 0..2 {
            let mut d = base.clone();
            d.add(p);
            let (c1, _) = optimal_cost(&inst, &d).unwrap();
            assert!(c1 <= c0, "adding a node at {p} increased cost");
        }
    }

    #[test]
    fn unroutable_detected_for_degenerate_digraph() {
        // Build a valid instance, then query a deployment; connectivity is
        // guaranteed, so instead check the error path via a crafted
        // instance with a one-way link pattern is impossible — the
        // validator rejects it. Assert that contract here.
        let err = InstanceBuilder::new(2, 2)
            .uplink(0, 2, e(1.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, crate::BuildError::Disconnected { .. }));
    }

    #[test]
    #[should_panic(expected = "deployment size")]
    fn mismatched_deployment_panics() {
        let inst = chain();
        let _ = cost_digraph(&inst, &Deployment::new(vec![1]));
    }
}

//! Declarative charging-scenario parameters.
//!
//! The paper fixes the charger's behavior out of scope ("nodes can
//! always be recharged in time"); the charging-scenario solver family
//! (`wrsn-sched`) makes it the decision variable. [`ScenarioSpec`]
//! is the JSON-friendly knob set shared by every front end — CLI
//! `--scenario`, HTTP request bodies, and the engine's cache
//! fingerprints — so identical scenario parameters resolve to identical
//! solver behavior everywhere.

use serde::{Deserialize, Serialize};

fn default_charger_speed() -> f64 {
    5.0
}
fn default_charger_power() -> f64 {
    5.0
}
fn default_battery_j() -> f64 {
    0.1
}
fn default_bits() -> u64 {
    4000
}
fn default_round_interval() -> f64 {
    1.0
}
fn default_chargers() -> u32 {
    1
}
fn default_site_grid() -> usize {
    6
}
fn default_charger_budget() -> u32 {
    4
}
fn default_duty_target() -> f64 {
    0.5
}
fn default_rf_power() -> f64 {
    2.0
}
fn default_rf_range() -> f64 {
    150.0
}
fn default_sa_iters() -> u32 {
    400
}
fn default_sa_temp() -> f64 {
    0.05
}
fn default_seed() -> u64 {
    0
}

/// Everything a charging-scenario solver needs to know beyond the
/// instance itself: the mobile-charger fleet (speed, radiated power,
/// fleet size), the node batteries and reporting workload that set the
/// battery deadlines, the RF-charger placement knobs (candidate grid
/// density, charger budget, per-post duty-cycle target, radiated power
/// and half-power range), and the bi-level metaheuristic's budget and
/// seed.
///
/// Defaults describe a single 5 m/s mobile charger topping up 0.1 J
/// batteries under the simulator's default reporting load — matching
/// [`SimConfig`](https://docs.rs/wrsn-sim) defaults, so scenario-aware
/// solvers and the simulator agree out of the box.
///
/// # Examples
///
/// ```
/// use wrsn_core::ScenarioSpec;
///
/// let spec = ScenarioSpec::default();
/// assert_eq!(spec.chargers, 1);
/// assert!(spec.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Mobile-charger travel speed in meters per second.
    #[serde(default = "default_charger_speed")]
    pub charger_speed_mps: f64,
    /// Mobile-charger radiated power in watts (sets per-visit dwell).
    #[serde(default = "default_charger_power")]
    pub charger_power_w: f64,
    /// Per-node battery capacity in joules (sets battery deadlines).
    #[serde(default = "default_battery_j")]
    pub battery_j: f64,
    /// Bits per report (workload behind the per-round energy drain).
    #[serde(default = "default_bits")]
    pub bits_per_report: u64,
    /// Seconds between reporting rounds.
    #[serde(default = "default_round_interval")]
    pub round_interval_s: f64,
    /// Mobile chargers sharing the patrol (tour scheduling).
    #[serde(default = "default_chargers")]
    pub chargers: u32,
    /// Candidate RF-charger sites per field side (placement searches a
    /// `site_grid × site_grid` lattice).
    #[serde(default = "default_site_grid")]
    pub site_grid: usize,
    /// Static RF chargers the placement solver may install.
    #[serde(default = "default_charger_budget")]
    pub charger_budget: u32,
    /// Per-post duty-cycle target in `(0, 1]` the placement tries to
    /// guarantee (received power / required power, capped at 1).
    #[serde(default = "default_duty_target")]
    pub duty_target: f64,
    /// RF-charger radiated power in watts.
    #[serde(default = "default_rf_power")]
    pub rf_power_w: f64,
    /// RF path-loss half-power range in meters: a post at this distance
    /// receives half the power of a co-located one.
    #[serde(default = "default_rf_range")]
    pub rf_range_m: f64,
    /// Simulated-annealing iterations for the bi-level solver.
    #[serde(default = "default_sa_iters")]
    pub sa_iters: u32,
    /// Initial annealing temperature as a fraction of the starting
    /// objective.
    #[serde(default = "default_sa_temp")]
    pub sa_temp: f64,
    /// Scenario seed mixed into the bi-level solver's RNG (combined
    /// with an instance digest, so each instance anneals its own
    /// deterministic trajectory).
    #[serde(default = "default_seed")]
    pub seed: u64,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            charger_speed_mps: default_charger_speed(),
            charger_power_w: default_charger_power(),
            battery_j: default_battery_j(),
            bits_per_report: default_bits(),
            round_interval_s: default_round_interval(),
            chargers: default_chargers(),
            site_grid: default_site_grid(),
            charger_budget: default_charger_budget(),
            duty_target: default_duty_target(),
            rf_power_w: default_rf_power(),
            rf_range_m: default_rf_range(),
            sa_iters: default_sa_iters(),
            sa_temp: default_sa_temp(),
            seed: default_seed(),
        }
    }
}

impl ScenarioSpec {
    /// Checks every parameter's range, returning the first offense as a
    /// human-readable message. Front ends call this at request time so
    /// bad scenarios fail before a sweep starts.
    ///
    /// # Errors
    ///
    /// A message naming the out-of-range parameter.
    pub fn validate(&self) -> Result<(), String> {
        let positive = [
            ("charger_speed_mps", self.charger_speed_mps),
            ("charger_power_w", self.charger_power_w),
            ("battery_j", self.battery_j),
            ("round_interval_s", self.round_interval_s),
            ("rf_power_w", self.rf_power_w),
            ("rf_range_m", self.rf_range_m),
        ];
        for (name, v) in positive {
            if !(v > 0.0 && v.is_finite()) {
                return Err(format!("{name} must be positive and finite, got {v}"));
            }
        }
        if self.bits_per_report == 0 {
            return Err("bits_per_report must be positive".to_string());
        }
        if self.chargers == 0 {
            return Err("chargers must be at least 1".to_string());
        }
        if self.site_grid < 2 {
            return Err(format!(
                "site_grid must be at least 2, got {}",
                self.site_grid
            ));
        }
        if self.charger_budget == 0 {
            return Err("charger_budget must be at least 1".to_string());
        }
        if !(self.duty_target > 0.0 && self.duty_target <= 1.0) {
            return Err(format!(
                "duty_target must lie in (0, 1], got {}",
                self.duty_target
            ));
        }
        if self.sa_iters == 0 {
            return Err("sa_iters must be at least 1".to_string());
        }
        if !(self.sa_temp > 0.0 && self.sa_temp.is_finite()) {
            return Err(format!("sa_temp must be positive, got {}", self.sa_temp));
        }
        Ok(())
    }

    /// The spec rendered as canonical JSON — the form pushed into cache
    /// fingerprints, so any parameter change invalidates cached runs.
    #[must_use]
    pub fn canonical_json(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("scenario serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        assert!(ScenarioSpec::default().validate().is_ok());
    }

    #[test]
    fn each_bad_parameter_is_named() {
        let cases: Vec<(ScenarioSpec, &str)> = vec![
            (
                ScenarioSpec {
                    charger_speed_mps: 0.0,
                    ..ScenarioSpec::default()
                },
                "charger_speed_mps",
            ),
            (
                ScenarioSpec {
                    battery_j: -1.0,
                    ..ScenarioSpec::default()
                },
                "battery_j",
            ),
            (
                ScenarioSpec {
                    bits_per_report: 0,
                    ..ScenarioSpec::default()
                },
                "bits_per_report",
            ),
            (
                ScenarioSpec {
                    chargers: 0,
                    ..ScenarioSpec::default()
                },
                "chargers",
            ),
            (
                ScenarioSpec {
                    site_grid: 1,
                    ..ScenarioSpec::default()
                },
                "site_grid",
            ),
            (
                ScenarioSpec {
                    charger_budget: 0,
                    ..ScenarioSpec::default()
                },
                "charger_budget",
            ),
            (
                ScenarioSpec {
                    duty_target: 1.5,
                    ..ScenarioSpec::default()
                },
                "duty_target",
            ),
            (
                ScenarioSpec {
                    sa_iters: 0,
                    ..ScenarioSpec::default()
                },
                "sa_iters",
            ),
            (
                ScenarioSpec {
                    sa_temp: f64::NAN,
                    ..ScenarioSpec::default()
                },
                "sa_temp",
            ),
        ];
        for (spec, name) in cases {
            let err = spec.validate().expect_err(name);
            assert!(err.contains(name), "{err} should mention {name}");
        }
    }

    #[test]
    fn empty_json_deserializes_to_defaults() {
        let v: serde::Value = serde_json::from_str("{}").unwrap();
        let spec = ScenarioSpec::from_value(&v).unwrap();
        assert_eq!(spec, ScenarioSpec::default());
    }

    #[test]
    fn round_trips_through_json_and_canonical_form_is_stable() {
        let spec = ScenarioSpec {
            charger_speed_mps: 2.5,
            chargers: 3,
            seed: 9,
            ..ScenarioSpec::default()
        };
        let text = spec.canonical_json();
        let v: serde::Value = serde_json::from_str(&text).unwrap();
        let back = ScenarioSpec::from_value(&v).unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.canonical_json(), text);
        // Different parameters produce different canonical forms (the
        // property cache fingerprints rely on).
        assert_ne!(text, ScenarioSpec::default().canonical_json());
    }
}
